"""Uncovering the sampled attribute of RS+FD, and the RS+RFD countermeasure.

The RS+FD solution hides which attribute carries the genuine LDP report by
padding the tuple with fake values.  This example shows:

1. how well a classifier-based attacker (NK model, Sec. 3.3.1) can still
   recover the sampled attribute for different RS+FD variants, and
2. how the RS+RFD countermeasure (realistic fake data, Sec. 5) pushes the
   attack back towards the random-guess baseline.

Run it with ``python examples/attribute_inference_attack.py``.
"""

from __future__ import annotations

from repro.attacks import AttributeInferenceAttack
from repro.datasets import load_dataset
from repro.multidim import RSFD, RSRFD
from repro.privacy import make_priors


def main() -> None:
    # Scaled-down ACSEmployment-like population (the paper uses n = 10,336).
    dataset = load_dataset("acs_employment", n=2_000, rng=5)
    epsilon = 6.0
    baseline = 100.0 / dataset.d

    print(f"Population: n={dataset.n}, d={dataset.d} attributes, epsilon={epsilon}")
    print(f"Random-guess baseline for the sampled attribute: {baseline:.1f}%\n")

    configurations = [
        ("RS+FD[GRR]", RSFD(dataset.domain, epsilon, variant="grr", rng=1)),
        ("RS+FD[SUE-z]", RSFD(dataset.domain, epsilon, variant="ue-z", ue_kind="SUE", rng=1)),
        ("RS+FD[OUE-z]", RSFD(dataset.domain, epsilon, variant="ue-z", ue_kind="OUE", rng=1)),
        ("RS+FD[OUE-r]", RSFD(dataset.domain, epsilon, variant="ue-r", ue_kind="OUE", rng=1)),
    ]
    # the countermeasure: realistic fake data drawn from Laplace-perturbed priors.
    # The paper computes its priors on the full 10,336-user population with a
    # total budget of 0.1; this example uses a 5x smaller population, so the
    # budget is scaled up accordingly to keep the same prior quality.
    priors = make_priors("correct", dataset, rng=2, total_epsilon=0.5)
    configurations.append(
        ("RS+RFD[GRR]", RSRFD(dataset.domain, epsilon, priors, variant="grr", rng=1))
    )
    configurations.append(
        ("RS+RFD[OUE-r]", RSRFD(dataset.domain, epsilon, priors, variant="ue-r", ue_kind="OUE", rng=1))
    )

    print(f"{'protocol':14s} {'NK AIF-ACC':>11s} {'lift over baseline':>20s}")
    print("-" * 48)
    for label, solution in configurations:
        reports = solution.collect(dataset)
        attack = AttributeInferenceAttack(solution, rng=3)
        result = attack.no_knowledge(reports, synthetic_factor=1.0)
        print(f"{label:14s} {100 * result.accuracy:10.1f}% {result.lift:19.1f}x")

    print(
        "\nTakeaway: perturbed-zero-vector fake data (UE-z) gives the sampled\n"
        "attribute away almost completely, uniform fake data (GRR / UE-r) still\n"
        "leaks a few-fold improvement over random guessing, and realistic fake\n"
        "data (RS+RFD) brings the attacker back close to the baseline."
    )


if __name__ == "__main__":
    main()
