"""Utility of multidimensional frequency estimation: SPL vs SMP vs RS+FD vs RS+RFD.

For a fixed privacy budget, compares the averaged mean-squared error of the
four ways a population can report a d-dimensional categorical profile under
LDP, and shows how the RS+RFD countermeasure also improves utility when
realistic priors are available (Sec. 5.2.2 / Fig. 5 of the paper).

Run it with ``python examples/multidim_utility.py``.
"""

from __future__ import annotations

import math

from repro.datasets import load_dataset
from repro.metrics import mse_avg
from repro.multidim import RSFD, RSRFD, SMP, SPL
from repro.privacy import make_priors


def main() -> None:
    dataset = load_dataset("acs_employment", n=8_000, rng=9)
    priors = make_priors("correct", dataset, rng=10)

    epsilons = [math.log(c) for c in (2, 4, 7)]
    print(f"Population: n={dataset.n}, d={dataset.d} attributes")
    print("Averaged MSE of the estimated per-attribute histograms (lower is better)\n")

    header = f"{'solution':16s}" + "".join(f" eps=ln({c})" for c in (2, 4, 7))
    print(header)
    print("-" * len(header))

    def build_solutions(epsilon: float):
        return [
            ("SPL[GRR]", SPL(dataset.domain, epsilon, protocol="GRR", rng=0)),
            ("SMP[GRR]", SMP(dataset.domain, epsilon, protocol="GRR", rng=0)),
            ("RS+FD[GRR]", RSFD(dataset.domain, epsilon, variant="grr", rng=0)),
            ("RS+RFD[GRR]", RSRFD(dataset.domain, epsilon, priors, variant="grr", rng=0)),
        ]

    errors: dict[str, list[float]] = {}
    for epsilon in epsilons:
        for label, solution in build_solutions(epsilon):
            _, estimates = solution.collect_and_estimate(dataset)
            errors.setdefault(label, []).append(mse_avg(estimates, dataset))

    for label, values in errors.items():
        cells = "".join(f" {value:9.2e}" for value in values)
        print(f"{label:16s}{cells}")

    print(
        "\nTakeaway: splitting the budget (SPL) is orders of magnitude worse than\n"
        "sampling-based solutions; RS+FD pays a moderate utility price for hiding\n"
        "the sampled attribute, and RS+RFD recovers part of that price when the\n"
        "server can share realistic priors."
    )


if __name__ == "__main__":
    main()
