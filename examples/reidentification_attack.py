"""Re-identification attack against the SMP solution (Fig. 2 scenario).

A mobile-app vendor surveys the same users five times, each survey covering a
random subset of their demographic attributes.  Users answer with the SMP
solution: they sample one attribute per survey and report it with the full
privacy budget, disclosing *which* attribute they sampled.

The attacker accumulates the inferred values across surveys and matches the
resulting profiles against a public census-like table (the background
knowledge), reporting the top-1 and top-10 re-identification accuracy.

Run it with ``python examples/reidentification_attack.py``.
"""

from __future__ import annotations

from repro.attacks import ReidentificationAttack, build_profiles_smp, plan_surveys
from repro.datasets import load_dataset


def main() -> None:
    # Scaled-down Adult-like population (the paper uses n = 45,222).
    dataset = load_dataset("adult", n=4_000, rng=7)
    num_surveys = 5
    epsilon = 6.0

    surveys = plan_surveys(dataset.d, num_surveys, rng=3)
    print(f"Population: n={dataset.n}, d={dataset.d} attributes, "
          f"uniqueness={100 * dataset.uniqueness():.1f}% of users have a unique profile")
    print(f"Surveys: {[s.d for s in surveys]} attributes each, epsilon={epsilon} per report\n")

    background = ReidentificationAttack(dataset, rng=11)

    print(f"{'protocol':8s} {'surveys':>8s} {'top-1 RID-ACC':>14s} {'top-10 RID-ACC':>15s}")
    print("-" * 50)
    for protocol in ("GRR", "SUE", "OLH", "OUE"):
        profiling = build_profiles_smp(
            dataset, surveys, protocol=protocol, epsilon=epsilon, metric="uniform", rng=5
        )
        top1 = background.evaluate_profiling(profiling, top_k=1, model="FK-RI")
        top10 = background.evaluate_profiling(profiling, top_k=10, model="FK-RI")
        for surveys_done in sorted(top1):
            print(
                f"{protocol:8s} {surveys_done:8d} "
                f"{100 * top1[surveys_done].accuracy:13.2f}% "
                f"{100 * top10[surveys_done].accuracy:14.2f}%"
            )
        print("-" * 50)

    baseline = 100 * 10 / dataset.n
    print(f"\nRandom-guess baseline (top-10): {baseline:.2f}%")
    print(
        "Takeaway: with GRR (or SS/SUE) the attacker re-identifies a sizeable\n"
        "fraction of users after a few surveys, whereas OLH/OUE keep the risk\n"
        "roughly an order of magnitude lower - Fig. 2 of the paper."
    )


if __name__ == "__main__":
    main()
