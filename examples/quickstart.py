"""Quickstart: LDP frequency estimation and the plausible-deniability attack.

This example walks through the basic building blocks of the library:

1. collect one categorical attribute with each of the five LDP frequency
   oracles and compare their estimation error;
2. run the single-report plausible-deniability attack and compare the
   empirical attacker accuracy against the closed-form expectation of
   Sec. 3.2.1 of the paper.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.protocols import available_protocols, make_protocol


def main() -> None:
    # A synthetic Adult-like population; we collect the "education" attribute.
    dataset = load_dataset("adult", n=20_000, rng=1)
    attribute = dataset.domain.index_of("education")
    values = dataset.column(attribute)
    k = dataset.domain.size_of(attribute)
    truth = dataset.frequencies(attribute)

    epsilon = 2.0
    print(f"Collecting attribute 'education' (k={k}) from n={dataset.n} users "
          f"with epsilon={epsilon}\n")
    header = f"{'protocol':8s} {'MSE':>12s} {'attack ACC':>12s} {'expected ACC':>13s}"
    print(header)
    print("-" * len(header))

    for name in available_protocols():
        oracle = make_protocol(name, k=k, epsilon=epsilon, rng=42)

        # client side: every user perturbs their value locally
        reports = oracle.randomize_many(values)

        # server side: unbiased frequency estimation (Eq. 2 of the paper)
        estimate = oracle.aggregate(reports)
        mse = float(np.mean((estimate.estimates - truth) ** 2))

        # adversary side: guess each user's true value from their single report
        guesses = oracle.attack_many(reports)
        attack_acc = float(np.mean(guesses == values))

        print(
            f"{name:8s} {mse:12.2e} {100 * attack_acc:11.1f}% "
            f"{100 * oracle.expected_attack_accuracy():12.1f}%"
        )

    print(
        "\nTakeaway: every protocol estimates the histogram accurately, but the\n"
        "probability that an attacker recovers an individual's value from a\n"
        "single report differs widely across protocols (GRR/SS >> OLH/OUE)."
    )


if __name__ == "__main__":
    main()
