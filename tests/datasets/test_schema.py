"""Tests for the dataset schemas."""

import pytest

from repro.datasets.schema import (
    ACS_EMPLOYMENT_SCHEMA,
    ADULT_SCHEMA,
    NURSERY_SCHEMA,
    DatasetSchema,
    get_schema,
)
from repro.exceptions import InvalidParameterError


class TestPaperSchemas:
    def test_adult_matches_paper(self):
        assert ADULT_SCHEMA.d == 10
        assert ADULT_SCHEMA.sizes == (74, 7, 16, 7, 14, 6, 5, 2, 41, 2)
        assert ADULT_SCHEMA.default_n == 45_222
        assert "age" in ADULT_SCHEMA.attribute_names

    def test_acs_employment_matches_paper(self):
        assert ACS_EMPLOYMENT_SCHEMA.d == 18
        assert ACS_EMPLOYMENT_SCHEMA.sizes == (
            92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6,
        )
        assert ACS_EMPLOYMENT_SCHEMA.default_n == 10_336

    def test_nursery_matches_paper(self):
        assert NURSERY_SCHEMA.d == 9
        assert NURSERY_SCHEMA.sizes == (3, 5, 4, 4, 3, 2, 3, 3, 5)
        assert NURSERY_SCHEMA.default_n == 12_959
        # near-uniform marginals, the property that defeats the AIF attack
        assert NURSERY_SCHEMA.skew < 0.2

    def test_domain_construction(self):
        domain = ADULT_SCHEMA.domain()
        assert domain.d == 10
        assert domain.sizes == ADULT_SCHEMA.sizes


class TestLookup:
    @pytest.mark.parametrize("name", ["adult", "ADULT", "acs_employment", "nursery"])
    def test_get_schema(self, name):
        assert isinstance(get_schema(name), DatasetSchema)

    def test_unknown_schema(self):
        with pytest.raises(InvalidParameterError):
            get_schema("unknown")


class TestValidation:
    def test_mismatched_names_and_sizes(self):
        with pytest.raises(InvalidParameterError):
            DatasetSchema("x", ("a",), (2, 3), 10)

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            DatasetSchema("x", ("a",), (2,), 0)

    def test_invalid_latent_classes(self):
        with pytest.raises(InvalidParameterError):
            DatasetSchema("x", ("a",), (2,), 10, n_latent_classes=0)
