"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets.loaders import available_datasets, load_dataset
from repro.datasets.schema import ADULT_SCHEMA, NURSERY_SCHEMA
from repro.datasets.synthetic import synthesize, zipf_marginal
from repro.exceptions import InvalidParameterError


class TestZipfMarginal:
    def test_is_distribution(self):
        rng = np.random.default_rng(0)
        marginal = zipf_marginal(10, 1.0, rng)
        assert marginal.shape == (10,)
        assert marginal.sum() == pytest.approx(1.0)
        assert (marginal > 0).all()

    def test_zero_skew_is_near_uniform(self):
        rng = np.random.default_rng(0)
        marginal = zipf_marginal(10, 0.0, rng)
        assert marginal.max() / marginal.min() < 1.5

    def test_high_skew_is_concentrated(self):
        rng = np.random.default_rng(0)
        marginal = zipf_marginal(20, 2.0, rng)
        assert marginal.max() > 10 * np.median(marginal)

    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidParameterError):
            zipf_marginal(1, 1.0, rng)
        with pytest.raises(InvalidParameterError):
            zipf_marginal(5, -1.0, rng)


class TestSynthesize:
    def test_respects_schema(self):
        dataset = synthesize(ADULT_SCHEMA, n=500, rng=0)
        assert dataset.n == 500
        assert dataset.sizes == ADULT_SCHEMA.sizes
        assert dataset.name == "adult"

    def test_default_n_matches_paper(self):
        dataset = synthesize(NURSERY_SCHEMA, rng=0)
        assert dataset.n == NURSERY_SCHEMA.default_n

    def test_deterministic_for_fixed_seed(self):
        a = synthesize(ADULT_SCHEMA, n=300, rng=7)
        b = synthesize(ADULT_SCHEMA, n=300, rng=7)
        np.testing.assert_array_equal(a.data, b.data)

    def test_adult_like_data_is_skewed_and_correlated(self):
        dataset = synthesize(ADULT_SCHEMA, n=4000, rng=0)
        # skew: the mode of the largest attribute is far above uniform
        freqs = dataset.frequencies(0)
        assert freqs.max() > 3.0 / ADULT_SCHEMA.sizes[0]
        # uniqueness: most users are unique on the full profile (drives re-identification)
        assert dataset.uniqueness() > 0.5

    def test_nursery_like_data_is_near_uniform(self):
        dataset = synthesize(NURSERY_SCHEMA, n=6000, rng=0, correlation_strength=0.0)
        for j in range(dataset.d):
            freqs = dataset.frequencies(j)
            assert freqs.max() < 2.0 / dataset.sizes[j]

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            synthesize(ADULT_SCHEMA, n=0)


class TestLoaders:
    def test_available(self):
        assert set(available_datasets()) == {"adult", "acs_employment", "nursery"}

    @pytest.mark.parametrize("name", ["adult", "acs", "acs_employment", "nursery"])
    def test_load_by_name(self, name):
        dataset = load_dataset(name, n=200, rng=1)
        assert dataset.n == 200

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("census2050")

    def test_same_seed_same_population(self):
        a = load_dataset("adult", n=100, rng=3)
        b = load_dataset("adult", n=100, rng=3)
        np.testing.assert_array_equal(a.data, b.data)
