"""Tests for the OLH protocol."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols.olh import HASH_PRIME, OLH, optimal_hash_range, universal_hash


class TestHashing:
    def test_optimal_hash_range(self):
        assert optimal_hash_range(1.0) == round(math.e) + 1
        assert optimal_hash_range(0.1) >= 2

    def test_universal_hash_range(self):
        values = np.arange(100)
        hashed = universal_hash(values, 12345, 678, 7)
        assert hashed.min() >= 0 and hashed.max() < 7

    def test_universal_hash_deterministic(self):
        values = np.arange(50)
        a = universal_hash(values, 999, 1, 5)
        b = universal_hash(values, 999, 1, 5)
        np.testing.assert_array_equal(a, b)

    def test_universal_hash_spreads_values(self):
        rng = np.random.default_rng(0)
        g = 4
        collisions = []
        for _ in range(200):
            a = int(rng.integers(1, HASH_PRIME))
            b = int(rng.integers(0, HASH_PRIME))
            hashed = universal_hash(np.arange(40), a, b, g)
            collisions.append(np.bincount(hashed, minlength=g).max())
        # on average each bucket gets ~10 of 40 values; max bucket far from 40
        assert np.mean(collisions) < 20


class TestProtocol:
    def test_report_shape(self):
        oracle = OLH(k=30, epsilon=1.0, rng=0)
        reports = oracle.randomize_many(np.arange(30))
        assert reports.shape == (30, 3)
        assert reports[:, 2].min() >= 0 and reports[:, 2].max() < oracle.g

    def test_estimator_q_is_inverse_g(self):
        oracle = OLH(k=50, epsilon=2.0)
        assert oracle.q == pytest.approx(1.0 / oracle.g)

    def test_hash_domain_ldp_ratio(self):
        oracle = OLH(k=50, epsilon=2.0)
        assert oracle.p_hash / oracle.q_hash == pytest.approx(math.exp(2.0))

    def test_unbiased_estimation(self):
        rng = np.random.default_rng(0)
        truth = np.array([0.45, 0.25, 0.15, 0.1, 0.05])
        values = rng.choice(5, size=60000, p=truth)
        oracle = OLH(k=5, epsilon=1.0, rng=1)
        estimate = oracle.aggregate(oracle.randomize_many(values))
        np.testing.assert_allclose(estimate.estimates, truth, atol=0.03)

    def test_invalid_reports_rejected(self):
        oracle = OLH(k=5, epsilon=1.0)
        with pytest.raises(InvalidParameterError):
            oracle.support_counts(np.zeros((3, 2), dtype=np.int64))

    def test_custom_hash_range(self):
        oracle = OLH(k=100, epsilon=1.0, g=8)
        assert oracle.g == 8


class TestAttack:
    def test_attack_guess_hashes_to_reported_bucket(self):
        oracle = OLH(k=40, epsilon=1.0, rng=0)
        report = oracle.randomize(7)
        guess = oracle.attack(report)
        a, b, perturbed = report
        assert universal_hash(np.array([guess]), a, b, oracle.g)[0] == perturbed

    def test_attack_accuracy_beats_random_and_below_grr(self):
        k, eps = 40, 2.0
        values = np.random.default_rng(1).integers(0, k, size=20000)
        oracle = OLH(k=k, epsilon=eps, rng=0)
        reports = oracle.randomize_many(values)
        accuracy = np.mean(oracle.attack_many(reports) == values)
        assert accuracy > 2.0 / k  # clearly better than random guessing
        assert accuracy < 0.6  # far from the GRR-style full disclosure

    def test_attack_many_matches_single(self):
        oracle = OLH(k=15, epsilon=1.0, rng=0)
        values = np.random.default_rng(2).integers(0, 15, size=3000)
        reports = oracle.randomize_many(values)
        batch = oracle.attack_many(reports)
        # whenever some domain value hashes to the reported bucket, the guess
        # must be one of those values (empty buckets fall back to a random guess)
        a, b, perturbed = reports[:, 0], reports[:, 1], reports[:, 2]
        domain = np.arange(oracle.k)
        hashed_all = universal_hash(domain[None, :], a[:, None], b[:, None], oracle.g)
        has_candidates = (hashed_all == perturbed[:, None]).any(axis=1)
        guess_hash = universal_hash(batch, a, b, oracle.g)
        assert np.all(guess_hash[has_candidates] == perturbed[has_candidates])

    def test_expected_accuracy_formula(self):
        oracle = OLH(k=74, epsilon=1.0)
        expected = 1.0 / (2.0 * max(74 / (math.e + 1.0), 1.0))
        assert oracle.expected_attack_accuracy() == pytest.approx(expected)
