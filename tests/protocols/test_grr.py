"""Tests for the GRR protocol."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols.grr import GRR


class TestParameters:
    def test_p_q_formulas(self):
        oracle = GRR(k=10, epsilon=1.0)
        e = math.e
        assert oracle.p == pytest.approx(e / (e + 9))
        assert oracle.q == pytest.approx(1 / (e + 9))

    def test_ldp_ratio_equals_exp_epsilon(self):
        for eps in (0.5, 1.0, 4.0):
            oracle = GRR(k=7, epsilon=eps)
            assert oracle.p / oracle.q == pytest.approx(math.exp(eps))

    def test_probabilities_sum_to_one(self):
        oracle = GRR(k=12, epsilon=2.0)
        assert oracle.p + (oracle.k - 1) * oracle.q == pytest.approx(1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            GRR(k=1, epsilon=1.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InvalidParameterError):
            GRR(k=4, epsilon=0.0)


class TestRandomization:
    def test_reports_stay_in_domain(self):
        oracle = GRR(k=5, epsilon=1.0, rng=0)
        values = np.random.default_rng(1).integers(0, 5, size=2000)
        reports = oracle.randomize_many(values)
        assert reports.min() >= 0 and reports.max() < 5

    def test_keep_rate_matches_p(self):
        oracle = GRR(k=5, epsilon=2.0, rng=0)
        values = np.full(30000, 3)
        reports = oracle.randomize_many(values)
        assert np.mean(reports == 3) == pytest.approx(oracle.p, abs=0.01)

    def test_other_values_uniform(self):
        oracle = GRR(k=4, epsilon=1.0, rng=0)
        values = np.full(60000, 0)
        reports = oracle.randomize_many(values)
        others = reports[reports != 0]
        counts = np.bincount(others, minlength=4)[1:]
        assert counts.std() / counts.mean() < 0.05

    def test_single_randomize_matches_domain(self):
        oracle = GRR(k=3, epsilon=1.0, rng=0)
        assert all(0 <= oracle.randomize(1) < 3 for _ in range(50))

    def test_out_of_domain_value_rejected(self):
        oracle = GRR(k=3, epsilon=1.0)
        with pytest.raises(InvalidParameterError):
            oracle.randomize(3)
        with pytest.raises(InvalidParameterError):
            oracle.randomize_many(np.array([0, 5]))


class TestEstimation:
    def test_unbiased_estimation(self):
        rng = np.random.default_rng(0)
        truth = np.array([0.5, 0.3, 0.1, 0.1])
        values = rng.choice(4, size=60000, p=truth)
        oracle = GRR(k=4, epsilon=1.0, rng=1)
        estimate = oracle.aggregate(oracle.randomize_many(values))
        np.testing.assert_allclose(estimate.estimates, truth, atol=0.02)

    def test_estimates_sum_close_to_one(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 6, size=40000)
        oracle = GRR(k=6, epsilon=2.0, rng=3)
        estimate = oracle.aggregate(oracle.randomize_many(values))
        assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.03)

    def test_variance_decreases_with_epsilon(self):
        low = GRR(k=10, epsilon=0.5).estimator_variance(1000)
        high = GRR(k=10, epsilon=4.0).estimator_variance(1000)
        assert high < low


class TestAttack:
    def test_attack_returns_report(self):
        oracle = GRR(k=5, epsilon=1.0, rng=0)
        assert oracle.attack(3) == 3
        np.testing.assert_array_equal(
            oracle.attack_many(np.array([0, 4, 2])), np.array([0, 4, 2])
        )

    def test_empirical_accuracy_matches_expectation(self):
        oracle = GRR(k=8, epsilon=2.0, rng=0)
        values = np.random.default_rng(1).integers(0, 8, size=30000)
        reports = oracle.randomize_many(values)
        accuracy = np.mean(oracle.attack_many(reports) == values)
        assert accuracy == pytest.approx(oracle.expected_attack_accuracy(), abs=0.01)

    def test_accuracy_grows_with_epsilon(self):
        accuracies = [GRR(k=10, epsilon=e).expected_attack_accuracy() for e in (1, 3, 6)]
        assert accuracies == sorted(accuracies)
