"""Tests for the SUE and OUE unary-encoding protocols."""

import math

import numpy as np
import pytest

from repro.protocols.ue import OUE, SUE


class TestParameters:
    def test_sue_parameters(self):
        oracle = SUE(k=5, epsilon=2.0)
        half = math.exp(1.0)
        assert oracle.p == pytest.approx(half / (half + 1))
        assert oracle.q == pytest.approx(1 / (half + 1))
        assert oracle.p + oracle.q == pytest.approx(1.0)

    def test_oue_parameters(self):
        oracle = OUE(k=5, epsilon=2.0)
        assert oracle.p == pytest.approx(0.5)
        assert oracle.q == pytest.approx(1 / (math.exp(2.0) + 1))

    @pytest.mark.parametrize("cls", [SUE, OUE])
    def test_effective_epsilon_matches_budget(self, cls):
        for eps in (0.5, 1.0, 3.0):
            oracle = cls(k=4, epsilon=eps)
            assert oracle.effective_epsilon == pytest.approx(eps)


class TestEncodingAndRandomization:
    def test_encode_is_one_hot(self):
        oracle = OUE(k=4, epsilon=1.0)
        vector = oracle.encode(2)
        assert vector.tolist() == [0, 0, 1, 0]

    @pytest.mark.parametrize("cls", [SUE, OUE])
    def test_randomize_shape(self, cls):
        oracle = cls(k=6, epsilon=1.0, rng=0)
        reports = oracle.randomize_many(np.array([0, 1, 5]))
        assert reports.shape == (3, 6)
        assert set(np.unique(reports)) <= {0, 1}

    def test_bit_keep_and_flip_rates(self):
        oracle = OUE(k=3, epsilon=2.0, rng=0)
        reports = oracle.randomize_many(np.full(40000, 1))
        assert reports[:, 1].mean() == pytest.approx(oracle.p, abs=0.01)
        assert reports[:, 0].mean() == pytest.approx(oracle.q, abs=0.01)

    def test_zero_vector_fake_data_rate(self):
        oracle = OUE(k=4, epsilon=1.0, rng=0)
        fake = oracle.randomize_zero_vector(30000)
        assert fake.shape == (30000, 4)
        assert fake.mean() == pytest.approx(oracle.q, abs=0.01)

    def test_random_onehot_fake_data_uniform(self):
        oracle = OUE(k=4, epsilon=1.0, rng=0)
        fake = oracle.randomize_random_onehot(40000)
        expected = oracle.p / 4 + 3 * oracle.q / 4
        assert fake.mean() == pytest.approx(expected, abs=0.01)

    def test_random_onehot_fake_data_with_priors(self):
        oracle = OUE(k=3, epsilon=5.0, rng=0)
        prior = np.array([0.8, 0.1, 0.1])
        fake = oracle.randomize_random_onehot(30000, priors=prior)
        # bit 0 should be set far more often than bit 2
        assert fake[:, 0].mean() > 2 * fake[:, 2].mean()


class TestEstimationAndAttack:
    @pytest.mark.parametrize("cls", [SUE, OUE])
    def test_unbiased_estimation(self, cls):
        rng = np.random.default_rng(0)
        truth = np.array([0.4, 0.3, 0.2, 0.1])
        values = rng.choice(4, size=50000, p=truth)
        oracle = cls(k=4, epsilon=1.0, rng=1)
        estimate = oracle.aggregate(oracle.randomize_many(values))
        np.testing.assert_allclose(estimate.estimates, truth, atol=0.03)

    def test_oue_lower_variance_than_sue(self):
        sue = SUE(k=20, epsilon=1.0)
        oue = OUE(k=20, epsilon=1.0)
        assert oue.estimator_variance(1000) < sue.estimator_variance(1000)

    @pytest.mark.parametrize("cls", [SUE, OUE])
    def test_attack_accuracy_matches_expectation(self, cls):
        oracle = cls(k=6, epsilon=3.0, rng=0)
        values = np.random.default_rng(1).integers(0, 6, size=20000)
        reports = oracle.randomize_many(values)
        accuracy = np.mean(oracle.attack_many(reports) == values)
        assert accuracy == pytest.approx(oracle.expected_attack_accuracy(), abs=0.015)

    def test_attack_single_report_cases(self):
        oracle = OUE(k=4, epsilon=1.0, rng=0)
        # single bit set -> that bit
        assert oracle.attack(np.array([0, 0, 1, 0])) == 2
        # several bits set -> one of them
        assert oracle.attack(np.array([1, 0, 1, 0])) in (0, 2)
        # no bit set -> anything in the domain
        assert 0 <= oracle.attack(np.array([0, 0, 0, 0])) < 4

    def test_attack_many_agrees_with_attack_semantics(self):
        oracle = SUE(k=5, epsilon=2.0, rng=0)
        reports = np.array(
            [[0, 1, 0, 0, 0], [1, 1, 0, 0, 1], [0, 0, 0, 0, 0]], dtype=np.uint8
        )
        guesses = oracle.attack_many(reports)
        assert guesses[0] == 1
        assert guesses[1] in (0, 1, 4)
        assert 0 <= guesses[2] < 5
