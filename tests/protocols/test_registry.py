"""Tests for the protocol registry."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH
from repro.protocols.registry import available_protocols, canonical_name, make_protocol
from repro.protocols.ss import SubsetSelection
from repro.protocols.ue import OUE, SUE


class TestCanonicalName:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("grr", "GRR"),
            ("RR", "GRR"),
            ("olh", "OLH"),
            ("lh", "OLH"),
            ("ss", "SS"),
            ("omega-ss", "SS"),
            ("rappor", "SUE"),
            ("sue", "SUE"),
            ("oue", "OUE"),
            ("ue", "OUE"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_name(alias) == expected

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            canonical_name("nope")


class TestMakeProtocol:
    @pytest.mark.parametrize(
        "name, cls",
        [("GRR", GRR), ("OLH", OLH), ("SS", SubsetSelection), ("SUE", SUE), ("OUE", OUE)],
    )
    def test_instantiation(self, name, cls):
        oracle = make_protocol(name, k=10, epsilon=1.0, rng=0)
        assert isinstance(oracle, cls)
        assert oracle.k == 10
        assert oracle.epsilon == 1.0

    def test_available_protocols(self):
        assert set(available_protocols()) == {"GRR", "OLH", "SS", "SUE", "OUE"}

    def test_describe_contains_parameters(self):
        description = make_protocol("GRR", k=5, epsilon=2.0).describe()
        assert description["protocol"] == "GRR"
        assert description["k"] == 5
        assert 0 < description["q"] < description["p"] < 1
