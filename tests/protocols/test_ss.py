"""Tests for the omega-Subset-Selection protocol."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols.ss import SubsetSelection, optimal_subset_size


class TestSubsetSize:
    def test_optimal_size_formula(self):
        assert optimal_subset_size(20, 1.0) == max(1, round(20 / (math.e + 1)))

    def test_minimum_is_one(self):
        assert optimal_subset_size(4, 5.0) == 1

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            optimal_subset_size(1, 1.0)


class TestProtocol:
    def test_report_is_subset_without_duplicates(self):
        oracle = SubsetSelection(k=20, epsilon=1.0, rng=0)
        reports = oracle.randomize_many(np.arange(20))
        assert reports.shape == (20, oracle.omega)
        for row in reports:
            assert len(set(row.tolist())) == oracle.omega
            assert row.min() >= 0 and row.max() < 20

    def test_true_value_inclusion_rate(self):
        oracle = SubsetSelection(k=20, epsilon=1.0, rng=0)
        values = np.full(8000, 5)
        reports = oracle.randomize_many(values)
        included = np.mean((reports == 5).any(axis=1))
        assert included == pytest.approx(oracle.true_inclusion_probability, abs=0.02)

    def test_unbiased_estimation(self):
        rng = np.random.default_rng(0)
        truth = np.array([0.4, 0.2, 0.15, 0.1, 0.05, 0.05, 0.03, 0.02])
        values = rng.choice(8, size=20000, p=truth)
        oracle = SubsetSelection(k=8, epsilon=1.0, rng=1)
        estimate = oracle.aggregate(oracle.randomize_many(values))
        np.testing.assert_allclose(estimate.estimates, truth, atol=0.03)

    def test_explicit_omega(self):
        oracle = SubsetSelection(k=10, epsilon=1.0, omega=3)
        assert oracle.omega == 3

    def test_invalid_omega(self):
        with pytest.raises(InvalidParameterError):
            SubsetSelection(k=10, epsilon=1.0, omega=11)
        with pytest.raises(InvalidParameterError):
            SubsetSelection(k=10, epsilon=1.0, omega=0)

    def test_degenerate_omega_equal_k_rejected(self):
        # omega == k: every report is the whole domain, p == q, the
        # estimator would divide by zero — must fail loudly at construction
        with pytest.raises(InvalidParameterError, match="degenerate"):
            SubsetSelection(k=10, epsilon=1.0, omega=10)

    def test_with_omega_one_reduces_to_grr_accuracy(self):
        from repro.protocols.grr import GRR

        ss = SubsetSelection(k=5, epsilon=3.0)
        assert ss.omega == 1
        assert ss.expected_attack_accuracy() == pytest.approx(
            GRR(k=5, epsilon=3.0).expected_attack_accuracy()
        )


class TestVectorizedRandomizeParity:
    """Chi-square parity of the vectorized randomizer vs the scalar loop."""

    def test_support_distribution_matches_loop(self):
        from scipy import stats

        values = np.random.default_rng(3).integers(0, 20, size=8000)
        vec = SubsetSelection(k=20, epsilon=1.0, rng=21, chunk_size=123)
        loop = SubsetSelection(k=20, epsilon=1.0, rng=22)
        vec_counts = vec.support_counts(vec.randomize_many(values))
        loop_counts = loop.support_counts(loop._randomize_many_loop(values))
        result = stats.chi2_contingency(np.vstack([vec_counts, loop_counts]))
        assert result.pvalue > 1e-3, (
            "vectorized SS randomize_many drifted from the loop reference "
            f"(chi2={result.statistic:.2f}, p={result.pvalue:.2e})"
        )

    def test_inclusion_rate_matches_loop(self):
        from scipy import stats

        n = 8000
        values = np.full(n, 7, dtype=np.int64)
        vec = SubsetSelection(k=20, epsilon=1.0, rng=21)
        loop = SubsetSelection(k=20, epsilon=1.0, rng=22)
        p = vec.true_inclusion_probability
        for reports in (vec.randomize_many(values), loop._randomize_many_loop(values)):
            included = int((reports == 7).any(axis=1).sum())
            result = stats.chisquare([included, n - included], f_exp=[n * p, n * (1 - p)])
            assert result.pvalue > 1e-3

    def test_chunked_randomizer_rows_are_valid_subsets(self):
        values = np.random.default_rng(3).integers(0, 12, size=257)
        oracle = SubsetSelection(k=12, epsilon=1.0, rng=0, chunk_size=10)
        reports = oracle.randomize_many(values)
        assert reports.shape == (257, oracle.omega)
        for row in reports:
            assert len(set(row.tolist())) == oracle.omega
            assert row.min() >= 0 and row.max() < 12


class TestAttack:
    def test_attack_guess_from_subset(self):
        oracle = SubsetSelection(k=20, epsilon=1.0, rng=0)
        report = oracle.randomize(3)
        assert oracle.attack(report) in set(report.tolist())

    def test_attack_accuracy_matches_expectation(self):
        oracle = SubsetSelection(k=20, epsilon=1.0, rng=0)
        values = np.random.default_rng(1).integers(0, 20, size=20000)
        reports = oracle.randomize_many(values)
        accuracy = np.mean(oracle.attack_many(reports) == values)
        assert accuracy == pytest.approx(oracle.expected_attack_accuracy(), abs=0.01)

    def test_paper_closed_form_matches_optimal_omega(self):
        # with omega = k / (e^eps + 1), ACC reduces to (e^eps + 1) / (2k)
        k, eps = 64, 1.0
        oracle = SubsetSelection(k=k, epsilon=eps)
        paper = (math.exp(eps) + 1.0) / (2.0 * k)
        assert oracle.expected_attack_accuracy() == pytest.approx(paper, rel=0.15)
