"""Property-based tests of the LDP guarantee and estimator invariants.

Uses hypothesis to explore (protocol, k, epsilon) configurations and checks
the structural invariants that must hold for *every* configuration:

* the p/q parameterization satisfies the epsilon-LDP inequality;
* perturbed outputs remain inside the protocol's output space;
* frequency estimates are finite and sum to approximately one for large n;
* the multidimensional wrappers (SPL, RS+FD, RS+RFD) spend exactly the
  configured per-user budget: SPL splits epsilon over the d attributes and
  RS+FD / RS+RFD sanitize the sampled attribute at the amplified budget
  whose de-amplification is epsilon again.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import amplified_epsilon, deamplified_epsilon, split_budget
from repro.core.domain import Domain
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD
from repro.multidim.spl import SPL
from repro.privacy.ldp import grr_style_ratio, satisfies_ldp, ue_style_ratio
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH
from repro.protocols.registry import make_protocol
from repro.protocols.ss import SubsetSelection
from repro.protocols.ue import OUE, SUE, UnaryEncoding

PROTOCOL_NAMES = ("GRR", "OLH", "SS", "SUE", "OUE")

protocol_strategy = st.sampled_from(PROTOCOL_NAMES)
k_strategy = st.integers(min_value=2, max_value=60)
epsilon_strategy = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_grr_satisfies_ldp(k, epsilon):
    oracle = GRR(k=k, epsilon=epsilon)
    assert satisfies_ldp(grr_style_ratio(oracle.p, oracle.q), epsilon)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_olh_hashed_grr_satisfies_ldp(k, epsilon):
    oracle = OLH(k=k, epsilon=epsilon)
    assert satisfies_ldp(grr_style_ratio(oracle.p_hash, oracle.q_hash), epsilon)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_ue_protocols_satisfy_ldp(k, epsilon):
    for cls in (SUE, OUE):
        oracle = cls(k=k, epsilon=epsilon)
        assert satisfies_ldp(ue_style_ratio(oracle.p, oracle.q), epsilon)


@settings(max_examples=40, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_ss_inclusion_probabilities_are_valid(k, epsilon):
    oracle = SubsetSelection(k=k, epsilon=epsilon)
    assert 0.0 < oracle.q <= oracle.p <= 1.0
    assert 1 <= oracle.omega <= k
    # the ratio of inclusion probabilities is bounded by e^eps
    assert oracle.p / oracle.q <= math.exp(epsilon) * (1 + 1e-9) * k


@settings(max_examples=25, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=2, max_value=20),
    epsilon=st.floats(min_value=0.5, max_value=6.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reports_stay_in_output_space(protocol, k, epsilon, seed):
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=seed)
    values = np.random.default_rng(seed).integers(0, k, size=200)
    reports = oracle.randomize_many(values)
    counts = oracle.support_counts(reports)
    assert counts.shape == (k,)
    assert np.all(counts >= 0)
    assert np.isfinite(counts).all()


@settings(max_examples=15, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=3, max_value=12),
    epsilon=st.floats(min_value=1.0, max_value=5.0),
)
def test_estimates_roughly_sum_to_one(protocol, k, epsilon):
    rng = np.random.default_rng(0)
    values = rng.integers(0, k, size=20000)
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=1)
    estimate = oracle.aggregate(oracle.randomize_many(values))
    assert np.isfinite(estimate.estimates).all()
    assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.15)


@settings(max_examples=25, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=2, max_value=40),
    epsilon=st.floats(min_value=0.2, max_value=10.0),
)
def test_expected_attack_accuracy_is_probability(protocol, k, epsilon):
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=0)
    accuracy = oracle.expected_attack_accuracy()
    assert 0.0 < accuracy <= 1.0
    # never worse than the uniform random guess by more than a rounding margin
    assert accuracy >= 1.0 / (2 * k)


# --------------------------------------------------------------------------- #
# multidimensional wrappers: exact budget accounting (ISSUE 1, satellite 3)
# --------------------------------------------------------------------------- #
sizes_strategy = st.lists(st.integers(min_value=2, max_value=12), min_size=2, max_size=5)
budget_strategy = st.floats(min_value=0.5, max_value=8.0, allow_nan=False)


def _effective_epsilon(oracle) -> float:
    """The budget the oracle's worst-case output-probability ratio realizes."""
    if isinstance(oracle, OLH):
        return math.log(grr_style_ratio(oracle.p_hash, oracle.q_hash))
    if isinstance(oracle, UnaryEncoding):
        return math.log(ue_style_ratio(oracle.p, oracle.q))
    if isinstance(oracle, GRR):
        return math.log(grr_style_ratio(oracle.p, oracle.q))
    raise AssertionError(f"no tight ratio known for {type(oracle)!r}")


@settings(max_examples=40, deadline=None)
@given(sizes=sizes_strategy, epsilon=budget_strategy, protocol=protocol_strategy)
def test_spl_splits_the_budget_exactly(sizes, epsilon, protocol):
    """SPL must give every attribute epsilon/d, summing back to epsilon."""
    domain = Domain.from_sizes(sizes)
    solution = SPL(domain, epsilon, protocol=protocol, rng=0)
    per_attribute = split_budget(solution.epsilon, domain.d)
    assert per_attribute * domain.d == pytest.approx(epsilon, rel=1e-12)
    for k in sizes:
        oracle = make_protocol(protocol, k=k, epsilon=per_attribute, rng=0)
        if isinstance(oracle, SubsetSelection):
            # the SS marginal event probabilities obey the per-report bound
            assert satisfies_ldp(oracle.p / oracle.q, per_attribute)
        else:
            assert _effective_epsilon(oracle) == pytest.approx(per_attribute, rel=1e-9)


_RSFD_CONFIGS = [
    ("grr", "OUE"),
    ("ue-z", "SUE"),
    ("ue-z", "OUE"),
    ("ue-r", "SUE"),
    ("ue-r", "OUE"),
]


@pytest.mark.parametrize("variant, ue_kind", _RSFD_CONFIGS)
@settings(max_examples=20, deadline=None)
@given(sizes=sizes_strategy, epsilon=budget_strategy)
def test_rsfd_spends_exactly_the_amplified_budget(variant, ue_kind, sizes, epsilon):
    """RS+FD sanitizes at epsilon' = ln(d(e^eps - 1) + 1); de-amplified: eps."""
    domain = Domain.from_sizes(sizes)
    solution = RSFD(domain, epsilon, variant=variant, ue_kind=ue_kind, rng=0)
    expected = amplified_epsilon(epsilon, domain.d)
    assert solution.amplified_epsilon == pytest.approx(expected, rel=1e-12)
    assert deamplified_epsilon(solution.amplified_epsilon, domain.d) == pytest.approx(
        epsilon, rel=1e-9
    )
    for attribute in range(domain.d):
        oracle = solution._randomizer(attribute)
        assert _effective_epsilon(oracle) == pytest.approx(
            solution.amplified_epsilon, rel=1e-9
        )
        # the per-report ratio never exceeds e^{eps'}
        assert satisfies_ldp(math.exp(_effective_epsilon(oracle)), expected)


_RSRFD_CONFIGS = [("grr", "OUE"), ("ue-r", "SUE"), ("ue-r", "OUE")]


@pytest.mark.parametrize("variant, ue_kind", _RSRFD_CONFIGS)
@settings(max_examples=20, deadline=None)
@given(sizes=sizes_strategy, epsilon=budget_strategy)
def test_rsrfd_spends_exactly_the_amplified_budget(variant, ue_kind, sizes, epsilon):
    """RS+RFD must spend the same amplified budget as RS+FD."""
    domain = Domain.from_sizes(sizes)
    priors = [np.full(k, 1.0 / k) for k in sizes]
    solution = RSRFD(domain, epsilon, priors=priors, variant=variant, ue_kind=ue_kind, rng=0)
    expected = amplified_epsilon(epsilon, domain.d)
    assert solution.amplified_epsilon == pytest.approx(expected, rel=1e-12)
    assert deamplified_epsilon(solution.amplified_epsilon, domain.d) == pytest.approx(
        epsilon, rel=1e-9
    )
    for attribute in range(domain.d):
        oracle = solution._randomizer(attribute)
        assert _effective_epsilon(oracle) == pytest.approx(
            solution.amplified_epsilon, rel=1e-9
        )
