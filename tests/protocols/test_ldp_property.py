"""Property-based tests of the LDP guarantee and estimator invariants.

Uses hypothesis to explore (protocol, k, epsilon) configurations and checks
the structural invariants that must hold for *every* configuration:

* the p/q parameterization satisfies the epsilon-LDP inequality;
* perturbed outputs remain inside the protocol's output space;
* frequency estimates are finite and sum to approximately one for large n.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.ldp import grr_style_ratio, satisfies_ldp, ue_style_ratio
from repro.protocols.grr import GRR
from repro.protocols.olh import OLH
from repro.protocols.registry import make_protocol
from repro.protocols.ss import SubsetSelection
from repro.protocols.ue import OUE, SUE

PROTOCOL_NAMES = ("GRR", "OLH", "SS", "SUE", "OUE")

protocol_strategy = st.sampled_from(PROTOCOL_NAMES)
k_strategy = st.integers(min_value=2, max_value=60)
epsilon_strategy = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_grr_satisfies_ldp(k, epsilon):
    oracle = GRR(k=k, epsilon=epsilon)
    assert satisfies_ldp(grr_style_ratio(oracle.p, oracle.q), epsilon)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_olh_hashed_grr_satisfies_ldp(k, epsilon):
    oracle = OLH(k=k, epsilon=epsilon)
    assert satisfies_ldp(grr_style_ratio(oracle.p_hash, oracle.q_hash), epsilon)


@settings(max_examples=60, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_ue_protocols_satisfy_ldp(k, epsilon):
    for cls in (SUE, OUE):
        oracle = cls(k=k, epsilon=epsilon)
        assert satisfies_ldp(ue_style_ratio(oracle.p, oracle.q), epsilon)


@settings(max_examples=40, deadline=None)
@given(k=k_strategy, epsilon=epsilon_strategy)
def test_ss_inclusion_probabilities_are_valid(k, epsilon):
    oracle = SubsetSelection(k=k, epsilon=epsilon)
    assert 0.0 < oracle.q <= oracle.p <= 1.0
    assert 1 <= oracle.omega <= k
    # the ratio of inclusion probabilities is bounded by e^eps
    assert oracle.p / oracle.q <= math.exp(epsilon) * (1 + 1e-9) * k


@settings(max_examples=25, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=2, max_value=20),
    epsilon=st.floats(min_value=0.5, max_value=6.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reports_stay_in_output_space(protocol, k, epsilon, seed):
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=seed)
    values = np.random.default_rng(seed).integers(0, k, size=200)
    reports = oracle.randomize_many(values)
    counts = oracle.support_counts(reports)
    assert counts.shape == (k,)
    assert np.all(counts >= 0)
    assert np.isfinite(counts).all()


@settings(max_examples=15, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=3, max_value=12),
    epsilon=st.floats(min_value=1.0, max_value=5.0),
)
def test_estimates_roughly_sum_to_one(protocol, k, epsilon):
    rng = np.random.default_rng(0)
    values = rng.integers(0, k, size=20000)
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=1)
    estimate = oracle.aggregate(oracle.randomize_many(values))
    assert np.isfinite(estimate.estimates).all()
    assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.15)


@settings(max_examples=25, deadline=None)
@given(
    protocol=protocol_strategy,
    k=st.integers(min_value=2, max_value=40),
    epsilon=st.floats(min_value=0.2, max_value=10.0),
)
def test_expected_attack_accuracy_is_probability(protocol, k, epsilon):
    oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=0)
    accuracy = oracle.expected_attack_accuracy()
    assert 0.0 < accuracy <= 1.0
    # never worse than the uniform random guess by more than a rounding margin
    assert accuracy >= 1.0 / (2 * k)
