"""Streaming-aggregation tests (ISSUE 2 tentpole).

Covers the three invariants of the bounded-memory subsystem:

* chunked-vs-one-shot **byte parity**: for all five oracles, feeding the same
  reports through ``accumulator()``/``aggregate_chunks`` in any chunking —
  including chunk size 1 and n not divisible by the chunk size — returns a
  ``FrequencyEstimate`` bit-identical to one-shot ``aggregate``;
* packed-vs-unpacked **UE parity**: bit-packing a report matrix changes
  neither support counts nor estimates;
* the degenerate-parameter and prior-validation guards of the satellites.
"""

import numpy as np
import pytest

from repro.core.frequencies import validate_probability_vector
from repro.exceptions import EstimationError, InvalidParameterError
from repro.protocols import (
    CountAccumulator,
    PackedBits,
    is_chunk_iterable,
)
from repro.protocols.base import FrequencyOracle
from repro.protocols.olh import OLH
from repro.protocols.registry import make_protocol
from repro.protocols.ss import SubsetSelection
from repro.protocols.ue import OUE, SUE

PROTOCOLS = ("GRR", "OLH", "SS", "SUE", "OUE")
K = 8
EPSILON = 1.2
N = 1001  # deliberately not divisible by any tested chunk size > 1


def _reports(protocol: str):
    values = np.random.default_rng(5).integers(0, K, size=N)
    oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=17)
    return oracle, oracle.randomize_many(values)


def _chunks(reports, chunk_size):
    return [reports[start : start + chunk_size] for start in range(0, N, chunk_size)]


class TestChunkedParity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("chunk_size", (1, 3, 250, N, 5 * N))
    def test_accumulator_matches_one_shot_bit_for_bit(self, protocol, chunk_size):
        oracle, reports = _reports(protocol)
        one_shot = oracle.aggregate(reports)
        accumulator = oracle.accumulator()
        for chunk in _chunks(reports, chunk_size):
            assert accumulator.add(chunk) is accumulator
        streamed = accumulator.finalize()
        assert streamed.n == one_shot.n == N
        assert streamed.estimates.tobytes() == one_shot.estimates.tobytes()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_aggregate_accepts_chunk_iterables(self, protocol):
        oracle, reports = _reports(protocol)
        one_shot = oracle.aggregate(reports)
        from_list = oracle.aggregate(_chunks(reports, 100))
        from_generator = oracle.aggregate(iter(_chunks(reports, 100)))
        assert from_list.estimates.tobytes() == one_shot.estimates.tobytes()
        assert from_generator.estimates.tobytes() == one_shot.estimates.tobytes()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_attack_many_accepts_chunk_iterables(self, protocol):
        oracle, reports = _reports(protocol)
        guesses = oracle.attack_many(_chunks(reports, 100))
        assert guesses.shape == (N,)
        assert guesses.min() >= 0 and guesses.max() < K

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_attack_many_on_empty_chunk_iterable(self, protocol):
        # an exhausted generator (zero-report shard) must yield an empty
        # guess array, not a numpy concatenate error
        oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=0)
        guesses = oracle.attack_many(iter([]))
        assert guesses.shape == (0,)
        assert guesses.dtype == np.int64

    def test_single_report_chunk_boundary(self):
        # n = 1: one chunk holding one report must aggregate like one-shot
        oracle = make_protocol("GRR", k=K, epsilon=EPSILON, rng=0)
        report = oracle.randomize_many(np.asarray([3]))
        one_shot = oracle.aggregate(report)
        streamed = oracle.accumulator().add(report).finalize()
        assert streamed.estimates.tobytes() == one_shot.estimates.tobytes()
        assert streamed.n == 1

    def test_finalize_with_explicit_n(self):
        oracle, reports = _reports("GRR")
        explicit = oracle.accumulator().add(reports).finalize(n=2 * N)
        assert explicit.n == 2 * N
        assert explicit.estimates.tobytes() == oracle.aggregate(reports, n=2 * N).estimates.tobytes()

    def test_finalize_without_reports_raises(self):
        oracle = make_protocol("GRR", k=K, epsilon=EPSILON)
        with pytest.raises(EstimationError):
            oracle.accumulator().finalize()

    def test_merge_combines_shards(self):
        oracle, reports = _reports("SS")
        one_shot = oracle.aggregate(reports)
        left = oracle.accumulator().add(reports[: N // 2])
        right = oracle.accumulator().add(reports[N // 2 :])
        merged = left.merge(right).finalize()
        assert merged.n == N
        assert merged.estimates.tobytes() == one_shot.estimates.tobytes()

    def test_merge_rejects_mismatched_domains(self):
        a = CountAccumulator(make_protocol("GRR", k=4, epsilon=1.0))
        b = CountAccumulator(make_protocol("GRR", k=5, epsilon=1.0))
        with pytest.raises(EstimationError):
            a.merge(b)

    def test_merge_rejects_incompatible_estimators(self):
        # same k, but different epsilon (different p/q) or protocol: merging
        # would finalize mixed counts with the wrong estimator
        a = CountAccumulator(make_protocol("GRR", k=4, epsilon=1.0))
        b = CountAccumulator(make_protocol("GRR", k=4, epsilon=4.0))
        with pytest.raises(EstimationError, match="incompatible"):
            a.merge(b)
        c = CountAccumulator(make_protocol("OUE", k=4, epsilon=1.0))
        with pytest.raises(EstimationError, match="incompatible"):
            a.merge(c)

    def test_merge_rejects_float64_saturated_epsilon_collision(self):
        # Regression: at large epsilon OLH's p = e^eps / (e^eps + g - 1)
        # rounds to exactly 1.0 in float64, so two oracles with *different*
        # privacy budgets (and the same explicit g) collide on the old
        # (name, k, p, q) compatibility tuple.  The fingerprint check must
        # still reject the merge — the accumulators carry different epsilons
        # and their counts belong to different privacy regimes.
        a_oracle = OLH(k=K, epsilon=40.0, g=8, rng=0)
        b_oracle = OLH(k=K, epsilon=41.0, g=8, rng=1)
        legacy_tuple = lambda o: (o.name, o.k, o.p, o.q)  # noqa: E731
        assert legacy_tuple(a_oracle) == legacy_tuple(b_oracle)  # the trap
        assert a_oracle.estimator_fingerprint() != b_oracle.estimator_fingerprint()
        with pytest.raises(EstimationError, match="incompatible"):
            CountAccumulator(a_oracle).merge(CountAccumulator(b_oracle))

    def test_merge_rejects_mismatched_protocol_params(self):
        # identical (k, epsilon) but different protocol-specific estimator
        # parameters: OLH hash range, SS subset size, UE packing
        a = CountAccumulator(OLH(k=K, epsilon=1.0, g=3))
        b = CountAccumulator(OLH(k=K, epsilon=1.0, g=5))
        with pytest.raises(EstimationError, match="incompatible"):
            a.merge(b)
        c = CountAccumulator(SubsetSelection(k=K, epsilon=1.0, omega=2))
        d = CountAccumulator(SubsetSelection(k=K, epsilon=1.0, omega=4))
        with pytest.raises(EstimationError, match="incompatible"):
            c.merge(d)
        e = CountAccumulator(SUE(k=K, epsilon=1.0, packed=False))
        f = CountAccumulator(SUE(k=K, epsilon=1.0, packed=True))
        with pytest.raises(EstimationError, match="incompatible"):
            e.merge(f)

    def test_merge_accepts_identical_configurations(self):
        # differing rng seeds / chunk sizes do not change the estimator
        a = CountAccumulator(OLH(k=K, epsilon=1.0, g=4, rng=0, chunk_size=64))
        b = CountAccumulator(OLH(k=K, epsilon=1.0, g=4, rng=9, chunk_size=8192))
        assert a.merge(b) is a


class TestEmptyChunks:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_empty_chunk_is_a_no_op(self, protocol):
        # interleaving zero-row chunks (idle shards, drained streams) must
        # not change the count, the report total, or a single output bit
        oracle, reports = _reports(protocol)
        empty = reports[:0]
        plain = oracle.accumulator().add(reports).finalize()
        padded = oracle.accumulator().add(empty).add(reports).add(empty).finalize()
        assert padded.n == plain.n == N
        assert padded.estimates.tobytes() == plain.estimates.tobytes()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_empty_chunk_counts_zero_reports(self, protocol):
        oracle, reports = _reports(protocol)
        empty = reports[:0]
        accumulator = oracle.accumulator().add(empty)
        assert accumulator.n == 0
        assert not accumulator.counts.any()
        assert oracle.attack_many(empty).shape == (0,)

    @pytest.mark.parametrize("protocol", ("SS", "SUE", "OUE"))
    def test_flat_empty_array_counts_zero_reports(self, protocol):
        # a 1-D empty array must not be mistaken for one flat report row
        # (SS subsets and UE bit vectors arrive 1-D for single users)
        oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=0)
        flat = np.empty(0, dtype=np.int64)
        assert oracle._num_reports(flat) == 0
        counts = oracle.support_counts(flat)
        assert counts.shape == (K,)
        assert not counts.any()
        assert oracle.attack_many(flat).shape == (0,)

    def test_empty_packed_chunk_is_a_no_op(self):
        oracle = SUE(k=K, epsilon=EPSILON, rng=17, packed=True)
        values = np.random.default_rng(5).integers(0, K, size=N)
        reports = oracle.randomize_many(values)
        plain = oracle.accumulator().add(reports).finalize()
        padded = (
            oracle.accumulator().add(reports[:0]).add(reports).add(reports[:0]).finalize()
        )
        assert padded.n == plain.n == N
        assert padded.estimates.tobytes() == plain.estimates.tobytes()
        assert oracle.attack_many(reports[:0]).shape == (0,)

    def test_empty_chunk_between_chunked_olh_blocks(self):
        # OLH's internally blocked kernel must accept a (0, 3) matrix
        oracle = OLH(k=K, epsilon=EPSILON, rng=3, chunk_size=16)
        values = np.random.default_rng(7).integers(0, K, size=100)
        reports = oracle.randomize_many(values)
        plain = oracle.accumulator().add(reports).finalize()
        padded = oracle.accumulator().add(reports[:0]).add(reports).finalize()
        assert padded.estimates.tobytes() == plain.estimates.tobytes()


class TestOLHChunkedKernels:
    def test_internal_chunking_matches_dense(self):
        values = np.random.default_rng(1).integers(0, K, size=N)
        dense = OLH(k=K, epsilon=EPSILON, rng=9)
        reports = dense.randomize_many(values)
        chunked = OLH(k=K, epsilon=EPSILON, rng=9, chunk_size=64)
        np.testing.assert_array_equal(
            dense.support_counts(reports), chunked.support_counts(reports)
        )
        assert (
            chunked.aggregate(reports).estimates.tobytes()
            == dense.aggregate(reports).estimates.tobytes()
        )

    def test_chunked_attack_guesses_are_supported_values(self):
        values = np.random.default_rng(1).integers(0, K, size=300)
        oracle = OLH(k=K, epsilon=EPSILON, rng=9, chunk_size=32)
        reports = oracle.randomize_many(values)
        guesses = oracle.attack_many(reports)
        assert guesses.shape == (300,)
        assert guesses.min() >= 0 and guesses.max() < K

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            OLH(k=K, epsilon=EPSILON, chunk_size=0)


class TestPackedBits:
    def test_pack_unpack_roundtrip(self):
        bits = np.random.default_rng(0).integers(0, 2, size=(37, 11)).astype(np.uint8)
        packed = PackedBits.pack(bits)
        assert len(packed) == 37 and packed.k == 11
        np.testing.assert_array_equal(packed.unpack(), bits)
        np.testing.assert_array_equal(packed.unpack(10, 20), bits[10:20])
        np.testing.assert_array_equal(packed.column_sums(chunk_size=8), bits.sum(axis=0))

    def test_storage_is_eight_times_smaller(self):
        bits = np.zeros((1000, 64), dtype=np.uint8)
        packed = PackedBits.pack(bits)
        assert packed.nbytes * 8 == bits.size

    def test_row_indexing_returns_packed(self):
        bits = np.eye(10, dtype=np.uint8)
        packed = PackedBits.pack(bits)
        sub = packed[np.asarray([1, 3])]
        np.testing.assert_array_equal(sub.unpack(), bits[[1, 3]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            PackedBits(np.zeros((4, 3), dtype=np.uint8), k=64)


@pytest.mark.parametrize("cls", (SUE, OUE))
class TestPackedUEParity:
    def test_packed_support_counts_and_estimates_identical(self, cls):
        values = np.random.default_rng(2).integers(0, 11, size=777)
        oracle = cls(k=11, epsilon=1.0, rng=4)
        dense = oracle.randomize_many(values)
        packed = PackedBits.pack(dense)
        np.testing.assert_array_equal(
            oracle.support_counts(dense), oracle.support_counts(packed)
        )
        assert (
            oracle.aggregate(packed).estimates.tobytes()
            == oracle.aggregate(dense).estimates.tobytes()
        )

    def test_packed_generation_end_to_end(self, cls):
        values = np.random.default_rng(2).integers(0, 11, size=777)
        oracle = cls(k=11, epsilon=1.0, rng=4, packed=True, chunk_size=100)
        reports = oracle.randomize_many(values)
        assert isinstance(reports, PackedBits)
        assert len(reports) == 777
        estimate = oracle.aggregate(reports)
        assert estimate.n == 777
        # unbiasedness sanity: estimates sum to roughly one
        assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.5)
        guesses = oracle.attack_many(reports)
        assert guesses.shape == (777,)

    def test_packed_fake_data_generators(self, cls):
        oracle = cls(k=9, epsilon=1.0, rng=4, packed=True, chunk_size=32)
        zeros = oracle.randomize_zero_vector(101)
        onehot = oracle.randomize_random_onehot(101)
        assert isinstance(zeros, PackedBits) and len(zeros) == 101
        assert isinstance(onehot, PackedBits) and len(onehot) == 101

    def test_packed_attack_on_empty_reports(self, cls):
        oracle = cls(k=9, epsilon=1.0, rng=4)
        assert oracle.attack_many(PackedBits.empty(0, 9)).shape == (0,)


class TestChunkIterableDetection:
    def test_arrays_and_packed_are_not_chunked(self):
        assert not is_chunk_iterable(np.zeros((3, 4)))
        assert not is_chunk_iterable(PackedBits.empty(3, 4))
        assert not is_chunk_iterable([])
        assert not is_chunk_iterable([1, 2, 3])  # scalar GRR reports

    def test_lists_of_arrays_and_generators_are_chunked(self):
        assert is_chunk_iterable([np.zeros((3, 4))])
        assert is_chunk_iterable((PackedBits.empty(2, 4),))
        assert is_chunk_iterable(iter([np.zeros(3)]))


class TestDegenerateParameters:
    def test_ss_omega_equal_k_rejected_at_construction(self):
        with pytest.raises(InvalidParameterError, match="degenerate"):
            SubsetSelection(k=10, epsilon=1.0, omega=10)

    def test_degenerate_p_equals_q_aggregation_raises(self):
        class Degenerate(OUE):
            # force p == q: every report is pure noise
            @property
            def p(self):
                return 0.5

            @property
            def q(self):
                return 0.5

        oracle = Degenerate(k=4, epsilon=1.0, rng=0)
        reports = oracle.randomize_many(np.asarray([0, 1, 2, 3]))
        with pytest.raises(EstimationError, match="degenerate"):
            oracle.aggregate(reports)
        with pytest.raises(EstimationError, match="degenerate"):
            oracle.estimator_variance(n=100)


class TestPriorValidation:
    @pytest.mark.parametrize(
        "priors",
        (
            np.zeros(6),  # all-zero mass
            -np.ones(6),  # negative mass
            np.asarray([np.nan] * 6),  # NaN
            np.asarray([np.inf, 1, 1, 1, 1, 1]),  # infinite
            np.ones(5),  # wrong length
        ),
    )
    def test_randomize_random_onehot_rejects_bad_priors(self, priors):
        oracle = OUE(k=6, epsilon=1.0, rng=0)
        with pytest.raises(InvalidParameterError):
            oracle.randomize_random_onehot(10, priors=priors)

    def test_valid_priors_are_normalized(self):
        normalized = validate_probability_vector(np.asarray([2.0, 2.0]), 2)
        np.testing.assert_allclose(normalized, [0.5, 0.5])

    def test_randomize_random_onehot_with_valid_priors(self):
        oracle = OUE(k=3, epsilon=5.0, rng=0)
        reports = oracle.randomize_random_onehot(500, priors=np.asarray([1.0, 0.0, 0.0]))
        assert reports.shape == (500, 3)


class TestDispatchHoistedToBase:
    """The chunk-iterable guard lives on FrequencyOracle itself: an oracle
    implementing only the dense kernels gets streaming support for free."""

    class MinimalOracle(FrequencyOracle):
        """Toy oracle implementing only the protected dense kernels."""

        name = "MINIMAL"

        @property
        def p(self):
            return 0.9

        @property
        def q(self):
            return 0.1

        def randomize(self, value):
            return int(value)

        def _support_counts_dense(self, reports):
            return np.bincount(np.asarray(reports, dtype=np.int64), minlength=self.k).astype(
                float
            )

        def attack(self, report):
            return int(report)

        def expected_attack_accuracy(self):
            return self.p

        def _num_reports(self, reports):
            return int(np.asarray(reports).shape[0])

    def test_chunked_support_counts_without_any_override(self):
        oracle = self.MinimalOracle(k=5, epsilon=1.0, rng=0)
        reports = np.array([0, 1, 1, 2, 4, 4, 4])
        chunked = oracle.support_counts([reports[:3], reports[3:]])
        np.testing.assert_array_equal(chunked, oracle.support_counts(reports))

    def test_chunked_aggregate_matches_one_shot(self):
        oracle = self.MinimalOracle(k=5, epsilon=1.0, rng=0)
        reports = np.array([0, 1, 1, 2, 4, 4, 4])
        one_shot = oracle.aggregate(reports)
        chunked = oracle.aggregate([reports[:4], reports[4:]])
        np.testing.assert_array_equal(one_shot.estimates, chunked.estimates)
        assert one_shot.n == chunked.n

    def test_chunked_attack_uses_default_dense_kernel(self):
        oracle = self.MinimalOracle(k=5, epsilon=1.0, rng=0)
        reports = np.array([3, 1, 0, 2])
        guesses = oracle.attack_many([reports[:2], reports[2:]])
        np.testing.assert_array_equal(guesses, reports)

    def test_five_oracles_still_roundtrip_chunked(self):
        for protocol in ("GRR", "OLH", "SS", "SUE", "OUE"):
            oracle = make_protocol(protocol, 8, 1.0, rng=3)
            values = np.random.default_rng(5).integers(0, 8, size=64)
            reports = oracle.randomize_many(values)
            if isinstance(reports, np.ndarray):
                chunks = [reports[:30], reports[30:]]
            else:
                chunks = [reports]
            np.testing.assert_array_equal(
                oracle.support_counts(chunks), oracle.support_counts(reports)
            )


class TestValidateReports:
    """The ingest-edge wire contract (``validate_reports``) per oracle.

    Decodable-but-invalid batches (negative GRR values, wrong-width OLH
    matrices, oversized UE rows) must raise ``InvalidParameterError`` at the
    edge — never crash (or silently bias) a support-count kernel downstream.
    """

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_genuine_reports_pass_through_unchanged_counts(self, protocol):
        oracle, reports = _reports(protocol)
        validated = oracle.validate_reports(reports)
        np.testing.assert_array_equal(
            oracle.support_counts(validated), oracle.support_counts(reports)
        )

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_empty_batch_is_valid(self, protocol):
        oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=0)
        validated = oracle.validate_reports(np.empty(0, dtype=np.int64))
        assert oracle._num_reports(validated) == 0

    def test_grr_rejects_out_of_domain_and_wrong_rank(self):
        oracle = make_protocol("GRR", k=K, epsilon=EPSILON, rng=0)
        for bad in ([-1], [K], [[0, 1], [2, 3]]):
            with pytest.raises(InvalidParameterError):
                oracle.validate_reports(np.asarray(bad))

    def test_olh_rejects_wrong_width_and_out_of_range_rows(self):
        oracle = make_protocol("OLH", k=K, epsilon=EPSILON, rng=0)
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(np.asarray([[0, 0, 0]]))  # seed a must be >= 1
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(np.asarray([[1, 0, oracle.g]]))  # y out of range

    def test_ss_rejects_wrong_width_and_out_of_domain(self):
        oracle = make_protocol("SS", k=K, epsilon=EPSILON, rng=0)
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(np.zeros((2, oracle.omega + 1), dtype=np.int64))
        bad = np.zeros((2, oracle.omega), dtype=np.int64)
        bad[0, 0] = -1
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(bad)

    @pytest.mark.parametrize("protocol", ("SUE", "OUE"))
    def test_ue_rejects_wrong_width_and_non_bits(self, protocol):
        oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=0)
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(np.zeros((2, K + 1), dtype=np.int64))
        bad = np.zeros((2, K), dtype=np.int64)
        bad[0, 0] = 2
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(bad)
        with pytest.raises(InvalidParameterError):
            oracle.validate_reports(PackedBits.empty(2, K + 8))

    def test_ue_accepts_packed_reports_with_matching_k(self):
        oracle = make_protocol("OUE", k=K, epsilon=EPSILON, rng=0)
        packed = PackedBits.empty(3, K)
        assert oracle.validate_reports(packed) is packed
