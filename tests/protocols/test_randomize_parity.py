"""Statistical parity of ``randomize`` vs ``randomize_many`` (ISSUE 1, satellite 2).

The vectorized client-side hot paths must sample from the same report
distribution as the scalar reference implementations.  For each of the five
oracles (GRR, OLH, ω-SS, SUE, OUE) the two paths are run on the same fixed
inputs with fixed (different) seeds and their report distributions are
compared with chi-square tests:

* a two-sample homogeneity test on the per-value support counts, and
* where the marginal distribution is known in closed form (GRR value
  distribution, UE per-bit rates, SS/OLH true-value support rates), a
  goodness-of-fit / exact-rate check for *both* paths.

All inputs and seeds are fixed, so the tests are deterministic; the p-value
thresholds only need to clear the chosen seeds, and any future drift in
either sampling path shows up as a collapsing p-value.
"""

import numpy as np
import pytest
from scipy import stats

from repro.protocols.olh import universal_hash
from repro.protocols.registry import make_protocol

PROTOCOLS = ("GRR", "OLH", "SS", "SUE", "OUE")
K = 8
EPSILON = 1.2
N = 8000
P_MIN = 1e-3


def _fixed_values() -> np.ndarray:
    return np.random.default_rng(2023).integers(0, K, size=N)


def _paths(protocol: str, values: np.ndarray):
    """Reports of the scalar loop path and the vectorized path."""
    loop_oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=11)
    loop_reports = np.asarray([loop_oracle.randomize(int(v)) for v in values])
    vec_oracle = make_protocol(protocol, k=K, epsilon=EPSILON, rng=12)
    vec_reports = np.asarray(vec_oracle.randomize_many(values))
    return loop_oracle, loop_reports, vec_oracle, vec_reports


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_support_counts_homogeneous_across_paths(protocol):
    """Two-sample chi-square on the per-value support distributions."""
    values = _fixed_values()
    loop_oracle, loop_reports, vec_oracle, vec_reports = _paths(protocol, values)
    loop_counts = loop_oracle.support_counts(loop_reports)
    vec_counts = vec_oracle.support_counts(vec_reports)
    assert loop_counts.shape == vec_counts.shape == (K,)
    table = np.vstack([loop_counts, vec_counts])
    result = stats.chi2_contingency(table)
    assert result.pvalue > P_MIN, (
        f"{protocol}: randomize vs randomize_many support distributions drifted "
        f"(chi2={result.statistic:.2f}, p={result.pvalue:.2e})"
    )


def test_grr_report_distribution_matches_theory():
    """Both GRR paths must emit value v with prob p and others with q."""
    value = 3
    values = np.full(N, value, dtype=np.int64)
    loop_oracle, loop_reports, vec_oracle, vec_reports = _paths("GRR", values)
    expected = np.full(K, loop_oracle.q * N)
    expected[value] = loop_oracle.p * N
    for label, reports in (("randomize", loop_reports), ("randomize_many", vec_reports)):
        observed = np.bincount(reports.astype(np.int64), minlength=K)
        result = stats.chisquare(observed, f_exp=expected)
        assert result.pvalue > P_MIN, f"GRR {label} deviates from (p, q) law"


@pytest.mark.parametrize("protocol", ("SUE", "OUE"))
def test_ue_bit_rates_match_theory(protocol):
    """UE true-bit rate must be p and aggregated other-bit rate q, both paths."""
    value = 2
    values = np.full(N, value, dtype=np.int64)
    loop_oracle, loop_reports, vec_oracle, vec_reports = _paths(protocol, values)
    p, q = loop_oracle.p, loop_oracle.q
    for label, reports in (("randomize", loop_reports), ("randomize_many", vec_reports)):
        ones_true = int(reports[:, value].sum())
        result = stats.chisquare(
            [ones_true, N - ones_true], f_exp=[N * p, N * (1 - p)]
        )
        assert result.pvalue > P_MIN, f"{protocol} {label}: true-bit rate is not p"
        other = np.delete(np.arange(K), value)
        ones_other = int(reports[:, other].sum())
        trials = N * (K - 1)
        result = stats.chisquare(
            [ones_other, trials - ones_other], f_exp=[trials * q, trials * (1 - q)]
        )
        assert result.pvalue > P_MIN, f"{protocol} {label}: other-bit rate is not q"


def test_ss_true_value_inclusion_rate_matches_theory():
    """ω-SS must include the true value with probability p on both paths."""
    value = 5
    values = np.full(N, value, dtype=np.int64)
    loop_oracle, loop_reports, vec_oracle, vec_reports = _paths("SS", values)
    p = loop_oracle.true_inclusion_probability
    for label, reports in (("randomize", loop_reports), ("randomize_many", vec_reports)):
        included = int((reports == value).any(axis=1).sum())
        result = stats.chisquare([included, N - included], f_exp=[N * p, N * (1 - p)])
        assert result.pvalue > P_MIN, f"SS {label}: true-value inclusion is not p"


def test_olh_true_value_support_rate_matches_theory():
    """OLH reports must support the true value with probability p_hash."""
    value = 1
    values = np.full(N, value, dtype=np.int64)
    loop_oracle, loop_reports, vec_oracle, vec_reports = _paths("OLH", values)
    p = loop_oracle.p_hash
    for label, oracle, reports in (
        ("randomize", loop_oracle, loop_reports),
        ("randomize_many", vec_oracle, vec_reports),
    ):
        a, b, perturbed = reports[:, 0], reports[:, 1], reports[:, 2]
        supports = universal_hash(np.full(N, value), a, b, oracle.g) == perturbed
        supported = int(supports.sum())
        result = stats.chisquare([supported, N - supported], f_exp=[N * p, N * (1 - p)])
        assert result.pvalue > P_MIN, f"OLH {label}: true-value support is not p_hash"
