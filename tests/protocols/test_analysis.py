"""Tests for the analytical protocol analysis (Sec. 3.2.1, Eqs. 4-5)."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.protocols.analysis import (
    acc_grr,
    acc_olh,
    acc_oue,
    acc_ss,
    acc_sue,
    attacker_accuracy,
    oracle_variance,
    profiling_accuracy_non_uniform,
    profiling_accuracy_uniform,
)


class TestSingleReportAccuracies:
    def test_grr_formula(self):
        assert acc_grr(1.0, 10) == pytest.approx(math.e / (math.e + 9))

    def test_olh_formula(self):
        assert acc_olh(1.0, 74) == pytest.approx(1.0 / (2 * 74 / (math.e + 1)))
        # small domain: capped at 1/2
        assert acc_olh(5.0, 4) == pytest.approx(0.5)

    def test_ss_matches_paper_form_for_large_k(self):
        assert acc_ss(1.0, 64) == pytest.approx((math.e + 1) / (2 * 64), rel=0.15)

    def test_all_accuracies_are_probabilities(self):
        for func in (acc_grr, acc_olh, acc_ss, acc_sue, acc_oue):
            for eps in (0.5, 1.0, 5.0, 10.0):
                for k in (2, 7, 74):
                    value = func(eps, k)
                    assert 0.0 < value <= 1.0, (func.__name__, eps, k)

    def test_accuracy_increases_with_epsilon(self):
        for func in (acc_grr, acc_ss, acc_sue, acc_oue):
            values = [func(eps, 16) for eps in (1, 2, 4, 8)]
            assert values == sorted(values), func.__name__

    def test_grr_decreases_with_k(self):
        values = [acc_grr(2.0, k) for k in (2, 8, 32, 128)]
        assert values == sorted(values, reverse=True)

    def test_dispatch(self):
        assert attacker_accuracy("grr", 1.0, 10) == acc_grr(1.0, 10)
        with pytest.raises(InvalidParameterError):
            attacker_accuracy("bogus", 1.0, 10)

    def test_fig1_ordering_at_high_epsilon(self):
        # Fig. 1: GRR, SS and SUE have the highest attacker accuracy
        k = 16
        eps = 8.0
        high = min(acc_grr(eps, k), acc_ss(eps, k), acc_sue(eps, k))
        low = max(acc_olh(eps, k), acc_oue(eps, k))
        assert high > low


class TestProfilingAccuracies:
    SIZES = (74, 7, 16)

    def test_uniform_is_product(self):
        total = profiling_accuracy_uniform("GRR", 2.0, self.SIZES)
        expected = np.prod([acc_grr(2.0, k) for k in self.SIZES])
        assert total == pytest.approx(expected)

    def test_non_uniform_is_smaller_than_uniform(self):
        for protocol in ("GRR", "OLH", "SS", "SUE", "OUE"):
            uniform = profiling_accuracy_uniform(protocol, 4.0, self.SIZES)
            non_uniform = profiling_accuracy_non_uniform(protocol, 4.0, self.SIZES)
            assert non_uniform < uniform

    def test_non_uniform_factor_is_d_factorial_over_d_power_d(self):
        d = len(self.SIZES)
        uniform = profiling_accuracy_uniform("GRR", 3.0, self.SIZES)
        non_uniform = profiling_accuracy_non_uniform("GRR", 3.0, self.SIZES)
        assert non_uniform / uniform == pytest.approx(math.factorial(d) / d**d)

    def test_empty_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            profiling_accuracy_uniform("GRR", 1.0, [])


class TestVariance:
    def test_variance_positive_and_decreasing_in_epsilon(self):
        for protocol in ("GRR", "OLH", "SS", "SUE", "OUE"):
            values = [oracle_variance(protocol, eps, 32, 1000) for eps in (0.5, 1, 2, 4)]
            assert all(v > 0 for v in values)
            assert values == sorted(values, reverse=True), protocol

    def test_variance_decreasing_in_n(self):
        assert oracle_variance("GRR", 1.0, 10, 10_000) < oracle_variance("GRR", 1.0, 10, 100)

    def test_oue_beats_sue(self):
        assert oracle_variance("OUE", 1.0, 50, 1000) < oracle_variance("SUE", 1.0, 50, 1000)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(InvalidParameterError):
            oracle_variance("nope", 1.0, 10, 100)
