"""Tests for the post-processing (consistency) helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequencies import FrequencyEstimate
from repro.exceptions import InvalidParameterError
from repro.protocols.grr import GRR
from repro.protocols.postprocessing import (
    POSTPROCESSORS,
    clip_and_normalize,
    norm_sub,
    postprocess,
    project_onto_simplex,
)

vector_strategy = st.lists(
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=30,
)


class TestBasicBehaviour:
    @pytest.mark.parametrize("method", sorted(POSTPROCESSORS))
    def test_valid_distribution_is_unchanged(self, method):
        values = np.array([0.5, 0.3, 0.2])
        np.testing.assert_allclose(postprocess(values, method), values, atol=1e-9)

    @pytest.mark.parametrize("method", sorted(POSTPROCESSORS))
    def test_output_is_distribution(self, method):
        values = np.array([-0.1, 0.6, 0.7, -0.05])
        result = postprocess(values, method)
        assert result.sum() == pytest.approx(1.0)
        assert (result >= -1e-12).all()

    def test_accepts_frequency_estimate(self):
        estimate = FrequencyEstimate(np.array([-0.2, 0.7, 0.6]))
        result = norm_sub(estimate)
        assert result.sum() == pytest.approx(1.0)

    def test_all_negative_falls_back_to_uniform(self):
        # clip and norm-sub have no information left and return the uniform
        # distribution; the simplex projection still produces a valid (but
        # non-uniform) distribution favouring the least-negative coordinate
        values = np.array([-1.0, -0.5, -2.0])
        np.testing.assert_allclose(clip_and_normalize(values), np.full(3, 1 / 3))
        np.testing.assert_allclose(norm_sub(values), np.full(3, 1 / 3))
        projection = project_onto_simplex(values)
        assert projection.sum() == pytest.approx(1.0)
        assert projection[1] == projection.max()

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError):
            postprocess(np.array([0.5, 0.5]), "magic")

    def test_invalid_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            norm_sub(np.array([[0.5, 0.5]]))
        with pytest.raises(InvalidParameterError):
            clip_and_normalize(np.array([np.nan, 0.5]))


class TestSimplexProjection:
    def test_matches_known_projection(self):
        # projection of (1.2, 0.2) onto the simplex is (1, 0)
        np.testing.assert_allclose(
            project_onto_simplex(np.array([1.2, 0.2])), np.array([1.0, 0.0]), atol=1e-9
        )

    def test_is_idempotent(self):
        values = np.array([0.4, -0.3, 0.9, 0.1])
        once = project_onto_simplex(values)
        twice = project_onto_simplex(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_projection_is_closest_consistent_point(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=6)
        projection = project_onto_simplex(values)
        for _ in range(50):
            candidate = rng.dirichlet(np.ones(6))
            assert np.linalg.norm(values - projection) <= np.linalg.norm(
                values - candidate
            ) + 1e-9


class TestStatisticalQuality:
    def test_postprocessing_reduces_error_on_real_estimates(self):
        rng = np.random.default_rng(1)
        truth = np.array([0.55, 0.2, 0.1, 0.05, 0.05, 0.03, 0.01, 0.01])
        values = rng.choice(8, size=3000, p=truth)
        oracle = GRR(k=8, epsilon=0.5, rng=2)
        raw = oracle.aggregate(oracle.randomize_many(values)).estimates
        raw_error = float(np.sum((raw - truth) ** 2))
        for method in POSTPROCESSORS.values():
            processed_error = float(np.sum((method(raw) - truth) ** 2))
            assert processed_error <= raw_error + 1e-9


@settings(max_examples=60, deadline=None)
@given(values=vector_strategy)
def test_all_methods_return_distributions(values):
    vector = np.asarray(values, dtype=float)
    for method in POSTPROCESSORS.values():
        result = method(vector)
        assert result.shape == vector.shape
        assert result.sum() == pytest.approx(1.0, abs=1e-6)
        assert (result >= -1e-9).all()
