"""Tests for the estimation-error metrics."""

import numpy as np
import pytest

from repro.core.frequencies import FrequencyEstimate
from repro.exceptions import InvalidParameterError
from repro.metrics.errors import max_absolute_error, mse_avg, total_variation_distance
from repro.multidim.smp import SMP


class TestMseAvg:
    def test_zero_for_exact_estimates(self, small_dataset):
        estimates = [
            FrequencyEstimate(small_dataset.frequencies(j)) for j in range(small_dataset.d)
        ]
        assert mse_avg(estimates, small_dataset) == pytest.approx(0.0)

    def test_positive_for_noisy_estimates(self, small_dataset):
        solution = SMP(small_dataset.domain, epsilon=1.0, protocol="GRR", rng=0)
        _, estimates = solution.collect_and_estimate(small_dataset)
        assert mse_avg(estimates, small_dataset) > 0.0

    def test_wrong_number_of_estimates(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            mse_avg([FrequencyEstimate(np.zeros(4))], small_dataset)


class TestOtherErrorMetrics:
    def test_max_absolute_error(self):
        estimate = FrequencyEstimate(np.array([0.5, 0.5]))
        assert max_absolute_error(estimate, np.array([0.2, 0.8])) == pytest.approx(0.3)

    def test_total_variation(self):
        estimate = FrequencyEstimate(np.array([1.0, 0.0]))
        assert total_variation_distance(estimate, np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        estimate = FrequencyEstimate(np.array([1.0, 0.0]))
        with pytest.raises(InvalidParameterError):
            max_absolute_error(estimate, np.array([1.0, 0.0, 0.0]))
        with pytest.raises(InvalidParameterError):
            total_variation_distance(estimate, np.array([1.0]))
