"""Tests for the attack-accuracy metrics."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics.accuracy import (
    as_percentage,
    attack_accuracy,
    attribute_inference_accuracy,
    reidentification_accuracy,
)


class TestAttackAccuracy:
    def test_values(self):
        assert attack_accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)
        assert attribute_inference_accuracy([0, 1], [0, 1]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            attack_accuracy([1, 2], [1])

    def test_empty(self):
        with pytest.raises(InvalidParameterError):
            attack_accuracy([], [])


class TestReidentificationAccuracy:
    def test_candidate_sets(self):
        true_ids = np.array([0, 1, 2])
        candidates = np.array([[0, 5], [4, 5], [2, 9]])
        assert reidentification_accuracy(true_ids, candidates) == pytest.approx(2 / 3)

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            reidentification_accuracy(np.array([0, 1]), np.array([0, 1]))


class TestPercentage:
    def test_scaling(self):
        assert as_percentage(0.153) == pytest.approx(15.3)
