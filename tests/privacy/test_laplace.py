"""Tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.privacy.laplace import (
    laplace_mechanism,
    laplace_noise_scale,
    laplace_perturbed_histogram,
)


class TestScale:
    def test_scale_formula(self):
        assert laplace_noise_scale(0.5, sensitivity=1.0) == pytest.approx(2.0)
        assert laplace_noise_scale(2.0, sensitivity=3.0) == pytest.approx(1.5)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            laplace_noise_scale(0.0)
        with pytest.raises(InvalidParameterError):
            laplace_noise_scale(1.0, sensitivity=0.0)


class TestMechanism:
    def test_noise_is_zero_mean(self):
        values = np.zeros(200_000)
        noisy = laplace_mechanism(values, epsilon=1.0, rng=0)
        assert abs(noisy.mean()) < 0.02

    def test_noise_scale_matches_epsilon(self):
        values = np.zeros(200_000)
        noisy = laplace_mechanism(values, epsilon=0.5, rng=0)
        # Laplace(b) has std = sqrt(2) * b; here b = 2
        assert noisy.std() == pytest.approx(np.sqrt(2) * 2.0, rel=0.05)

    def test_shape_preserved(self):
        noisy = laplace_mechanism(np.ones((3, 4)), epsilon=1.0, rng=0)
        assert noisy.shape == (3, 4)


class TestPerturbedHistogram:
    def test_output_is_distribution(self):
        freqs = np.array([0.7, 0.2, 0.1])
        result = laplace_perturbed_histogram(freqs, epsilon=1.0, n=1000, rng=0)
        assert result.sum() == pytest.approx(1.0)
        assert (result >= 0).all()

    def test_high_budget_preserves_histogram(self):
        freqs = np.array([0.6, 0.3, 0.1])
        result = laplace_perturbed_histogram(freqs, epsilon=100.0, n=10_000, rng=0)
        np.testing.assert_allclose(result, freqs, atol=0.01)

    def test_low_budget_heavily_distorts(self):
        freqs = np.array([0.6, 0.3, 0.1])
        distortions = []
        for seed in range(20):
            result = laplace_perturbed_histogram(freqs, epsilon=0.001, n=100, rng=seed)
            distortions.append(np.abs(result - freqs).sum())
        assert np.mean(distortions) > 0.1

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            laplace_perturbed_histogram(np.array([0.5, 0.5]), 1.0, n=0)
