"""Tests for the LDP verification helpers."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.privacy.ldp import (
    empirical_probability_ratio,
    grr_style_ratio,
    ldp_bound,
    satisfies_ldp,
    ue_style_ratio,
)
from repro.protocols.grr import GRR


class TestRatios:
    def test_ldp_bound(self):
        assert ldp_bound(1.0) == pytest.approx(math.e)

    def test_grr_style_ratio(self):
        assert grr_style_ratio(0.6, 0.2) == pytest.approx(3.0)
        with pytest.raises(InvalidParameterError):
            grr_style_ratio(0.2, 0.6)

    def test_ue_style_ratio(self):
        assert ue_style_ratio(0.75, 0.25) == pytest.approx(9.0)
        with pytest.raises(InvalidParameterError):
            ue_style_ratio(1.0, 0.25)

    def test_satisfies_ldp(self):
        assert satisfies_ldp(math.e, 1.0)
        assert not satisfies_ldp(math.e * 1.1, 1.0)


class TestEmpiricalRatio:
    def test_grr_empirical_ratio_respects_budget(self):
        epsilon, k = 1.0, 5
        oracle = GRR(k=k, epsilon=epsilon, rng=0)
        outputs_a = oracle.randomize_many(np.zeros(200_000, dtype=np.int64))
        outputs_b = oracle.randomize_many(np.full(200_000, 3, dtype=np.int64))
        ratio = empirical_probability_ratio(outputs_a, outputs_b, k)
        assert ratio <= math.exp(epsilon) * 1.1  # sampling-noise slack

    def test_disjoint_supports_give_infinity(self):
        ratio = empirical_probability_ratio(np.zeros(10, dtype=int), np.ones(10, dtype=int), 2)
        assert ratio == math.inf

    def test_invalid_num_outputs(self):
        with pytest.raises(InvalidParameterError):
            empirical_probability_ratio(np.zeros(5, dtype=int), np.zeros(5, dtype=int), 1)
