"""Tests for the PIE privacy model (Appendix C)."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.privacy.pie import (
    alpha_for_bayes_error,
    alpha_from_epsilon,
    bayes_error_lower_bound,
    epsilon_for_alpha,
    pie_budget_for_attribute,
)


class TestProposition1:
    def test_alpha_formula_small_epsilon(self):
        # for eps < 1, the eps^2 term binds
        alpha = alpha_from_epsilon(0.5, n=10_000, k=100)
        assert alpha == pytest.approx(0.25 * math.log2(math.e))

    def test_alpha_formula_large_epsilon(self):
        # for large eps, the log2(k) or log2(n) cap binds
        alpha = alpha_from_epsilon(50.0, n=1024, k=8)
        assert alpha == pytest.approx(3.0)  # log2(8)

    def test_alpha_monotone_in_epsilon(self):
        values = [alpha_from_epsilon(e, 10_000, 64) for e in (0.1, 0.5, 1, 2, 4)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            alpha_from_epsilon(1.0, n=1, k=5)
        with pytest.raises(InvalidParameterError):
            alpha_from_epsilon(1.0, n=100, k=1)


class TestCorollary1:
    def test_bound_decreases_with_alpha(self):
        values = [bayes_error_lower_bound(a, 10_000) for a in (0.0, 1.0, 3.0, 8.0)]
        assert values == sorted(values, reverse=True)

    def test_bound_clipped_to_unit_interval(self):
        assert bayes_error_lower_bound(1000.0, 100) == 0.0
        assert 0.0 <= bayes_error_lower_bound(0.0, 100) <= 1.0

    def test_inversion_roundtrip(self):
        n = 45_222
        for beta in (0.9, 0.8, 0.6, 0.5):
            alpha = alpha_for_bayes_error(beta, n)
            assert bayes_error_lower_bound(alpha, n) == pytest.approx(beta, abs=1e-9)

    def test_inversion_clamps_for_unachievable_beta(self):
        # beta above 1 - 1/log2(n) cannot be reached even with alpha = 0
        n = 45_222
        alpha = alpha_for_bayes_error(0.99, n)
        assert alpha == 0.0
        assert bayes_error_lower_bound(alpha, n) < 0.99

    def test_alpha_for_bayes_error_validation(self):
        with pytest.raises(InvalidParameterError):
            alpha_for_bayes_error(1.5, 100)


class TestEpsilonForAlpha:
    def test_small_alpha_uses_sqrt(self):
        alpha = 0.5
        eps = epsilon_for_alpha(alpha)
        assert eps == pytest.approx(math.sqrt(alpha / math.log2(math.e)))

    def test_large_alpha_is_linear(self):
        alpha = 5.0
        assert epsilon_for_alpha(alpha) == pytest.approx(alpha / math.log2(math.e))

    def test_zero_alpha(self):
        assert epsilon_for_alpha(0.0) == 0.0

    def test_monotone(self):
        values = [epsilon_for_alpha(a) for a in (0.1, 0.5, 1, 2, 5, 10)]
        assert values == sorted(values)


class TestBudgetForAttribute:
    def test_small_domain_reports_in_clear(self):
        # Adult has several binary attributes: log2(2) = 1 <= alpha for lax beta
        budget = pie_budget_for_attribute(beta=0.5, n=45_222, k=2)
        assert budget.report_in_clear
        assert budget.epsilon == 0.0

    def test_large_domain_needs_randomizer(self):
        budget = pie_budget_for_attribute(beta=0.8, n=45_222, k=74)
        assert not budget.report_in_clear
        assert budget.epsilon > 0.0

    def test_lower_beta_gives_larger_epsilon(self):
        strict = pie_budget_for_attribute(beta=0.9, n=45_222, k=74)
        lax = pie_budget_for_attribute(beta=0.7, n=45_222, k=74)
        assert lax.alpha > strict.alpha
        assert lax.epsilon >= strict.epsilon

    def test_very_lax_beta_reports_large_domain_in_clear(self):
        # with beta = 0.5 the PIE bound exceeds log2(74), so even a k = 74
        # attribute is reported without a randomizer ([35, Prop. 9])
        budget = pie_budget_for_attribute(beta=0.5, n=45_222, k=74)
        assert budget.report_in_clear
