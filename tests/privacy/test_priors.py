"""Tests for the prior generators used by RS+RFD."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.privacy.priors import (
    correct_priors,
    dirichlet_priors,
    exponential_priors,
    make_priors,
    uniform_priors,
    zipf_priors,
)


class TestIncorrectPriors:
    SIZES = (5, 12, 3)

    @pytest.mark.parametrize(
        "factory", [dirichlet_priors, zipf_priors, exponential_priors]
    )
    def test_valid_distributions(self, factory):
        priors = factory(self.SIZES, rng=0)
        assert len(priors) == len(self.SIZES)
        for prior, k in zip(priors, self.SIZES):
            assert prior.shape == (k,)
            assert prior.sum() == pytest.approx(1.0)
            assert (prior >= 0).all()

    def test_uniform_priors(self):
        priors = uniform_priors(self.SIZES)
        for prior, k in zip(priors, self.SIZES):
            np.testing.assert_allclose(prior, np.full(k, 1.0 / k))

    def test_zipf_priors_are_skewed(self):
        prior = zipf_priors([20], rng=0)[0]
        assert prior.max() > 3 * prior.min()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            dirichlet_priors([])
        with pytest.raises(InvalidParameterError):
            dirichlet_priors([1, 5])

    def test_invalid_zipf_exponent(self):
        with pytest.raises(InvalidParameterError):
            zipf_priors([5], s=1.0)

    def test_invalid_exponential_rate(self):
        with pytest.raises(InvalidParameterError):
            exponential_priors([5], rate=0.0)


class TestCorrectPriors:
    def test_correct_priors_are_close_to_truth(self, small_dataset):
        # generous budget -> priors nearly equal to the true frequencies
        priors = correct_priors(small_dataset, total_epsilon=50.0, rng=0)
        for j, prior in enumerate(priors):
            np.testing.assert_allclose(prior, small_dataset.frequencies(j), atol=0.05)

    def test_correct_priors_are_distributions(self, small_dataset):
        priors = correct_priors(small_dataset, total_epsilon=0.1, rng=0)
        for prior in priors:
            assert prior.sum() == pytest.approx(1.0)
            assert (prior >= 0).all()


class TestMakePriors:
    @pytest.mark.parametrize("kind", ["exact", "correct", "uniform", "dir", "zipf", "exp"])
    def test_all_kinds(self, small_dataset, kind):
        priors = make_priors(kind, small_dataset, rng=0)
        assert len(priors) == small_dataset.d
        for prior, k in zip(priors, small_dataset.sizes):
            assert prior.shape == (k,)
            assert prior.sum() == pytest.approx(1.0)

    def test_exact_priors_are_true_frequencies(self, small_dataset):
        priors = make_priors("exact", small_dataset)
        for j, prior in enumerate(priors):
            np.testing.assert_allclose(prior, small_dataset.frequencies(j))

    def test_correct_priors_respect_total_epsilon(self, small_dataset):
        # a huge budget reproduces the truth, a tiny one does not
        tight = make_priors("correct", small_dataset, rng=0, total_epsilon=1e-4)
        loose = make_priors("correct", small_dataset, rng=0, total_epsilon=1e4)
        truth = small_dataset.all_frequencies()
        loose_error = sum(np.abs(p - t).sum() for p, t in zip(loose, truth))
        tight_error = sum(np.abs(p - t).sum() for p, t in zip(tight, truth))
        assert loose_error < tight_error

    def test_unknown_kind_rejected(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            make_priors("bogus", small_dataset)
