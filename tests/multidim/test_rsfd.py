"""Tests for the RS+FD solution and its estimators."""

import numpy as np
import pytest

from repro.core.composition import amplified_epsilon
from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError
from repro.multidim.rsfd import RSFD


@pytest.fixture
def skewed_dataset():
    rng = np.random.default_rng(0)
    domain = Domain.from_sizes([6, 4, 8])
    n = 40000
    columns = []
    for attr in domain:
        weights = np.arange(attr.size, 0, -1, dtype=float) ** 2
        weights /= weights.sum()
        columns.append(rng.choice(attr.size, size=n, p=weights))
    return TabularDataset.from_columns(columns, domain)


class TestConfiguration:
    def test_labels(self):
        domain = Domain.from_sizes([3, 3])
        assert RSFD(domain, 1.0, variant="grr").label == "RS+FD[GRR]"
        assert RSFD(domain, 1.0, variant="ue-z", ue_kind="SUE").label == "RS+FD[SUE-z]"
        assert RSFD(domain, 1.0, variant="ue-r", ue_kind="OUE").label == "RS+FD[OUE-r]"

    def test_invalid_variant_rejected(self):
        with pytest.raises(InvalidParameterError):
            RSFD(Domain.from_sizes([3, 3]), 1.0, variant="bogus")

    def test_amplified_epsilon(self):
        domain = Domain.from_sizes([3, 3, 3])
        solution = RSFD(domain, 1.0, variant="grr")
        assert solution.amplified_epsilon == pytest.approx(amplified_epsilon(1.0, 3))
        assert solution.amplified_epsilon > 1.0


class TestCollection:
    def test_grr_reports_shape_and_domain(self, tiny_dataset):
        solution = RSFD(tiny_dataset.domain, 1.0, variant="grr", rng=0)
        reports = solution.collect(tiny_dataset)
        assert reports.sampled.shape == (tiny_dataset.n,)
        for j, column in enumerate(reports.per_attribute):
            assert column.shape == (tiny_dataset.n,)
            assert column.min() >= 0 and column.max() < tiny_dataset.sizes[j]

    @pytest.mark.parametrize("variant", ["ue-z", "ue-r"])
    def test_ue_reports_are_bit_matrices(self, tiny_dataset, variant):
        solution = RSFD(tiny_dataset.domain, 1.0, variant=variant, ue_kind="OUE", rng=0)
        reports = solution.collect(tiny_dataset)
        for j, column in enumerate(reports.per_attribute):
            assert column.shape == (tiny_dataset.n, tiny_dataset.sizes[j])
            assert set(np.unique(column)) <= {0, 1}

    def test_sampled_attribute_hidden_from_tuple_structure(self, tiny_dataset):
        # every user contributes a value for every attribute (unlike SMP)
        solution = RSFD(tiny_dataset.domain, 1.0, variant="grr", rng=0)
        reports = solution.collect(tiny_dataset)
        assert reports.user_indices is None
        assert len(reports.per_attribute) == tiny_dataset.d

    def test_fixed_sampling_respected(self, tiny_dataset):
        sampled = np.zeros(tiny_dataset.n, dtype=np.int64)
        solution = RSFD(tiny_dataset.domain, 1.0, variant="grr", rng=0)
        reports = solution.collect(tiny_dataset, sampled=sampled)
        np.testing.assert_array_equal(reports.sampled, sampled)

    def test_ue_z_fake_data_has_fewer_bits_than_true_reports(self, tiny_dataset):
        # the statistical signature exploited by the attribute-inference attack
        solution = RSFD(tiny_dataset.domain, 5.0, variant="ue-z", ue_kind="SUE", rng=0)
        sampled = np.zeros(tiny_dataset.n, dtype=np.int64)
        reports = solution.collect(tiny_dataset, sampled=sampled)
        true_bits = reports.per_attribute[0].sum(axis=1).mean()
        fake_bits = reports.per_attribute[1].sum(axis=1).mean()
        assert true_bits > fake_bits


class TestEstimators:
    @pytest.mark.parametrize(
        "variant, ue_kind",
        [("grr", "OUE"), ("ue-z", "SUE"), ("ue-z", "OUE"), ("ue-r", "SUE"), ("ue-r", "OUE")],
    )
    def test_estimators_are_unbiased(self, skewed_dataset, variant, ue_kind):
        solution = RSFD(skewed_dataset.domain, np.log(5), variant=variant, ue_kind=ue_kind, rng=1)
        _, estimates = solution.collect_and_estimate(skewed_dataset)
        for j, estimate in enumerate(estimates):
            np.testing.assert_allclose(
                estimate.estimates, skewed_dataset.frequencies(j), atol=0.05
            )

    def test_estimates_metadata(self, tiny_dataset):
        solution = RSFD(tiny_dataset.domain, 1.0, variant="grr", rng=0)
        _, estimates = solution.collect_and_estimate(tiny_dataset)
        assert estimates[0].metadata["protocol"] == "RS+FD[GRR]"
        assert estimates[0].metadata["amplified_epsilon"] > 1.0
