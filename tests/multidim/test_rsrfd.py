"""Tests for the RS+RFD countermeasure (Sec. 5)."""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError
from repro.metrics.errors import mse_avg
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD


@pytest.fixture
def skewed_dataset():
    rng = np.random.default_rng(3)
    domain = Domain.from_sizes([8, 5, 6])
    n = 30000
    columns = []
    for attr in domain:
        weights = np.arange(attr.size, 0, -1, dtype=float) ** 2
        weights /= weights.sum()
        columns.append(rng.choice(attr.size, size=n, p=weights))
    return TabularDataset.from_columns(columns, domain)


def uniform_priors(domain):
    return [np.full(k, 1.0 / k) for k in domain.sizes]


class TestConfiguration:
    def test_labels(self):
        domain = Domain.from_sizes([3, 4])
        priors = uniform_priors(domain)
        assert RSRFD(domain, 1.0, priors, variant="grr").label == "RS+RFD[GRR]"
        assert RSRFD(domain, 1.0, priors, variant="ue-r", ue_kind="SUE").label == "RS+RFD[SUE-r]"

    def test_priors_are_normalized(self):
        domain = Domain.from_sizes([3, 4])
        priors = [np.array([2.0, 1.0, 1.0]), np.ones(4)]
        solution = RSRFD(domain, 1.0, priors, variant="grr")
        assert solution.priors[0].sum() == pytest.approx(1.0)
        assert solution.priors[0][0] == pytest.approx(0.5)

    def test_invalid_priors_rejected(self):
        domain = Domain.from_sizes([3, 4])
        with pytest.raises(InvalidParameterError):
            RSRFD(domain, 1.0, [np.ones(3)], variant="grr")  # wrong count
        with pytest.raises(InvalidParameterError):
            RSRFD(domain, 1.0, [np.ones(2), np.ones(4)], variant="grr")  # wrong length
        with pytest.raises(InvalidParameterError):
            RSRFD(domain, 1.0, [np.array([1.0, -1.0, 1.0]), np.ones(4)], variant="grr")
        with pytest.raises(InvalidParameterError):
            RSRFD(domain, 1.0, [np.zeros(3), np.ones(4)], variant="grr")

    def test_invalid_variant_rejected(self):
        domain = Domain.from_sizes([3, 4])
        with pytest.raises(InvalidParameterError):
            RSRFD(domain, 1.0, uniform_priors(domain), variant="ue-z")


class TestCollection:
    def test_fake_data_follows_prior_grr(self):
        domain = Domain.from_sizes([4, 4])
        priors = [np.array([0.85, 0.05, 0.05, 0.05]), np.full(4, 0.25)]
        rng = np.random.default_rng(0)
        dataset = TabularDataset.from_columns(
            [rng.integers(0, 4, size=8000), rng.integers(0, 4, size=8000)], domain
        )
        solution = RSRFD(domain, 1.0, priors, variant="grr", rng=1)
        # force everyone to sample attribute 1, so attribute 0 is pure fake data
        reports = solution.collect(dataset, sampled=np.ones(dataset.n, dtype=np.int64))
        fake_share = np.mean(np.asarray(reports.per_attribute[0]) == 0)
        assert fake_share == pytest.approx(0.85, abs=0.02)

    def test_ue_r_fake_data_biased_towards_prior_mode(self):
        domain = Domain.from_sizes([4, 4])
        priors = [np.array([0.85, 0.05, 0.05, 0.05]), np.full(4, 0.25)]
        rng = np.random.default_rng(0)
        dataset = TabularDataset.from_columns(
            [rng.integers(0, 4, size=8000), rng.integers(0, 4, size=8000)], domain
        )
        solution = RSRFD(domain, 3.0, priors, variant="ue-r", ue_kind="OUE", rng=1)
        reports = solution.collect(dataset, sampled=np.ones(dataset.n, dtype=np.int64))
        bits = np.asarray(reports.per_attribute[0])
        assert bits[:, 0].mean() > bits[:, 2].mean()


class TestEstimators:
    @pytest.mark.parametrize(
        "variant, ue_kind", [("grr", "OUE"), ("ue-r", "SUE"), ("ue-r", "OUE")]
    )
    def test_estimators_are_unbiased_with_exact_priors(self, skewed_dataset, variant, ue_kind):
        priors = skewed_dataset.all_frequencies()
        solution = RSRFD(
            skewed_dataset.domain, np.log(5), priors, variant=variant, ue_kind=ue_kind, rng=1
        )
        _, estimates = solution.collect_and_estimate(skewed_dataset)
        for j, estimate in enumerate(estimates):
            np.testing.assert_allclose(
                estimate.estimates, skewed_dataset.frequencies(j), atol=0.05
            )

    @pytest.mark.parametrize("variant, ue_kind", [("grr", "OUE"), ("ue-r", "OUE")])
    def test_estimators_are_unbiased_even_with_wrong_priors(self, skewed_dataset, variant, ue_kind):
        # the estimator removes exactly the bias injected by the fake data, so
        # it stays unbiased even when the priors are badly mis-specified
        rng = np.random.default_rng(7)
        priors = [rng.dirichlet(np.ones(k)) for k in skewed_dataset.sizes]
        solution = RSRFD(
            skewed_dataset.domain, np.log(5), priors, variant=variant, ue_kind=ue_kind, rng=1
        )
        _, estimates = solution.collect_and_estimate(skewed_dataset)
        for j, estimate in enumerate(estimates):
            np.testing.assert_allclose(
                estimate.estimates, skewed_dataset.frequencies(j), atol=0.05
            )

    def test_rsrfd_ue_r_improves_on_rsfd_ue_r_with_good_priors(self, skewed_dataset):
        # the headline utility claim of Sec. 5.2.2 for the UE-r family
        epsilon = np.log(3)
        errors_fd, errors_rfd = [], []
        priors = skewed_dataset.all_frequencies()
        for repeat in range(3):
            rsfd = RSFD(skewed_dataset.domain, epsilon, variant="ue-r", ue_kind="OUE", rng=10 + repeat)
            rsrfd = RSRFD(
                skewed_dataset.domain, epsilon, priors, variant="ue-r", ue_kind="OUE", rng=20 + repeat
            )
            _, est_fd = rsfd.collect_and_estimate(skewed_dataset)
            _, est_rfd = rsrfd.collect_and_estimate(skewed_dataset)
            errors_fd.append(mse_avg(est_fd, skewed_dataset))
            errors_rfd.append(mse_avg(est_rfd, skewed_dataset))
        assert np.mean(errors_rfd) < np.mean(errors_fd)
