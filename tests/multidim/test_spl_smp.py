"""Tests for the SPL and SMP multidimensional solutions."""

import numpy as np
import pytest

from repro.core.composition import split_budget
from repro.core.domain import Domain
from repro.exceptions import DomainMismatchError, EstimationError, InvalidParameterError
from repro.metrics.errors import mse_avg
from repro.multidim.smp import SMP
from repro.multidim.spl import SPL


class TestSPL:
    def test_collect_shapes(self, small_dataset):
        solution = SPL(small_dataset.domain, epsilon=2.0, protocol="GRR", rng=0)
        reports = solution.collect(small_dataset)
        assert reports.solution == "SPL"
        assert reports.n == small_dataset.n
        assert len(reports.per_attribute) == small_dataset.d
        assert reports.sampled is None
        assert reports.extra["per_attribute_epsilon"] == pytest.approx(
            split_budget(2.0, small_dataset.d)
        )

    def test_estimates_cover_every_attribute(self, small_dataset):
        solution = SPL(small_dataset.domain, epsilon=3.0, protocol="GRR", rng=0)
        _, estimates = solution.collect_and_estimate(small_dataset)
        assert len(estimates) == small_dataset.d
        for estimate, k in zip(estimates, small_dataset.sizes):
            assert estimate.k == k

    def test_rejects_mismatched_dataset(self, small_dataset):
        other_domain = Domain.from_sizes([2, 2])
        with pytest.raises(InvalidParameterError):
            SPL(Domain.from_sizes([5]), epsilon=1.0)
        solution = SPL(other_domain, epsilon=1.0)
        with pytest.raises(DomainMismatchError):
            solution.collect(small_dataset)


class TestSMP:
    def test_collect_partitions_users(self, small_dataset):
        solution = SMP(small_dataset.domain, epsilon=2.0, protocol="GRR", rng=0)
        reports = solution.collect(small_dataset)
        total = sum(len(rows) for rows in reports.user_indices)
        assert total == small_dataset.n
        # sampled attribute is disclosed
        assert reports.sampled.shape == (small_dataset.n,)
        assert set(np.unique(reports.sampled)) <= set(range(small_dataset.d))

    def test_collect_with_fixed_sampling(self, small_dataset):
        sampled = np.zeros(small_dataset.n, dtype=np.int64)
        sampled[: small_dataset.n // 2] = 1
        solution = SMP(small_dataset.domain, epsilon=2.0, protocol="GRR", rng=0)
        reports = solution.collect(small_dataset, sampled=sampled)
        np.testing.assert_array_equal(reports.sampled, sampled)
        assert len(reports.user_indices[2]) == 0

    def test_estimation_roughly_unbiased(self, small_domain):
        rng = np.random.default_rng(0)
        n = 30000
        columns = []
        for attr in small_domain:
            weights = np.arange(attr.size, 0, -1, dtype=float)
            weights /= weights.sum()
            columns.append(rng.choice(attr.size, size=n, p=weights))
        from repro.core.dataset import TabularDataset

        dataset = TabularDataset.from_columns(columns, small_domain)
        solution = SMP(small_domain, epsilon=2.0, protocol="GRR", rng=1)
        _, estimates = solution.collect_and_estimate(dataset)
        for j, estimate in enumerate(estimates):
            np.testing.assert_allclose(
                estimate.estimates, dataset.frequencies(j), atol=0.05
            )

    def test_smp_beats_spl_utility(self, small_dataset):
        smp = SMP(small_dataset.domain, epsilon=1.0, protocol="GRR", rng=0)
        spl = SPL(small_dataset.domain, epsilon=1.0, protocol="GRR", rng=0)
        _, smp_estimates = smp.collect_and_estimate(small_dataset)
        _, spl_estimates = spl.collect_and_estimate(small_dataset)
        assert mse_avg(smp_estimates, small_dataset) < mse_avg(spl_estimates, small_dataset)

    def test_estimate_fails_when_attribute_unsampled(self, small_dataset):
        solution = SMP(small_dataset.domain, epsilon=1.0, protocol="GRR", rng=0)
        sampled = np.zeros(small_dataset.n, dtype=np.int64)  # nobody samples attr 1, 2
        reports = solution.collect(small_dataset, sampled=sampled)
        with pytest.raises(EstimationError):
            solution.estimate(reports)

    def test_wrong_sampled_shape_rejected(self, small_dataset):
        solution = SMP(small_dataset.domain, epsilon=1.0, protocol="GRR", rng=0)
        with pytest.raises(EstimationError):
            solution.collect(small_dataset, sampled=np.zeros(3, dtype=np.int64))

    def test_attack_reports_accuracy_beats_random(self, small_dataset):
        solution = SMP(small_dataset.domain, epsilon=5.0, protocol="GRR", rng=0)
        reports = solution.collect(small_dataset)
        guesses = solution.attack_reports(reports)
        true_values = small_dataset.data[np.arange(small_dataset.n), reports.sampled]
        accuracy = np.mean(guesses == true_values)
        assert accuracy > 0.5  # epsilon=5 on small domains: near-certain disclosure

    @pytest.mark.parametrize("protocol", ["GRR", "OLH", "SS", "SUE", "OUE"])
    def test_all_protocols_supported(self, tiny_dataset, protocol):
        solution = SMP(tiny_dataset.domain, epsilon=2.0, protocol=protocol, rng=0)
        reports, estimates = solution.collect_and_estimate(tiny_dataset)
        assert len(estimates) == tiny_dataset.d
        guesses = solution.attack_reports(reports)
        assert guesses.shape == (tiny_dataset.n,)
        assert (guesses >= 0).all()
