"""Streaming / chunked estimation through the multidimensional layer.

The ``estimate`` paths of all four solutions must accept chunked report
iterables (byte-identical to dense arrays), the UE solutions must accept
bit-packed columns, and ``stream_collect_and_estimate`` must produce sound
estimates while never retaining the reports.
"""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD
from repro.multidim.smp import SMP
from repro.multidim.spl import SPL
from repro.protocols.streaming import PackedBits

SIZES = (6, 4, 9)
N = 900


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    domain = Domain.from_sizes(SIZES)
    data = np.column_stack([rng.integers(0, k, size=N) for k in SIZES])
    return TabularDataset(domain=domain, data=data, name="toy")


def _chunked(column, chunk_size=128):
    """Split a per-attribute report array into a list of chunk arrays."""
    if isinstance(column, PackedBits):
        return [column[np.arange(s, min(s + chunk_size, len(column)))] for s in range(0, len(column), chunk_size)]
    return [column[s : s + chunk_size] for s in range(0, len(column), chunk_size)]


def _estimates_bytes(estimates):
    return [e.estimates.tobytes() for e in estimates]


class TestChunkedEstimatePaths:
    def test_spl_chunked_estimate_identical(self, dataset):
        solution = SPL(dataset.domain, epsilon=2.0, protocol="GRR", rng=1)
        reports = solution.collect(dataset)
        dense = solution.estimate(reports)
        reports.per_attribute = [_chunked(c) for c in reports.per_attribute]
        chunked = solution.estimate(reports)
        assert _estimates_bytes(chunked) == _estimates_bytes(dense)

    def test_smp_chunked_estimate_identical(self, dataset):
        solution = SMP(dataset.domain, epsilon=2.0, protocol="OUE", rng=1)
        reports = solution.collect(dataset)
        dense = solution.estimate(reports)
        reports.per_attribute = [_chunked(c) for c in reports.per_attribute]
        chunked = solution.estimate(reports)
        assert _estimates_bytes(chunked) == _estimates_bytes(dense)

    @pytest.mark.parametrize("variant", ("grr", "ue-z", "ue-r"))
    def test_rsfd_chunked_estimate_identical(self, dataset, variant):
        solution = RSFD(dataset.domain, epsilon=2.0, variant=variant, rng=1)
        reports = solution.collect(dataset)
        dense = solution.estimate(reports)
        reports.per_attribute = [_chunked(c) for c in reports.per_attribute]
        chunked = solution.estimate(reports)
        assert _estimates_bytes(chunked) == _estimates_bytes(dense)

    @pytest.mark.parametrize("variant", ("grr", "ue-r"))
    def test_rsrfd_chunked_estimate_identical(self, dataset, variant):
        priors = dataset.all_frequencies()
        solution = RSRFD(dataset.domain, epsilon=2.0, priors=priors, variant=variant, rng=1)
        reports = solution.collect(dataset)
        dense = solution.estimate(reports)
        reports.per_attribute = [_chunked(c) for c in reports.per_attribute]
        chunked = solution.estimate(reports)
        assert _estimates_bytes(chunked) == _estimates_bytes(dense)


class TestPackedColumns:
    @pytest.mark.parametrize("variant", ("ue-z", "ue-r"))
    def test_rsfd_packed_collection_estimates_match_unpacked_columns(self, dataset, variant):
        solution = RSFD(dataset.domain, epsilon=2.0, variant=variant, rng=1, packed=True)
        reports = solution.collect(dataset)
        for column in reports.per_attribute:
            assert isinstance(column, PackedBits)
        packed_estimates = solution.estimate(reports)
        # unpacking the same collected bits must not change the estimates
        reports.per_attribute = [c.unpack() for c in reports.per_attribute]
        unpacked_estimates = solution.estimate(reports)
        assert _estimates_bytes(packed_estimates) == _estimates_bytes(unpacked_estimates)

    def test_rsrfd_packed_collection_estimates_match_unpacked_columns(self, dataset):
        priors = dataset.all_frequencies()
        solution = RSRFD(
            dataset.domain, epsilon=2.0, priors=priors, variant="ue-r", rng=1, packed=True
        )
        reports = solution.collect(dataset)
        for column in reports.per_attribute:
            assert isinstance(column, PackedBits)
        packed_estimates = solution.estimate(reports)
        reports.per_attribute = [c.unpack() for c in reports.per_attribute]
        unpacked_estimates = solution.estimate(reports)
        assert _estimates_bytes(packed_estimates) == _estimates_bytes(unpacked_estimates)

    def test_packed_column_is_eight_times_smaller(self, dataset):
        dense = RSFD(dataset.domain, epsilon=2.0, variant="ue-z", rng=1)
        packed = RSFD(dataset.domain, epsilon=2.0, variant="ue-z", rng=1, packed=True)
        dense_col = dense.collect(dataset).per_attribute[2]
        packed_col = packed.collect(dataset).per_attribute[2]
        assert packed_col.nbytes * 4 <= dense_col.nbytes


class TestStreamCollectAndEstimate:
    @pytest.mark.parametrize(
        "make",
        (
            lambda domain, priors: SPL(domain, epsilon=4.0, protocol="GRR", rng=2),
            lambda domain, priors: SMP(domain, epsilon=4.0, protocol="GRR", rng=2),
            lambda domain, priors: RSFD(domain, epsilon=4.0, variant="ue-z", rng=2),
            lambda domain, priors: RSRFD(domain, epsilon=4.0, priors=priors, variant="grr", rng=2),
        ),
        ids=("SPL", "SMP", "RSFD", "RSRFD"),
    )
    def test_streamed_estimates_are_sound(self, dataset, make):
        solution = make(dataset.domain, dataset.all_frequencies())
        estimates = solution.stream_collect_and_estimate(dataset, chunk_size=128)
        assert len(estimates) == dataset.d
        for j, estimate in enumerate(estimates):
            assert estimate.k == SIZES[j]
            # unbiased estimators over a modest n: loosely close to the truth
            np.testing.assert_allclose(
                estimate.estimates, dataset.frequencies(j), atol=0.35
            )
        # SPL / RS+FD / RS+RFD count every user; SMP splits them across attrs
        total_n = sum(e.n for e in estimates)
        assert total_n == dataset.n * dataset.d or total_n == dataset.n

    def test_chunk_boundary_cases(self, dataset):
        solution = SPL(dataset.domain, epsilon=4.0, protocol="GRR", rng=2)
        # chunk_size == n, > n, and a final partial chunk must all work
        for chunk_size in (dataset.n, 2 * dataset.n, dataset.n - 1):
            estimates = solution.stream_collect_and_estimate(dataset, chunk_size)
            assert all(e.n == dataset.n for e in estimates)

    def test_invalid_chunk_size_rejected(self, dataset):
        solution = SPL(dataset.domain, epsilon=4.0, protocol="GRR", rng=2)
        with pytest.raises(InvalidParameterError):
            solution.stream_collect_and_estimate(dataset, chunk_size=0)
