"""Tests for the analytical RS+FD / RS+RFD variances (Theorems 2 and 4)."""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD
from repro.multidim.variance import (
    averaged_analytical_variance,
    rsfd_variance,
    rsrfd_variance,
)


class TestFormulas:
    def test_variance_positive_and_decreasing_in_epsilon(self):
        for protocol in ("grr", "ue-z", "ue-r"):
            values = [rsfd_variance(protocol, eps, 10, 5, 1000) for eps in (0.5, 1, 2, 4)]
            assert all(v > 0 for v in values)
            assert values == sorted(values, reverse=True), protocol

    def test_variance_decreasing_in_n(self):
        assert rsfd_variance("grr", 1.0, 10, 5, 10_000) < rsfd_variance("grr", 1.0, 10, 5, 100)

    def test_rsrfd_matches_rsfd_under_uniform_prior_grr(self):
        # with a uniform prior f~ = 1/k, Eq. (8) reduces to the RS+FD[GRR] gamma
        k = 12
        assert rsrfd_variance("grr", 1.0, k, 4, 1000, prior_value=1.0 / k) == pytest.approx(
            rsfd_variance("grr", 1.0, k, 4, 1000)
        )

    def test_rsrfd_matches_rsfd_under_uniform_prior_ue_r(self):
        k = 12
        assert rsrfd_variance(
            "ue-r", 1.0, k, 4, 1000, prior_value=1.0 / k, ue_kind="OUE"
        ) == pytest.approx(rsfd_variance("ue-r", 1.0, k, 4, 1000, ue_kind="OUE"))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            rsfd_variance("bogus", 1.0, 10, 5, 100)
        with pytest.raises(InvalidParameterError):
            rsrfd_variance("ue-z", 1.0, 10, 5, 100, prior_value=0.1)
        with pytest.raises(InvalidParameterError):
            rsrfd_variance("grr", 1.0, 10, 5, 100, prior_value=1.5)

    def test_averaged_variance_requires_priors_for_rsrfd(self):
        with pytest.raises(InvalidParameterError):
            averaged_analytical_variance("rsrfd", "grr", 1.0, [4, 5], 100)


class TestAgainstSimulation:
    @pytest.mark.parametrize("variant", ["grr", "ue-z", "ue-r"])
    def test_rsfd_variance_matches_monte_carlo(self, variant):
        rng = np.random.default_rng(0)
        domain = Domain.from_sizes([6, 6, 6])
        n, eps = 20000, 1.5
        probs = np.array([0.4, 0.25, 0.15, 0.1, 0.06, 0.04])
        dataset = TabularDataset.from_columns(
            [rng.choice(6, size=n, p=probs) for _ in range(3)], domain
        )
        target_value = 5  # low-frequency value, close to the f=0 approximation
        estimates = []
        for repeat in range(25):
            solution = RSFD(domain, eps, variant=variant, ue_kind="OUE", rng=100 + repeat)
            _, est = solution.collect_and_estimate(dataset)
            estimates.append(est[0].estimates[target_value])
        empirical = float(np.var(estimates))
        analytical = rsfd_variance(
            variant, eps, 6, 3, n, f=float(probs[target_value]), ue_kind="OUE"
        )
        assert empirical == pytest.approx(analytical, rel=0.6)

    def test_rsrfd_variance_matches_monte_carlo(self):
        rng = np.random.default_rng(1)
        domain = Domain.from_sizes([6, 6, 6])
        n, eps = 20000, 1.5
        probs = np.array([0.4, 0.25, 0.15, 0.1, 0.06, 0.04])
        dataset = TabularDataset.from_columns(
            [rng.choice(6, size=n, p=probs) for _ in range(3)], domain
        )
        priors = dataset.all_frequencies()
        target_value = 4
        estimates = []
        for repeat in range(25):
            solution = RSRFD(domain, eps, priors, variant="grr", rng=200 + repeat)
            _, est = solution.collect_and_estimate(dataset)
            estimates.append(est[0].estimates[target_value])
        empirical = float(np.var(estimates))
        analytical = rsrfd_variance(
            "grr", eps, 6, 3, n,
            prior_value=float(priors[0][target_value]),
            f=float(probs[target_value]),
        )
        assert empirical == pytest.approx(analytical, rel=0.6)

    def test_averaged_variance_orders_protocols_like_fig16(self):
        sizes = (74, 7, 16, 7, 14, 6, 5, 2, 41, 2)
        n = 45000
        eps = np.log(4)
        priors = [np.full(k, 1.0 / k) for k in sizes]
        rsfd_grr = averaged_analytical_variance("rsfd", "grr", eps, sizes, n)
        rsrfd_grr = averaged_analytical_variance("rsrfd", "grr", eps, sizes, n, priors=priors)
        # uniform priors make RS+RFD coincide with RS+FD
        assert rsrfd_grr == pytest.approx(rsfd_grr)
        # skewed priors reduce the averaged variance (Jensen: gamma(1-gamma) concave)
        skewed = []
        for k in sizes:
            weights = np.arange(k, 0, -1, dtype=float) ** 2
            skewed.append(weights / weights.sum())
        rsrfd_skewed = averaged_analytical_variance(
            "rsrfd", "grr", eps, sizes, n, priors=skewed
        )
        assert rsrfd_skewed <= rsfd_grr * 1.001
