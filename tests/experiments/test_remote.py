"""Unit tests for the lease-based remote executor.

Lease mechanics (expiry, stealing, dedup, conflicts, backoff) are tested on
:class:`LeaseTable` directly with a hand-advanced clock — no sleeping, no
timing races.  End-to-end tests run in-process worker threads against a real
coordinator and assert byte-identical artifacts with the serial engine.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.retry import RetryPolicy
from repro.exceptions import GridExecutionError, InvalidParameterError
from repro.experiments.grid import GridCell, SerialExecutor, cell_runner, run_grid
from repro.experiments.remote import (
    DEFAULT_SHUTDOWN_GRACE,
    ChaosConfig,
    LeaseTable,
    RemoteExecutor,
    parse_chaos,
    parse_listen,
    wait_for_worker_exit,
    worker_loop,
)


@cell_runner("_test_remote_echo")
def _remote_echo_cell(params, rng):
    # deterministic per-cell rows that actually consume the derived stream
    return [{"value": params.get("value", 0), "draw": float(rng.random())}]


@cell_runner("_test_remote_boom")
def _remote_boom_cell(params, rng):
    raise RuntimeError("cell exploded")


def cell(value: int, runner: str = "_test_remote_echo") -> GridCell:
    return GridCell(
        figure="f", runner=runner, params={"value": value}, master_seed=42
    )


def tasks(n: int) -> list[tuple[int, GridCell]]:
    return [(i, cell(i)) for i in range(n)]


FAST = RetryPolicy(max_retries=3, base_delay=0.001, max_delay=0.002, jitter=0.0)


# --------------------------------------------------------------------------- #
# chaos parsing
# --------------------------------------------------------------------------- #
class TestParseChaos:
    def test_empty_is_inactive(self) -> None:
        assert not parse_chaos(None).active
        assert not parse_chaos("").active
        assert not parse_chaos("  ").active

    def test_single_directives(self) -> None:
        assert parse_chaos("kill_after:3").kill_after == 3
        assert parse_chaos("drop_heartbeat:2").drop_heartbeat == 2
        assert parse_chaos("delay_completion:1.5").delay_completion == 1.5

    def test_combined_directives(self) -> None:
        chaos = parse_chaos("kill_after:3, drop_heartbeat:2")
        assert chaos.kill_after == 3
        assert chaos.drop_heartbeat == 2
        assert chaos.delay_completion is None

    def test_scope_matches_worker_index(self) -> None:
        assert parse_chaos("kill_after:3@0", worker_index=0).kill_after == 3
        assert parse_chaos("kill_after:3@0", worker_index=1).kill_after is None
        assert parse_chaos("kill_after:3@0", worker_index=None).kill_after is None

    def test_scoped_directive_beside_unscoped(self) -> None:
        chaos = parse_chaos("kill_after:3,drop_heartbeat:2@1", worker_index=1)
        assert chaos.kill_after == 3
        assert chaos.drop_heartbeat == 2
        other = parse_chaos("kill_after:3,drop_heartbeat:2@1", worker_index=0)
        assert other.kill_after == 3
        assert other.drop_heartbeat is None

    @pytest.mark.parametrize(
        "value",
        [
            "explode:1",  # unknown directive
            "kill_after",  # missing argument
            "kill_after:",  # empty argument
            "kill_after:x",  # non-integer
            "kill_after:-1",  # negative
            "drop_heartbeat:0",  # must be >= 1
            "delay_completion:-0.5",  # negative
            "kill_after:3@zero",  # non-integer scope
        ],
    )
    def test_malformed_directives_fail_loudly(self, value: str) -> None:
        with pytest.raises(InvalidParameterError):
            parse_chaos(value, worker_index=0)

    def test_from_env_reads_scope(self) -> None:
        env = {"REPRO_CHAOS": "kill_after:2@1", "REPRO_WORKER_INDEX": "1"}
        assert ChaosConfig.from_env(env).kill_after == 2
        env["REPRO_WORKER_INDEX"] = "0"
        assert not ChaosConfig.from_env(env).active
        assert not ChaosConfig.from_env({}).active


# --------------------------------------------------------------------------- #
# the lease table, on a hand-advanced clock
# --------------------------------------------------------------------------- #
class TestLeaseTable:
    def test_grants_follow_plan_order(self) -> None:
        table = LeaseTable(tasks(3), lease_timeout=10.0)
        first = table.lease("wa", now=0.0)
        second = table.lease("wb", now=0.0)
        assert first["config_hash"] == cell(0).config_hash
        assert second["config_hash"] == cell(1).config_hash
        assert first["heartbeat_interval"] == pytest.approx(2.5)
        assert first["runner"] == "_test_remote_echo"

    def test_leased_cell_is_not_regranted_while_fresh(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0)
        assert table.lease("wa", now=0.0) is not None
        # the only cell is in flight and too young to steal
        assert table.lease("wb", now=1.0) is None

    def test_heartbeat_keeps_a_lease_alive(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0)
        grant = table.lease("wa", now=0.0)
        assert table.heartbeat(grant["lease_id"], now=8.0)
        assert table.expire(now=15.0) == []  # beat at t=8 → fresh until t=18
        assert table.expire(now=18.5) == [grant["lease_id"]]
        assert not table.heartbeat(grant["lease_id"], now=19.0)

    def test_expired_lease_requeues_with_backoff(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0, retry_policy=FAST)
        grant = table.lease("wa", now=0.0)
        assert table.expire(now=10.5) == [grant["lease_id"]]
        # immediately after expiry the cell sits in backoff
        assert table.lease("wb", now=10.5001) is None
        regrant = table.lease("wb", now=11.0)  # backoff (1ms) long elapsed
        assert regrant is not None
        assert regrant["config_hash"] == grant["config_hash"]
        kinds = [event["event"] for event in table.events]
        assert "lease_expired" in kinds and "cell_requeued" in kinds

    def test_exhausted_retries_fail_the_run_naming_the_cell(self) -> None:
        table = LeaseTable(
            tasks(1), lease_timeout=10.0, max_retries=1, retry_policy=FAST
        )
        config_hash = cell(0).config_hash
        table.lease("wa", now=0.0)
        table.expire(now=11.0)  # attempt 1: re-queued
        assert table.lease("wa", now=12.0) is not None
        table.expire(now=23.0)  # attempt 2: exceeds max_retries=1
        assert table.failure is not None
        assert config_hash in table.failure
        assert table.lease("wb", now=24.0) is None  # failed runs grant nothing

    def test_steal_only_after_steal_after_and_never_to_the_holder(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=20.0, steal_after=5.0)
        grant = table.lease("wa", now=0.0)
        table.heartbeat(grant["lease_id"], now=4.0)
        assert table.lease("wb", now=4.9) is None  # too early to steal
        # keep the original lease un-expired but old enough to steal
        table.heartbeat(grant["lease_id"], now=5.0)
        assert table.lease("wa", now=6.0) is None  # holder cannot steal its own
        stolen = table.lease("wb", now=6.0)
        assert stolen is not None
        assert stolen["config_hash"] == grant["config_hash"]
        assert any(event["event"] == "lease_stolen" for event in table.events)

    def test_steal_respects_max_leases_per_cell(self) -> None:
        table = LeaseTable(
            tasks(1), lease_timeout=20.0, steal_after=1.0, max_leases_per_cell=2
        )
        table.lease("wa", now=0.0)
        assert table.lease("wb", now=2.0) is not None  # second lease (steal)
        assert table.lease("wc", now=4.0) is None  # at the cap

    def test_steal_prefers_the_stalest_heartbeat(self) -> None:
        table = LeaseTable(tasks(2), lease_timeout=30.0, steal_after=1.0)
        first = table.lease("wa", now=0.0)
        second = table.lease("wb", now=0.0)
        table.heartbeat(first["lease_id"], now=2.0)  # fresher
        table.heartbeat(second["lease_id"], now=1.0)  # stalest
        stolen = table.lease("wc", now=5.0)
        assert stolen["config_hash"] == second["config_hash"]

    def test_first_completion_wins_and_duplicate_is_deduped(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0)
        config_hash = cell(0).config_hash
        rows = [{"value": 0, "draw": 0.5}]
        first = table.lease("wa", now=0.0)
        second = table.lease("wb", now=6.0)  # steal (steal_after = 5.0)
        assert second is not None
        assert (
            table.complete(
                config_hash, rows, 0.1, now=7.0,
                lease_id=first["lease_id"], worker_id="wa",
            )
            == "completed"
        )
        assert (
            table.complete(
                config_hash, list(rows), 0.2, now=8.0,
                lease_id=second["lease_id"], worker_id="wb",
            )
            == "duplicate"
        )
        assert table.failure is None
        assert table.all_done
        # delivered exactly once, with the winner's elapsed
        assert table.pop_completions() == [(0, rows, 0.1)]
        assert table.pop_completions() == []

    def test_conflicting_completion_fails_naming_the_config_hash(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0)
        config_hash = cell(0).config_hash
        table.complete(config_hash, [{"value": 1}], 0.1, now=0.0, worker_id="wa")
        verdict = table.complete(
            config_hash, [{"value": 2}], 0.1, now=1.0, worker_id="wb"
        )
        assert verdict == "conflict"
        assert table.failure is not None
        assert config_hash in table.failure
        assert "wb" in table.failure

    def test_late_completion_from_expired_lease_still_wins(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0, retry_policy=FAST)
        grant = table.lease("wa", now=0.0)
        table.expire(now=11.0)  # wa presumed dead...
        verdict = table.complete(
            cell(0).config_hash, [{"value": 0}], 0.3, now=11.5,
            lease_id=grant["lease_id"], worker_id="wa",
        )
        assert verdict == "completed"  # ...but its rows arrived first
        assert table.all_done

    def test_worker_error_requeues_and_counts_an_attempt(self) -> None:
        table = LeaseTable(
            tasks(1), lease_timeout=10.0, max_retries=0, retry_policy=FAST
        )
        grant = table.lease("wa", now=0.0)
        verdict = table.complete(
            cell(0).config_hash, None, 0.0, now=1.0,
            lease_id=grant["lease_id"], worker_id="wa",
            error="RuntimeError: cell exploded",
        )
        assert verdict == "error"
        # max_retries=0: the first failed attempt already exhausts the cell
        assert table.failure is not None
        assert "cell exploded" in table.failure

    def test_unknown_completion_is_reported_not_crashed(self) -> None:
        table = LeaseTable(tasks(1), lease_timeout=10.0)
        assert table.complete("nope", [], 0.0, now=0.0) == "unknown"
        assert table.failure is None

    def test_duplicate_config_hash_rejected(self) -> None:
        with pytest.raises(InvalidParameterError, match="duplicate config hash"):
            LeaseTable([(0, cell(1)), (1, cell(1))])

    def test_counts_and_register(self) -> None:
        table = LeaseTable(tasks(2), lease_timeout=10.0)
        assert table.register(None, now=0.0) == "w0"
        assert table.register("named", now=0.0) == "named"
        table.lease("w0", now=0.0)
        counts = table.counts()
        assert counts["cells"] == 2
        assert counts["done"] == 0
        assert counts["leased"] == 1
        assert counts["workers"] == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_timeout": 0.0},
            {"max_retries": -1},
            {"max_leases_per_cell": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs: dict) -> None:
        with pytest.raises(InvalidParameterError):
            LeaseTable(tasks(1), **kwargs)


def test_parse_listen() -> None:
    assert parse_listen("127.0.0.1:0") == ("127.0.0.1", 0)
    assert parse_listen("0.0.0.0:8765") == ("0.0.0.0", 8765)
    for bad in ("8765", ":8765", "host:", "host:x", "host:70000"):
        with pytest.raises(InvalidParameterError):
            parse_listen(bad)


# --------------------------------------------------------------------------- #
# graceful-shutdown wait: hand-advanced clock, no real sleeping
# --------------------------------------------------------------------------- #
class _FakeClock:
    """Hand-advanced monotonic clock whose ``sleep`` just adds time."""

    def __init__(self) -> None:
        self.now = 100.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class _FakeProc:
    """Stands in for a subprocess.Popen: exits after ``exit_at`` (clock time)."""

    def __init__(self, clock: _FakeClock, exit_at: float | None) -> None:
        self._clock = clock
        self._exit_at = exit_at

    def poll(self) -> int | None:
        if self._exit_at is not None and self._clock.now >= self._exit_at:
            return 0
        return None


class TestWaitForWorkerExit:
    def test_returns_true_when_workers_exit_within_grace(self) -> None:
        clock = _FakeClock()
        procs = [
            (0, _FakeProc(clock, exit_at=100.5), None),
            (1, _FakeProc(clock, exit_at=101.0), None),
        ]
        assert wait_for_worker_exit(
            procs, grace=2.0, poll_interval=0.25, clock=clock, sleep=clock.sleep
        )
        # stopped polling as soon as the slowest worker was gone
        assert clock.now == pytest.approx(101.0)
        assert clock.sleeps == [0.25] * 4

    def test_returns_false_on_timeout_without_overshooting(self) -> None:
        clock = _FakeClock()
        procs = [(0, _FakeProc(clock, exit_at=None), None)]  # never exits
        assert not wait_for_worker_exit(
            procs, grace=2.0, poll_interval=0.25, clock=clock, sleep=clock.sleep
        )
        # gave up at (not past) the deadline: grace / poll_interval sleeps
        assert clock.now == pytest.approx(102.0)
        assert clock.sleeps == [0.25] * 8

    def test_already_exited_workers_need_no_sleep(self) -> None:
        clock = _FakeClock()
        procs = [(0, _FakeProc(clock, exit_at=0.0), None)]
        assert wait_for_worker_exit(
            procs, grace=2.0, poll_interval=0.25, clock=clock, sleep=clock.sleep
        )
        assert clock.sleeps == []

    def test_no_procs_is_immediate(self) -> None:
        clock = _FakeClock()
        assert wait_for_worker_exit(
            [], grace=2.0, poll_interval=0.25, clock=clock, sleep=clock.sleep
        )
        assert clock.sleeps == []

    def test_zero_grace_polls_once_without_sleeping(self) -> None:
        clock = _FakeClock()
        procs = [(0, _FakeProc(clock, exit_at=None), None)]
        assert not wait_for_worker_exit(
            procs, grace=0.0, poll_interval=0.25, clock=clock, sleep=clock.sleep
        )
        assert clock.sleeps == []

    def test_invalid_parameters_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            wait_for_worker_exit([], grace=-1.0)
        with pytest.raises(InvalidParameterError):
            wait_for_worker_exit([], poll_interval=0.0)

    def test_executor_exposes_configurable_grace(self) -> None:
        executor = RemoteExecutor(workers=0, shutdown_grace=0.5)
        assert executor.shutdown_grace == 0.5
        assert RemoteExecutor(workers=0).shutdown_grace == DEFAULT_SHUTDOWN_GRACE
        with pytest.raises(InvalidParameterError):
            RemoteExecutor(workers=0, shutdown_grace=-0.1)


# --------------------------------------------------------------------------- #
# end-to-end: real coordinator, in-process worker threads
# --------------------------------------------------------------------------- #
def run_remote(cells, worker_chaos, **executor_kwargs):
    """Run ``cells`` on a RemoteExecutor with one thread per chaos config."""
    executor_kwargs.setdefault("lease_timeout", 2.0)
    executor_kwargs.setdefault("retry_policy", FAST)
    executor = RemoteExecutor(workers=0, **executor_kwargs)
    summaries: list[dict] = []

    def work(chaos: ChaosConfig) -> None:
        if not executor.ready.wait(timeout=10.0):
            return
        summaries.append(
            worker_loop(
                executor.address, chaos=chaos, retry_policy=RetryPolicy(max_retries=3)
            )
        )

    threads = [
        threading.Thread(target=work, args=(chaos,), daemon=True)
        for chaos in worker_chaos
    ]
    for thread in threads:
        thread.start()
    try:
        result = run_grid(cells, executor=executor)
    finally:
        for thread in threads:
            thread.join(timeout=10.0)
    return result, summaries


class TestRemoteExecutorEndToEnd:
    def test_single_worker_matches_serial_byte_for_byte(self) -> None:
        cells = [cell(v) for v in range(6)]
        serial = run_grid(cells, executor=SerialExecutor())
        remote, summaries = run_remote(cells, [ChaosConfig()])
        assert json.dumps(remote.rows, sort_keys=True) == json.dumps(
            serial.rows, sort_keys=True
        )
        assert remote.computed == 6
        assert sum(s["completed"] for s in summaries) == 6

    def test_three_workers_match_serial(self) -> None:
        cells = [cell(v) for v in range(8)]
        serial = run_grid(cells, executor=SerialExecutor())
        remote, _ = run_remote(cells, [ChaosConfig()] * 3)
        assert remote.rows == serial.rows

    def test_killed_worker_is_recovered_and_artifact_unchanged(self) -> None:
        cells = [cell(v) for v in range(6)]
        serial = run_grid(cells, executor=SerialExecutor())
        # worker 0 dies holding its 3rd lease; the survivor finishes the grid
        remote, summaries = run_remote(
            cells,
            [ChaosConfig(kill_after=2), ChaosConfig()],
            lease_timeout=0.5,
        )
        assert remote.rows == serial.rows
        killed = [s for s in summaries if s["killed"]]
        assert len(killed) == 1 and killed[0]["completed"] == 2

    def test_failing_cell_raises_grid_execution_error(self) -> None:
        cells = [cell(0, runner="_test_remote_boom")]
        with pytest.raises(GridExecutionError, match="cell exploded"):
            run_remote(cells, [ChaosConfig()], max_retries=1, lease_timeout=2.0)

    def test_event_log_is_written_with_summary(self, tmp_path) -> None:
        log = tmp_path / "events.jsonl"
        cells = [cell(v) for v in range(3)]
        run_remote(cells, [ChaosConfig()], event_log=log)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = {line["event"] for line in lines}
        assert {"worker_registered", "lease_granted", "cell_completed"} <= kinds
        assert lines[-1]["event"] == "summary"
        assert lines[-1]["done"] == 3

    def test_executor_reports_total_workers(self) -> None:
        assert RemoteExecutor(workers=3).total_workers == 3
        assert RemoteExecutor().total_workers == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"lease_timeout": 0.0},
            {"max_retries": -1},
            {"poll_interval": 0.0},
            {"listen": "nonsense"},
        ],
    )
    def test_invalid_parameters(self, kwargs: dict) -> None:
        with pytest.raises(InvalidParameterError):
            RemoteExecutor(**kwargs)
