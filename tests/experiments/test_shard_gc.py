"""Shard-workspace garbage collection (ISSUE 5, satellite 3).

Interrupted cached ``--shards N`` runs can orphan per-pending-set workspaces
under a persistent shard root.  The age-based sweep must remove only
workspaces whose *newest* content is older than the threshold — a concurrent
run that owns a workspace keeps its journal fresh, so even a stale
``plan.json`` must not doom it (the concurrent-owner near-miss).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.runner import main
from repro.experiments.sharding import gc_shard_workspaces

#: One hour, in seconds — the sweep threshold used throughout.
HOUR = 3600.0


def _make_workspace(root: Path, name: str, age_seconds: float, files=("plan.json",)):
    """Create a workspace directory whose entire content is ``age_seconds`` old."""
    workspace = root / name
    workspace.mkdir(parents=True)
    stamp = time.time() - age_seconds
    for filename in files:
        path = workspace / filename
        path.write_text("{}")
        os.utime(path, (stamp, stamp))
    os.utime(workspace, (stamp, stamp))
    return workspace


class TestGcShardWorkspaces:
    def test_removes_only_workspaces_older_than_max_age(self, tmp_path):
        old = _make_workspace(tmp_path, "aaaa0000", age_seconds=10 * HOUR)
        fresh = _make_workspace(tmp_path, "bbbb1111", age_seconds=0.0)
        summary = gc_shard_workspaces(tmp_path, max_age_seconds=HOUR)
        assert summary["removed"] == ["aaaa0000"]
        assert summary["kept"] == ["bbbb1111"]
        assert not old.exists()
        assert fresh.exists()

    def test_concurrent_owner_near_miss_is_protected(self, tmp_path):
        """An old plan file with a freshly touched journal marks a workspace a
        concurrent invocation still owns: the sweep must not remove it."""
        workspace = _make_workspace(
            tmp_path,
            "cccc2222",
            age_seconds=10 * HOUR,
            files=("plan.json", "shard-0000-of-0002.json"),
        )
        journal = workspace / "shard-0001-of-0002.json.journal.jsonl"
        journal.write_text('{"plan_hash": "x", "entry": {}}\n')  # fresh mtime
        summary = gc_shard_workspaces(tmp_path, max_age_seconds=HOUR)
        assert summary["removed"] == []
        assert summary["kept"] == ["cccc2222"]
        assert workspace.exists()
        assert (workspace / "plan.json").exists()

    def test_stray_files_in_the_root_are_left_alone(self, tmp_path):
        stray = tmp_path / "notes.txt"
        stray.write_text("keep me")
        old_stamp = time.time() - 10 * HOUR
        os.utime(stray, (old_stamp, old_stamp))
        summary = gc_shard_workspaces(tmp_path, max_age_seconds=HOUR)
        assert summary["removed"] == [] and summary["kept"] == []
        assert stray.exists()

    def test_missing_root_yields_empty_summary(self, tmp_path):
        summary = gc_shard_workspaces(tmp_path / "nowhere", max_age_seconds=HOUR)
        assert summary["removed"] == [] and summary["kept"] == []

    def test_negative_max_age_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            gc_shard_workspaces(tmp_path, max_age_seconds=-1.0)


class TestCliGcShards:
    def test_gc_sweeps_the_shard_root_and_prints_a_summary(self, tmp_path, capsys):
        root = tmp_path / "shards"
        _make_workspace(root, "aaaa0000", age_seconds=10 * HOUR)
        _make_workspace(root, "bbbb1111", age_seconds=0.0)
        code = main(
            ["fig1", "--gc-shards", "--shard-dir", str(root), "--gc-max-age", "3600"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["removed"] == ["aaaa0000"]
        assert summary["kept"] == ["bbbb1111"]
        assert not (root / "aaaa0000").exists()

    def test_gc_cli_concurrent_owner_near_miss(self, tmp_path, capsys):
        """CLI-level near-miss: stale plan, fresh journal — workspace kept."""
        root = tmp_path / "shards"
        workspace = _make_workspace(root, "cccc2222", age_seconds=10 * HOUR)
        (workspace / "journal.jsonl").write_text("{}\n")  # concurrent owner
        code = main(
            ["fig1", "--gc-shards", "--shard-dir", str(root), "--gc-max-age", "3600"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kept"] == ["cccc2222"]
        assert workspace.exists()

    def test_gc_defaults_to_the_per_figure_shard_root(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig1", "--gc-shards"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["root"].endswith(os.path.join(".repro-shards", "fig1"))

    def test_gc_conflicts_with_shard_execution_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig1", "--gc-shards", "--shards", "2", "--shard-index", "0"])
        with pytest.raises(SystemExit):
            main(["fig1", "--gc-shards", "--shards", "2", "--merge-shards"])
        with pytest.raises(SystemExit):  # a bare --shards would be silently ignored
            main(["fig1", "--gc-shards", "--shards", "4"])

    def test_gc_rejects_negative_age_with_exit_2(self, tmp_path, capsys):
        code = main(
            ["fig1", "--gc-shards", "--shard-dir", str(tmp_path), "--gc-max-age", "-5"]
        )
        assert code == 2
        assert "max_age" in capsys.readouterr().err
