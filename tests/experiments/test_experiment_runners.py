"""Smoke tests for every experiment runner at tiny scale.

These are integration tests: each runner executes its full pipeline
(dataset synthesis, collection, attack, metric computation) on a handful of
users and a coarse epsilon grid, and the structure of the returned rows is
checked against what the benchmark harness and the figures expect.
"""

import pytest

from repro.experiments.attribute_inference_rsfd import (
    parse_rsfd_protocol,
    run_attribute_inference_rsfd,
)
from repro.experiments.attribute_inference_rsrfd import run_attribute_inference_rsrfd
from repro.experiments.reident_rsfd import run_reidentification_rsfd
from repro.experiments.reident_smp import run_reidentification_smp
from repro.experiments.utility_rsrfd import run_utility_rsrfd
from repro.exceptions import InvalidParameterError
from repro.ml.naive_bayes import BernoulliNaiveBayes


class TestParseProtocol:
    @pytest.mark.parametrize(
        "label, expected",
        [
            ("GRR", ("grr", "OUE")),
            ("SUE-z", ("ue-z", "SUE")),
            ("OUE-z", ("ue-z", "OUE")),
            ("SUE-r", ("ue-r", "SUE")),
            ("OUE-r", ("ue-r", "OUE")),
        ],
    )
    def test_labels(self, label, expected):
        assert parse_rsfd_protocol(label) == expected

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            parse_rsfd_protocol("GRR-z")


class TestReidentSMP:
    def test_fig2_rows(self):
        rows = run_reidentification_smp(
            dataset_name="adult",
            n=250,
            protocols=("GRR", "OUE"),
            epsilons=(2.0, 8.0),
            num_surveys=3,
            top_ks=(1, 10),
            seed=0,
        )
        # 2 protocols x 2 epsilons x 2 surveys-counts (2, 3) x 2 top-k
        assert len(rows) == 2 * 2 * 2 * 2
        assert all(0.0 <= row["rid_acc_pct"] <= 100.0 for row in rows)
        assert all(row["surveys"] in (2, 3) for row in rows)

    def test_pie_axis(self):
        rows = run_reidentification_smp(
            dataset_name="adult",
            n=200,
            protocols=("GRR",),
            num_surveys=2,
            top_ks=(10,),
            pie_betas=(0.9, 0.5),
            seed=0,
        )
        assert all(row["privacy_axis"] == "beta" for row in rows)
        assert {row["privacy_level"] for row in rows} == {0.9, 0.5}

    def test_non_uniform_metric_and_pk_model(self):
        rows = run_reidentification_smp(
            dataset_name="adult",
            n=200,
            protocols=("GRR",),
            epsilons=(8.0,),
            num_surveys=2,
            top_ks=(10,),
            knowledge="PK-RI",
            metric="non-uniform",
            seed=0,
        )
        assert rows and all(row["knowledge"] == "PK-RI" for row in rows)


class TestAttributeInferenceRSFD:
    def test_fig3_rows(self):
        rows = run_attribute_inference_rsfd(
            dataset_name="acs_employment",
            n=150,
            protocols=("GRR", "SUE-z"),
            epsilons=(4.0,),
            models=("NK", "PK", "HM"),
            nk_factors=(1.0,),
            pk_fractions=(0.3,),
            classifier_factory=BernoulliNaiveBayes,
            seed=0,
        )
        assert len(rows) == 2 * 1 * 3
        assert all(0.0 <= row["aif_acc_pct"] <= 100.0 for row in rows)
        assert all(row["baseline_pct"] == pytest.approx(100.0 / 18) for row in rows)


class TestReidentRSFD:
    def test_fig4_rows(self):
        rows = run_reidentification_rsfd(
            dataset_name="adult",
            n=150,
            epsilons=(6.0,),
            num_surveys=2,
            top_ks=(10,),
            classifier_factory=BernoulliNaiveBayes,
            seed=0,
        )
        assert rows and all(row["top_k"] == 10 for row in rows)


class TestUtilityRSRFD:
    def test_fig5_rows(self):
        rows = run_utility_rsrfd(
            dataset_name="acs_employment",
            n=400,
            protocols=("GRR",),
            epsilons=(0.7, 1.9),
            prior_kinds=("correct",),
            seed=0,
        )
        # RS+FD and RS+RFD rows for each epsilon
        assert len(rows) == 2 * 2
        assert all(row["mse_avg"] >= 0.0 for row in rows)
        solutions = {row["solution"] for row in rows}
        assert solutions == {"RS+FD", "RS+RFD"}

    def test_fig16_includes_analytical(self):
        rows = run_utility_rsrfd(
            dataset_name="adult",
            n=300,
            protocols=("OUE-r",),
            epsilons=(1.0,),
            prior_kinds=("zipf",),
            include_analytical=True,
            seed=0,
        )
        assert all("analytical_variance" in row for row in rows)
        assert all(row["analytical_variance"] > 0 for row in rows)


class TestAttributeInferenceRSRFD:
    def test_fig6_rows(self):
        rows = run_attribute_inference_rsrfd(
            dataset_name="acs_employment",
            n=150,
            protocols=("GRR",),
            epsilons=(4.0,),
            models=("NK",),
            nk_factors=(1.0,),
            prior_kind="correct",
            classifier_factory=BernoulliNaiveBayes,
            seed=0,
        )
        assert len(rows) == 1
        assert rows[0]["protocol"] == "RS+RFD[GRR]"
        assert rows[0]["prior"] == "correct"
