"""Determinism-parity tests for the grid engine (ISSUE 1, satellite 1).

For two representative figures — Fig. 2 (SMP re-identification) and Fig. 5
(RS+RFD utility) — the grid engine must produce byte-identical rows whether
the cells execute in-process (``workers=1``) or across a process pool
(``workers=4``), given the same master seed; and a second run must be served
entirely from the on-disk cache.
"""

import json

import pytest

from repro.experiments.grid import run_grid
from repro.experiments.reident_smp import plan_reidentification_smp
from repro.experiments.utility_rsrfd import plan_utility_rsrfd


def _canonical(rows: list[dict]) -> bytes:
    """Byte-level encoding of the rows (order-sensitive, full precision)."""
    return json.dumps(rows, sort_keys=True).encode("utf-8")


@pytest.fixture(scope="module")
def fig2_cells():
    """A scaled-down Fig. 2 grid (SMP re-identification on Adult)."""
    return plan_reidentification_smp(
        dataset_name="adult",
        n=250,
        protocols=("GRR", "OUE"),
        epsilons=(1.0, 8.0),
        num_surveys=3,
        top_ks=(1, 10),
        seed=123,
        figure="fig2",
    )


@pytest.fixture(scope="module")
def fig5_cells():
    """A scaled-down Fig. 5 grid (RS+RFD vs RS+FD utility on ACS)."""
    return plan_utility_rsrfd(
        dataset_name="acs_employment",
        n=300,
        protocols=("GRR", "OUE-r"),
        epsilons=(0.7, 1.9),
        prior_kinds=("correct",),
        seed=123,
        figure="fig5",
    )


class TestWorkerCountParity:
    def test_fig2_rows_identical_for_1_and_4_workers(self, fig2_cells):
        sequential = run_grid(fig2_cells, workers=1)
        parallel = run_grid(fig2_cells, workers=4)
        assert _canonical(sequential.rows) == _canonical(parallel.rows)
        assert sequential.rows  # non-degenerate

    def test_fig5_rows_identical_for_1_and_4_workers(self, fig5_cells):
        sequential = run_grid(fig5_cells, workers=1)
        parallel = run_grid(fig5_cells, workers=4)
        assert _canonical(sequential.rows) == _canonical(parallel.rows)
        assert sequential.rows

    def test_different_master_seed_changes_rows(self):
        base = plan_reidentification_smp(
            dataset_name="adult", n=250, protocols=("GRR",), epsilons=(1.0,),
            num_surveys=2, seed=123, figure="fig2",
        )
        other = plan_reidentification_smp(
            dataset_name="adult", n=250, protocols=("GRR",), epsilons=(1.0,),
            num_surveys=2, seed=124, figure="fig2",
        )
        assert _canonical(run_grid(base).rows) != _canonical(run_grid(other).rows)


class TestCacheParity:
    def test_fig2_second_run_served_from_cache(self, fig2_cells, tmp_path):
        cold = run_grid(fig2_cells, workers=4, cache=tmp_path / "cache")
        assert cold.from_cache == 0
        assert cold.computed == len(fig2_cells)
        warm = run_grid(fig2_cells, workers=1, cache=tmp_path / "cache")
        assert warm.from_cache == len(fig2_cells)
        assert warm.computed == 0
        assert _canonical(warm.rows) == _canonical(cold.rows)

    def test_fig5_second_run_served_from_cache(self, fig5_cells, tmp_path):
        cold = run_grid(fig5_cells, workers=1, cache=tmp_path / "cache")
        warm = run_grid(fig5_cells, workers=4, cache=tmp_path / "cache")
        assert warm.from_cache == len(fig5_cells)
        assert _canonical(warm.rows) == _canonical(cold.rows)
