"""Unit tests for the WAL-mode SQLite cell store."""

import json
import sqlite3
import threading
import warnings

import pytest

from repro.core.retry import RetryPolicy
from repro.exceptions import InvalidParameterError
from repro.experiments.cellstore import (
    CELLSTORE_SCHEMA_VERSION,
    SQLiteCellStore,
    _MIGRATIONS,
    _statements,
)
from repro.experiments.grid import GridCache, GridCell, cell_runner, run_grid


@cell_runner("_test_store_echo")
def _store_echo_cell(params, rng):
    return [{"value": params.get("value", 0)}]


def cell(value: int, seed: int = 42) -> GridCell:
    return GridCell(
        figure="f", runner="_test_store_echo", params={"value": value}, master_seed=seed
    )


@pytest.fixture
def store(tmp_path):
    store = SQLiteCellStore.for_directory(tmp_path / "cache")
    yield store
    store.close()


class TestCellsTable:
    def test_roundtrip(self, store):
        assert store.get(cell(1)) is None
        assert store.put(cell(1), [{"value": 1, "draw": 4}], elapsed=0.1) is not None
        assert store.get(cell(1)) == [{"value": 1, "draw": 4}]
        assert len(store) == 1

    def test_wal_mode_and_schema_version(self, store):
        assert store._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert store.schema_version() == CELLSTORE_SCHEMA_VERSION

    def test_key_mismatch_is_a_miss(self, store):
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        store._conn.execute("UPDATE cells SET key = 'tampered'")
        store._conn.commit()
        assert store.get(cell(1)) is None

    def test_master_seed_mismatch_is_a_miss(self, store):
        store.put(cell(1, seed=42), [{"value": 1}], elapsed=0.0)
        store._conn.execute("UPDATE cells SET master_seed = 7")
        store._conn.commit()
        assert store.get(cell(1)) is None

    def test_corrupt_rows_payload_is_a_miss(self, store):
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        store._conn.execute("UPDATE cells SET rows = '{not json'")
        store._conn.commit()
        assert store.get(cell(1)) is None

    def test_overwrite_keeps_one_entry(self, store):
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        store.put(cell(1), [{"value": 2}], elapsed=0.0)
        assert len(store) == 1
        assert store.get(cell(1)) == [{"value": 2}]

    def test_stats_shape(self, store):
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        stats = store.stats()
        assert stats["backend"] == "sqlite"
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["journal_entries"] == 0
        assert stats["runs"] == 0
        assert stats["schema_version"] == CELLSTORE_SCHEMA_VERSION

    def test_run_grid_serves_second_run_from_cache(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path / "cache")
        cells = [cell(v) for v in range(3)]
        cold = run_grid(cells, cache=store)
        assert cold.computed == 3 and cold.from_cache == 0
        warm = run_grid(cells, cache=store)
        assert warm.computed == 0 and warm.from_cache == 3
        assert warm.rows == cold.rows
        store.close()

    def test_unusable_path_raises_invalid_parameter(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(InvalidParameterError):
            SQLiteCellStore.for_directory(blocker / "cache")

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            SQLiteCellStore.for_directory(tmp_path, max_entries=0)
        with pytest.raises(InvalidParameterError):
            SQLiteCellStore.for_directory(tmp_path, max_bytes=0)


class TestEviction:
    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path, max_entries=2)
        store.put(cell(0), [{"value": 0}], elapsed=0.0)  # oldest write...
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        assert store.get(cell(0)) is not None  # ...but refreshed: hot
        store.put(cell(2), [{"value": 2}], elapsed=0.0)
        assert store.get(cell(0)) is not None
        assert store.get(cell(1)) is None  # the stale entry went
        assert store.stats()["evicted"] == 1
        store.close()

    def test_newest_entry_never_evicted(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path, max_entries=1)
        for value in range(3):
            store.put(cell(value), [{"value": value}], elapsed=0.0)
        assert len(store) == 1
        assert store.get(cell(2)) is not None
        store.close()

    def test_max_bytes_bound(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path)
        store.put(cell(0), [{"value": 0}], elapsed=0.0)
        entry_size = store.stats()["total_bytes"]
        store.close()
        bounded = SQLiteCellStore.for_directory(tmp_path, max_bytes=3 * entry_size)
        for value in range(1, 7):
            bounded.put(cell(value), [{"value": value}], elapsed=0.0)
        stats = bounded.stats()
        assert stats["total_bytes"] <= bounded.max_bytes
        assert stats["entries"] < 7
        bounded.close()

    def test_unbounded_store_keeps_everything(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path)
        for value in range(5):
            store.put(cell(value), [{"value": value}], elapsed=0.0)
        assert len(store) == 5
        assert store.stats()["evicted"] == 0
        store.close()


class TestMigrations:
    def test_fresh_database_lands_at_current_version(self, store):
        assert store.schema_version() == CELLSTORE_SCHEMA_VERSION == len(_MIGRATIONS)

    def test_old_database_upgrades_in_place(self, tmp_path):
        # hand-build a version-1 database (tables, no indexes), then reopen
        path = tmp_path / "cells.sqlite"
        conn = sqlite3.connect(path)
        for statement in _statements(_MIGRATIONS[0]):
            conn.execute(statement)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        store = SQLiteCellStore(path)
        assert store.schema_version() == CELLSTORE_SCHEMA_VERSION
        indexes = {
            row[0]
            for row in store._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        assert "idx_cells_last_used" in indexes
        store.close()

    def test_newer_database_is_refused(self, tmp_path):
        path = tmp_path / "cells.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {CELLSTORE_SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(InvalidParameterError, match="newer"):
            SQLiteCellStore(path)

    def test_reopening_is_idempotent(self, tmp_path):
        first = SQLiteCellStore.for_directory(tmp_path)
        first.put(cell(1), [{"value": 1}], elapsed=0.0)
        first.close()
        second = SQLiteCellStore.for_directory(tmp_path)
        assert second.get(cell(1)) == [{"value": 1}]
        assert second.schema_version() == CELLSTORE_SCHEMA_VERSION
        second.close()


class TestShardJournal:
    def entry(self, value: int) -> dict:
        return {"config_hash": f"hash-{value}", "rows": [{"value": value}]}

    def test_append_and_query(self, store):
        for value in range(4):
            assert store.journal_append("plan-a", value % 2, self.entry(value))
        recovered = store.journal_entries("plan-a")
        assert set(recovered) == {f"hash-{v}" for v in range(4)}
        assert store.journal_entries("plan-b") == {}

    def test_append_is_idempotent_per_cell(self, store):
        store.journal_append("plan-a", 0, self.entry(1))
        store.journal_append("plan-a", 1, {"config_hash": "hash-1", "rows": [{"value": 9}]})
        recovered = store.journal_entries("plan-a")
        assert len(recovered) == 1
        assert recovered["hash-1"]["rows"] == [{"value": 9}]  # the upsert won

    def test_clear_one_shard_keeps_the_others(self, store):
        store.journal_append("plan-a", 0, self.entry(0))
        store.journal_append("plan-a", 1, self.entry(1))
        assert store.journal_clear("plan-a", shard_index=0) == 1
        assert set(store.journal_entries("plan-a")) == {"hash-1"}
        assert store.journal_clear("plan-a") == 1
        assert store.journal_entries("plan-a") == {}

    def test_undecodable_entry_rows_are_skipped(self, store):
        store.journal_append("plan-a", 0, self.entry(0))
        store._conn.execute("UPDATE shard_journal SET entry = '{torn'")
        store._conn.commit()
        assert store.journal_entries("plan-a") == {}


class TestRunsLedger:
    def test_record_and_read_back_newest_first(self, store):
        first = store.record_run("run_grid", figure="fig2", summary={"cells": 3})
        second = store.record_run("run_shard", figure="fig2", summary={"cells": 1})
        ledger = store.runs_ledger()
        assert [entry["run_id"] for entry in ledger] == [second, first]
        assert ledger[1]["kind"] == "run_grid"
        assert ledger[1]["summary"] == {"cells": 3}
        assert ledger[1]["finished_at"] >= ledger[1]["started_at"]

    def test_filter_and_limit(self, store):
        for index in range(5):
            store.record_run("run_shard", summary={"i": index})
        store.record_run("merge_shards", summary={})
        assert len(store.runs_ledger(limit=2)) == 2
        kinds = {entry["kind"] for entry in store.runs_ledger(kind="run_shard")}
        assert kinds == {"run_shard"}


class TestImportJsonCache:
    def test_imports_entries_and_counts(self, tmp_path):
        json_cache = GridCache(tmp_path / "cache")
        cells = [cell(v) for v in range(3)]
        for value, c in enumerate(cells):
            json_cache.put(c, [{"value": value}], elapsed=0.0)
        (tmp_path / "cache" / "garbage.json").write_text("{not json")

        store = SQLiteCellStore.for_directory(tmp_path / "cache")
        summary = store.import_json_cache(tmp_path / "cache")
        assert summary["imported"] == 3
        assert summary["skipped"] == 1
        for value, c in enumerate(cells):
            assert store.get(c) == [{"value": value}]
        # a re-import changes nothing: the database copy wins
        again = store.import_json_cache(tmp_path / "cache")
        assert again["imported"] == 0
        assert again["already_present"] == 3
        store.close()

    def test_import_preserves_lru_order(self, tmp_path):
        import os
        import time

        json_cache = GridCache(tmp_path / "cache")
        cells = [cell(v) for v in range(3)]
        for value, c in enumerate(cells):
            path = json_cache.put(c, [{"value": value}], elapsed=0.0)
            stamp = time.time() - 1000 + value
            os.utime(path, (stamp, stamp))
        store = SQLiteCellStore(tmp_path / "imported.sqlite", max_entries=2)
        store.import_json_cache(tmp_path / "cache")
        assert store.get(cells[0]) is None  # the stalest import was evicted
        assert store.get(cells[1]) is not None
        assert store.get(cells[2]) is not None
        store.close()


class TestDegradation:
    def test_failures_degrade_to_one_warning_per_category(self, tmp_path):
        # each distinct (action, errno) failure category warns exactly once;
        # repeats of an already-warned category stay silent
        store = SQLiteCellStore.for_directory(tmp_path)
        store.put(cell(1), [{"value": 1}], elapsed=0.0)
        store.close()  # every later query raises sqlite3.ProgrammingError
        with pytest.warns(RuntimeWarning, match="cell store read failed"):
            assert store.get(cell(1)) is None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # new categories each warn once...
            assert store.put(cell(2), [{"value": 2}], elapsed=0.0) is None
            assert store.journal_append("plan", 0, {"config_hash": "h"}) is False
            assert store.journal_entries("plan") == {}
            assert store.record_run("run_grid") is None
            assert store.runs_ledger() == []
            assert store.stats()["entries"] == 0
        actions = [str(w.message) for w in caught]
        assert len(actions) == 6  # write, journal append/read, ledger append/read, stats
        assert [a for a in actions if "write failed" in a]
        assert [a for a in actions if "journal append failed" in a]
        # ...then every repeat degrades silently
        with warnings.catch_warnings(record=True) as repeat:
            warnings.simplefilter("always")
            assert store.get(cell(1)) is None
            assert store.put(cell(3), [{"value": 3}], elapsed=0.0) is None
            assert store.journal_entries("plan") == {}
            assert store.runs_ledger() == []
            assert len(store) == 0
            assert store.stats()["entries"] == 0
        assert repeat == []

    def test_run_grid_completes_with_failing_store(self, tmp_path):
        store = SQLiteCellStore.for_directory(tmp_path)
        store.close()
        cells = [cell(v) for v in range(3)]
        with pytest.warns(RuntimeWarning, match="cell store"):
            result = run_grid(cells, cache=store)
        assert result.computed == 3
        assert [row["value"] for row in result.rows] == [0, 1, 2]


class TestWriteContention:
    """Two writers on one database: bounded retry, then warned miss."""

    @staticmethod
    def _tiny_policy(max_retries: int = 2) -> RetryPolicy:
        return RetryPolicy(
            max_retries=max_retries, base_delay=0.001, max_delay=0.002, jitter=0.0
        )

    def test_locked_db_degrades_to_warned_miss_not_exception(self, tmp_path):
        path = tmp_path / "cells.sqlite"
        store = SQLiteCellStore(
            path, busy_timeout_ms=5, retry_policy=self._tiny_policy()
        )
        blocker = sqlite3.connect(path)
        try:
            blocker.execute("BEGIN IMMEDIATE")  # hold the write lock
            with pytest.warns(RuntimeWarning, match="cell store write failed"):
                assert store.put(cell(1), [{"value": 1}], elapsed=0.0) is None
        finally:
            blocker.rollback()
            blocker.close()
        # once the co-writer is gone the same store writes normally again
        assert store.put(cell(1), [{"value": 1}], elapsed=0.0) == path
        assert store.get(cell(1)) == [{"value": 1}]
        store.close()

    def test_retry_outlasts_a_transient_lock(self, tmp_path):
        path = tmp_path / "cells.sqlite"
        store = SQLiteCellStore(
            path,
            busy_timeout_ms=50,
            retry_policy=RetryPolicy(
                max_retries=40, base_delay=0.05, max_delay=0.05, jitter=0.0
            ),
        )
        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.2, lambda: (blocker.rollback(), blocker.close()))
        release.start()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert store.put(cell(7), [{"value": 7}], elapsed=0.0) == path
            assert caught == []
        finally:
            release.join()
            store.close()

    def test_two_writers_share_one_journal(self, tmp_path):
        path = tmp_path / "cells.sqlite"
        first = SQLiteCellStore(path)
        second = SQLiteCellStore(path)
        try:
            for index in range(4):
                writer = first if index % 2 == 0 else second
                assert writer.journal_append(
                    "plan", index % 2, {"config_hash": f"h{index}", "value": index}
                )
            assert set(first.journal_entries("plan")) == {"h0", "h1", "h2", "h3"}
            assert second.journal_entries("plan") == first.journal_entries("plan")
        finally:
            first.close()
            second.close()

    def test_non_lock_errors_are_not_retried(self, tmp_path):
        store = SQLiteCellStore(
            tmp_path / "cells.sqlite", retry_policy=self._tiny_policy(max_retries=50)
        )
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: nowhere")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            store._retry_write("write", broken)
        assert len(attempts) == 1  # retrying cannot fix a schema error
        store.close()
