"""Unit tests for the experiment-grid engine."""

import json

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.grid import (
    GridCache,
    GridCell,
    canonical_json,
    cell_runner,
    get_cell_runner,
    registered_cell_runners,
    run_grid,
)

COUNTER_DIR_KEY = "_counter_dir"


@cell_runner("_test_echo")
def _echo_cell(params, rng):
    """Toy runner: one row echoing the params plus a derived random draw."""
    if params.get(COUNTER_DIR_KEY):
        # count physical executions via the filesystem (works across forks)
        import os
        import tempfile

        with tempfile.NamedTemporaryFile(
            dir=params[COUNTER_DIR_KEY], prefix="exec-", delete=False
        ) as handle:
            handle.write(b"1")
    return [{"value": params.get("value", 0), "draw": int(rng.integers(0, 10**9))}]


@cell_runner("_test_boom")
def _boom_cell(params, rng):
    raise RuntimeError("cell exploded")


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_tuples_and_numpy_scalars_normalize(self):
        assert canonical_json({"xs": (1, 2)}) == canonical_json({"xs": [1, 2]})
        assert canonical_json(np.float64(1.5)) == canonical_json(1.5)
        assert canonical_json(np.int32(3)) == canonical_json(3)

    def test_non_serializable_rejected(self):
        with pytest.raises(InvalidParameterError):
            canonical_json({"fn": lambda: None})


class TestGridCell:
    def test_config_hash_is_stable_under_param_ordering(self):
        a = GridCell(figure="f", runner="_test_echo", params={"x": 1, "y": 2})
        b = GridCell(figure="f", runner="_test_echo", params={"y": 2, "x": 1})
        assert a.config_hash == b.config_hash

    def test_config_hash_ignores_figure_label(self):
        a = GridCell(figure="fig2", runner="_test_echo", params={"x": 1})
        b = GridCell(figure="fig9", runner="_test_echo", params={"x": 1})
        assert a.config_hash == b.config_hash

    def test_config_hash_depends_on_params_and_seed(self):
        base = GridCell(figure="f", runner="_test_echo", params={"x": 1})
        other_params = GridCell(figure="f", runner="_test_echo", params={"x": 2})
        other_seed = GridCell(figure="f", runner="_test_echo", params={"x": 1}, master_seed=7)
        assert base.config_hash != other_params.config_hash
        assert base.config_hash != other_seed.config_hash

    def test_cell_rng_is_deterministic(self):
        cell = GridCell(figure="f", runner="_test_echo", params={"x": 1})
        a = cell.make_rng().integers(0, 10**9, size=4)
        b = cell.make_rng().integers(0, 10**9, size=4)
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_builtin_runners_registered(self):
        names = registered_cell_runners()
        for name in (
            "analytical_acc",
            "reident_smp",
            "reident_rsfd",
            "attribute_inference_rsfd",
            "attribute_inference_rsrfd",
            "utility_rsrfd",
        ):
            assert name in names

    def test_unknown_runner_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_cell_runner("no-such-runner")

    def test_run_grid_rejects_unknown_runner_before_executing(self):
        with pytest.raises(InvalidParameterError):
            run_grid([GridCell(figure="f", runner="no-such-runner")])


class TestRunGrid:
    def test_rows_follow_cell_order(self):
        cells = [
            GridCell(figure="f", runner="_test_echo", params={"value": v})
            for v in (3, 1, 2)
        ]
        result = run_grid(cells)
        assert [row["value"] for row in result.rows] == [3, 1, 2]
        assert result.n_cells == 3
        assert result.computed == 3

    def test_workers_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            run_grid([], workers=0)

    def test_identical_cells_deduplicated_within_a_run(self, tmp_path):
        counter = tmp_path / "execs"
        counter.mkdir()
        params = {"value": 5, COUNTER_DIR_KEY: str(counter)}
        cells = [
            GridCell(figure="a", runner="_test_echo", params=params),
            GridCell(figure="b", runner="_test_echo", params=params),
        ]
        result = run_grid(cells)
        assert len(list(counter.iterdir())) == 1
        assert result.computed == 1
        assert result.deduplicated == 1
        assert result.rows[0] == result.rows[1]

    def test_failing_cell_propagates(self):
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_grid([GridCell(figure="f", runner="_test_boom")])

    def test_negative_master_seed_rejected_before_execution(self):
        cell = GridCell(figure="f", runner="_test_echo", params={}, master_seed=-5)
        with pytest.raises(InvalidParameterError, match="non-negative"):
            run_grid([cell])

    def test_completed_cells_are_cached_even_when_another_cell_fails(self, tmp_path):
        cache_dir = tmp_path / "cache"
        good = [
            GridCell(figure="f", runner="_test_echo", params={"value": v})
            for v in range(3)
        ]
        cells = good + [GridCell(figure="f", runner="_test_boom")]
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_grid(cells, workers=2, cache=cache_dir)
        # the surviving cells were persisted, so a retry only recomputes the rest
        retry = run_grid(good, workers=1, cache=cache_dir)
        assert retry.from_cache == 3
        assert retry.computed == 0

    def test_parallel_equals_sequential(self):
        cells = [
            GridCell(figure="f", runner="_test_echo", params={"value": v}, master_seed=9)
            for v in range(6)
        ]
        sequential = run_grid(cells, workers=1)
        parallel = run_grid(cells, workers=3)
        assert sequential.rows == parallel.rows


class TestGridCache:
    def test_roundtrip(self, tmp_path):
        cache = GridCache(tmp_path / "cache")
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        assert cache.get(cell) is None
        cache.put(cell, [{"value": 1, "draw": 4}], elapsed=0.1)
        assert cache.get(cell) == [{"value": 1, "draw": 4}]
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.path_for(cell).write_text("{not json")
        assert cache.get(cell) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.put(cell, [{"value": 1}], elapsed=0.0)
        entry = json.loads(cache.path_for(cell).read_text())
        entry["key"] = "tampered"
        cache.path_for(cell).write_text(json.dumps(entry))
        assert cache.get(cell) is None

    def test_run_grid_serves_second_run_from_cache(self, tmp_path):
        cells = [
            GridCell(figure="f", runner="_test_echo", params={"value": v})
            for v in range(3)
        ]
        cold = run_grid(cells, cache=tmp_path / "cache")
        assert cold.computed == 3 and cold.from_cache == 0
        warm = run_grid(cells, cache=tmp_path / "cache")
        assert warm.computed == 0 and warm.from_cache == 3
        assert warm.rows == cold.rows

    def test_invalid_cache_argument_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_grid([], cache=123)

    def test_entry_that_is_a_directory_is_a_warned_miss(self, tmp_path):
        # an EISDIR on open must degrade to a miss, not crash the grid run
        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.path_for(cell).mkdir()
        with pytest.warns(RuntimeWarning, match="grid cache read failed"):
            assert cache.get(cell) is None

    def test_unwritable_cache_degrades_to_warning(self, tmp_path, monkeypatch):
        import tempfile as tempfile_module

        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})

        def denied(*args, **kwargs):
            raise PermissionError(13, "read-only cache dir")

        monkeypatch.setattr(tempfile_module, "NamedTemporaryFile", denied)
        with pytest.warns(RuntimeWarning, match="grid cache write failed"):
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        # warned once only; later failures degrade silently
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        assert caught == []

    def test_distinct_failure_modes_each_warn_once(self, tmp_path, monkeypatch):
        # Regression: a single boolean guard let the first failure (a read)
        # permanently suppress warnings about later, differently-caused
        # failures (a write).  Warn-once is per (action, errno) category.
        import tempfile as tempfile_module
        import warnings as warnings_module

        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.path_for(cell).mkdir()  # read will fail with EISDIR

        def no_space(*args, **kwargs):
            raise OSError(28, "no space left on device")

        monkeypatch.setattr(tempfile_module, "NamedTemporaryFile", no_space)
        with pytest.warns(RuntimeWarning, match="grid cache read failed"):
            assert cache.get(cell) is None
        # the earlier read warning must not swallow the first write warning
        with pytest.warns(RuntimeWarning, match="grid cache write failed"):
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        # but each category fires exactly once
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            assert cache.get(cell) is None
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        assert caught == []

    def test_same_action_different_errno_warns_again(self, tmp_path, monkeypatch):
        # two write failures with different causes are different categories
        import tempfile as tempfile_module

        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})

        def denied(*args, **kwargs):
            raise PermissionError(13, "read-only cache dir")

        def no_space(*args, **kwargs):
            raise OSError(28, "no space left on device")

        monkeypatch.setattr(tempfile_module, "NamedTemporaryFile", denied)
        with pytest.warns(RuntimeWarning, match="read-only cache dir"):
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        monkeypatch.setattr(tempfile_module, "NamedTemporaryFile", no_space)
        with pytest.warns(RuntimeWarning, match="no space left"):
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None

    def test_run_grid_completes_with_failing_cache(self, tmp_path, monkeypatch):
        import tempfile as tempfile_module

        def denied(*args, **kwargs):
            raise PermissionError(13, "read-only cache dir")

        monkeypatch.setattr(tempfile_module, "NamedTemporaryFile", denied)
        cells = [
            GridCell(figure="f", runner="_test_echo", params={"value": v})
            for v in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="grid cache write failed"):
            result = run_grid(cells, cache=tmp_path)
        assert result.computed == 3
        assert [row["value"] for row in result.rows] == [0, 1, 2]

    def test_os_replace_failure_degrades_to_warning(self, tmp_path, monkeypatch):
        import os as os_module

        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})

        def denied(src, dst):
            raise PermissionError(13, "read-only cache dir")

        monkeypatch.setattr(os_module, "replace", denied)
        with pytest.warns(RuntimeWarning, match="grid cache write failed"):
            assert cache.put(cell, [{"value": 1}], elapsed=0.0) is None
        # the temp file was cleaned up
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unusable_cache_directory_raises_invalid_parameter(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(InvalidParameterError):
            GridCache(blocker / "cache")

    def test_entry_write_fsyncs_before_rename(self, tmp_path, monkeypatch):
        # the crash-atomicity claim requires the temp file's data to be on
        # disk before os.replace publishes it: without the fsync a power
        # loss can surface an empty or torn *renamed* entry
        import os as os_module

        events = []
        real_fsync, real_replace = os_module.fsync, os_module.replace
        monkeypatch.setattr(
            os_module, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os_module,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst))[1],
        )
        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.put(cell, [{"value": 1}], elapsed=0.0)
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")
        assert cache.get(cell) == [{"value": 1}]

    def test_stats_on_unreadable_directory_degrades_to_warning(
        self, tmp_path, monkeypatch
    ):
        # stats() must follow the documented warned-degrade contract, not
        # raise where get()/put() would have warned
        from pathlib import Path

        cache = GridCache(tmp_path)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache.put(cell, [{"value": 1}], elapsed=0.0)

        def denied(self, pattern):
            raise PermissionError(13, "unreadable cache dir")

        monkeypatch.setattr(Path, "glob", denied)
        with pytest.warns(RuntimeWarning, match="directory scan"):
            stats = cache.stats()
        assert stats["entries"] == 0
        # __len__ degrades the same way (warned once per instance already)
        assert len(cache) == 0

    def test_from_options_backend_dispatch(self, tmp_path):
        from repro.experiments.cellstore import SQLiteCellStore
        from repro.experiments.grid import CellStore

        assert CellStore.from_options(None) is None
        json_cache = CellStore.from_options(tmp_path / "j")
        assert isinstance(json_cache, GridCache)
        sqlite_cache = CellStore.from_options(tmp_path / "s", cache_backend="sqlite")
        assert isinstance(sqlite_cache, SQLiteCellStore)
        sqlite_cache.close()
        with pytest.raises(InvalidParameterError):
            CellStore.from_options(tmp_path, cache_backend="mongodb")

    def test_summary_shape(self, tmp_path):
        cells = [GridCell(figure="f", runner="_test_echo", params={"value": 1})]
        result = run_grid(cells, cache=tmp_path)
        summary = result.summary()
        assert summary["cells"] == 1
        assert summary["computed"] == 1
        assert summary["cell_timings"][0]["runner"] == "_test_echo"
        assert summary["cell_timings"][0]["source"] == "computed"


class TestGridCacheBounds:
    def _fill(self, cache, count, start=0):
        """Insert ``count`` distinct entries with strictly increasing mtimes."""
        import os
        import time

        cells = []
        for index in range(start, start + count):
            cell = GridCell(figure="f", runner="_test_echo", params={"value": index})
            path = cache.put(cell, [{"value": index}], elapsed=0.0)
            # entries created in the same clock tick get explicit mtimes so
            # "oldest" is well-defined on coarse-mtime filesystems
            stamp = time.time() - 1000 + index
            os.utime(path, (stamp, stamp))
            cells.append(cell)
        return cells

    def test_max_entries_evicts_oldest_first(self, tmp_path):
        cache = GridCache(tmp_path, max_entries=3)
        cells = self._fill(cache, 5)
        assert len(cache) == 3
        # the oldest two entries are gone, the newest three survive
        assert cache.get(cells[0]) is None
        assert cache.get(cells[1]) is None
        for cell in cells[2:]:
            assert cache.get(cell) == [{"value": cell.params["value"]}]
        assert cache.stats()["evicted"] == 2

    def test_newest_entry_never_evicted(self, tmp_path):
        cache = GridCache(tmp_path, max_entries=1)
        cells = self._fill(cache, 3)
        assert len(cache) == 1
        assert cache.get(cells[-1]) == [{"value": cells[-1].params["value"]}]

    def test_max_bytes_bound(self, tmp_path):
        cache = GridCache(tmp_path)
        probe = cache.put(
            GridCell(figure="f", runner="_test_echo", params={"value": -1}),
            [{"value": -1}],
            elapsed=0.0,
        )
        entry_size = probe.stat().st_size
        bounded = GridCache(tmp_path, max_bytes=3 * entry_size + 3 * 16)
        self._fill(bounded, 6)
        stats = bounded.stats()
        assert stats["total_bytes"] <= bounded.max_bytes
        assert stats["entries"] < 7

    def test_unbounded_cache_keeps_everything(self, tmp_path):
        cache = GridCache(tmp_path)
        self._fill(cache, 5)
        assert len(cache) == 5
        assert cache.stats()["evicted"] == 0

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            GridCache(tmp_path, max_entries=0)
        with pytest.raises(InvalidParameterError):
            GridCache(tmp_path, max_bytes=0)

    def test_stats_shape(self, tmp_path):
        cache = GridCache(tmp_path, max_entries=10, max_bytes=10**6)
        self._fill(cache, 2)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["max_entries"] == 10
        assert stats["max_bytes"] == 10**6
        assert stats["evicted"] == 0
        assert stats["directory"] == str(tmp_path)

    def test_eviction_unlink_failure_degrades_to_warning(self, tmp_path, monkeypatch):
        from pathlib import Path

        cache = GridCache(tmp_path, max_entries=1)
        self._fill(cache, 1)

        def failing_unlink(self):
            raise PermissionError("read-only")

        monkeypatch.setattr(Path, "unlink", failing_unlink)
        with pytest.warns(RuntimeWarning):
            self._fill(cache, 1, start=1)
        # both entries still present (eviction failed), but the run went on
        assert len(cache) == 2

    def test_repeatedly_read_entry_survives_eviction(self, tmp_path):
        # LRU, not FIFO-by-write-time: a get() refreshes the entry's
        # eviction clock, so the hottest entry must outlive a stale one
        # written after it
        cache = GridCache(tmp_path, max_entries=2)
        hot, stale = self._fill(cache, 2)  # hot is the OLDER write
        assert cache.get(hot) is not None  # the hit refreshes hot's mtime
        self._fill(cache, 1, start=2)  # a third entry forces one eviction
        assert cache.get(hot) == [{"value": hot.params["value"]}]
        assert cache.get(stale) is None

    def test_put_stat_failure_reseeds_both_estimates(self, tmp_path, monkeypatch):
        # when the fresh entry's size probe fails, put() must rescan instead
        # of bumping only the count estimate (which let the byte estimate
        # silently drift below reality)
        from pathlib import Path

        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        cache = GridCache(tmp_path, max_bytes=10**6)
        real_stat = Path.stat
        flaky = {"remaining": 1}

        def flaky_stat(self, **kwargs):
            result = real_stat(self, **kwargs)
            # fail only the post-write size probe (the file exists by then)
            if flaky["remaining"] and self.name == f"{cell.config_hash}.json":
                flaky["remaining"] -= 1
                raise OSError(5, "flaky stat")
            return result

        monkeypatch.setattr(Path, "stat", flaky_stat)
        path = cache.put(cell, [{"value": 1}], elapsed=0.0)
        assert path is not None
        assert cache._count_estimate == 1
        assert cache._bytes_estimate == real_stat(path).st_size

    def test_out_of_band_deletions_do_not_evict_spuriously(self, tmp_path):
        # entries deleted behind the cache's back leave the running
        # estimates overcounting; the authoritative rescan must correct
        # them instead of evicting entries that are not actually over-bound
        cache = GridCache(tmp_path, max_entries=4)
        cells = self._fill(cache, 3)
        cache.path_for(cells[0]).unlink()
        cache.path_for(cells[1]).unlink()
        self._fill(cache, 2, start=3)  # estimate crosses 4, reality is 3
        assert len(cache) == 3
        assert cache.stats()["evicted"] == 0
        assert cache._count_estimate == 3

    def test_overwrites_do_not_inflate_the_byte_estimate(self, tmp_path):
        cache = GridCache(tmp_path, max_bytes=10**6)
        cell = GridCell(figure="f", runner="_test_echo", params={"value": 1})
        for _ in range(20):
            path = cache.put(cell, [{"value": 1}], elapsed=0.0)
        # the running estimate tracks the single file, not 20x its size
        assert cache._bytes_estimate == path.stat().st_size

    def test_run_grid_with_bounded_cache(self, tmp_path):
        cache = GridCache(tmp_path, max_entries=2)
        cells = [
            GridCell(figure="f", runner="_test_echo", params={"value": v})
            for v in range(4)
        ]
        result = run_grid(cells, cache=cache)
        assert len(result.rows) == 4
        assert len(cache) <= 2
