"""Tests for experiment E1 (Fig. 1)."""

from repro.experiments.analytical_acc import FIG1_PROTOCOLS, FIG1_SIZES, run_analytical_acc
from repro.experiments.reporting import pivot_series


class TestFig1:
    def test_row_count(self):
        rows = run_analytical_acc(epsilons=[1.0, 5.0, 10.0])
        assert len(rows) == 2 * len(FIG1_PROTOCOLS) * 3

    def test_paper_parameters(self):
        assert FIG1_SIZES == (74, 7, 16)
        assert set(FIG1_PROTOCOLS) == {"GRR", "OLH", "SS", "SUE", "OUE"}

    def test_accuracies_are_percentages(self):
        rows = run_analytical_acc(epsilons=[1.0, 10.0])
        assert all(0.0 <= row["expected_acc_pct"] <= 100.0 for row in rows)

    def test_uniform_curves_dominate_non_uniform(self):
        rows = run_analytical_acc(epsilons=[2.0, 8.0])
        series = pivot_series(
            rows, x="epsilon", y="expected_acc_pct", series=["metric", "protocol"]
        )
        for protocol in FIG1_PROTOCOLS:
            uniform = dict(series[("uniform", protocol)])
            non_uniform = dict(series[("non-uniform", protocol)])
            for epsilon in (2.0, 8.0):
                assert uniform[epsilon] >= non_uniform[epsilon]

    def test_grr_dominates_oue_at_high_epsilon(self):
        rows = run_analytical_acc(epsilons=[9.0])
        values = {
            (row["protocol"], row["metric"]): row["expected_acc_pct"] for row in rows
        }
        assert values[("GRR", "uniform")] > values[("OUE", "uniform")]
        assert values[("SUE", "uniform")] > values[("OLH", "uniform")]
