"""Tests for the experiment reporting helpers."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.reporting import format_table, mean_rows, pivot_series, save_artifact


ROWS = [
    {"protocol": "GRR", "epsilon": 1.0, "acc": 10.0},
    {"protocol": "GRR", "epsilon": 2.0, "acc": 20.0},
    {"protocol": "OUE", "epsilon": 1.0, "acc": 5.0},
]


class TestFormatTable:
    def test_contains_header_and_rows(self):
        text = format_table(ROWS)
        assert "protocol" in text.splitlines()[0]
        assert "GRR" in text
        assert "OUE" in text
        assert len(text.splitlines()) == 2 + len(ROWS)

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_column_subset(self):
        text = format_table(ROWS, columns=["protocol"])
        assert "epsilon" not in text

    def test_small_values_use_scientific_notation(self):
        text = format_table([{"x": 1.5e-6}])
        assert "e-06" in text


class TestPivotSeries:
    def test_grouping_and_sorting(self):
        series = pivot_series(ROWS, x="epsilon", y="acc", series=["protocol"])
        assert set(series.keys()) == {("GRR",), ("OUE",)}
        assert series[("GRR",)] == [(1.0, 10.0), (2.0, 20.0)]

    def test_missing_column(self):
        with pytest.raises(InvalidParameterError):
            pivot_series(ROWS, x="missing", y="acc", series=["protocol"])

    def test_empty(self):
        assert pivot_series([], x="a", y="b", series=[]) == {}


class TestMeanRows:
    def test_averaging_over_repetitions(self):
        rows = [
            {"protocol": "GRR", "acc": 10.0},
            {"protocol": "GRR", "acc": 20.0},
            {"protocol": "OUE", "acc": 6.0},
        ]
        averaged = mean_rows(rows, group_by=["protocol"], value_columns=["acc"])
        by_protocol = {row["protocol"]: row["acc"] for row in averaged}
        assert by_protocol["GRR"] == pytest.approx(15.0)
        assert by_protocol["OUE"] == pytest.approx(6.0)


class TestSaveArtifact:
    def test_writes_rows_meta_and_table(self, tmp_path):
        directory = save_artifact(
            tmp_path, "fig2", ROWS, metadata={"grid": {"cells": 3}, "seed": 42}
        )
        assert directory == tmp_path / "fig2"
        rows = json.loads((directory / "rows.json").read_text())
        assert rows == ROWS
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["figure"] == "fig2"
        assert meta["n_rows"] == 3
        assert meta["grid"]["cells"] == 3
        table = (directory / "table.txt").read_text()
        assert "protocol" in table and "GRR" in table

    def test_overwrites_existing_artifact(self, tmp_path):
        save_artifact(tmp_path, "fig2", ROWS)
        directory = save_artifact(tmp_path, "fig2", ROWS[:1])
        assert json.loads((directory / "rows.json").read_text()) == ROWS[:1]

    def test_rejects_empty_figure(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            save_artifact(tmp_path, "  ", ROWS)
