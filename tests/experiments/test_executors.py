"""Executor-parity test suite (ISSUE 4, tentpole + satellite 1).

For scaled-down Fig. 2 and Fig. 5 plans, the three executors — serial,
process pool and sharded (including shards executed as *separate*
invocations and merged in shuffled order) — must produce byte-identical
rows; and resuming a half-completed sharded run must recompute only the
missing cells.
"""

import json
import random

import pytest

from repro.exceptions import GridExecutionError, InvalidParameterError, ShardMergeError
from repro.experiments.grid import (
    CellStore,
    Executor,
    GridCell,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadedExecutor,
    cell_runner,
    resolve_executor,
    run_grid,
)
from repro.experiments.reident_smp import plan_reidentification_smp
from repro.experiments.sharding import (
    SHARD_DB_NAME,
    ShardedExecutor,
    find_shard_artifacts,
    journal_artifacts,
    load_shard_artifact,
    merge_artifacts,
    plan_fingerprint,
    run_shard,
    shard_artifact_path,
    shard_positions,
    workspace_store,
    write_plan,
)
from repro.experiments.utility_rsrfd import plan_utility_rsrfd


def _canonical(rows: list[dict]) -> bytes:
    """Byte-level encoding of the rows (order-sensitive, full precision)."""
    return json.dumps(rows, sort_keys=True).encode("utf-8")


@cell_runner("_test_exec_echo")
def _exec_echo_cell(params, rng):
    return [{"value": params.get("value", 0), "draw": int(rng.integers(0, 10**9))}]


@cell_runner("_test_exec_boom")
def _exec_boom_cell(params, rng):
    raise RuntimeError("cell exploded")


@cell_runner("_test_exec_flaky")
def _exec_flaky_cell(params, rng):
    import os

    if not os.path.exists(params["marker"]):
        raise RuntimeError("flaky cell failed")
    return [{"value": "recovered"}]


def _echo_cells(count: int) -> list[GridCell]:
    return [
        GridCell(figure="f", runner="_test_exec_echo", params={"value": v}, master_seed=3)
        for v in range(count)
    ]


@pytest.fixture(scope="module")
def fig2_cells():
    """A scaled-down Fig. 2 grid (SMP re-identification on Adult)."""
    return plan_reidentification_smp(
        dataset_name="adult",
        n=250,
        protocols=("GRR", "OUE"),
        epsilons=(1.0, 8.0),
        num_surveys=3,
        top_ks=(1, 10),
        seed=123,
        figure="fig2",
    )


@pytest.fixture(scope="module")
def fig5_cells():
    """A scaled-down Fig. 5 grid (RS+RFD vs RS+FD utility on ACS)."""
    return plan_utility_rsrfd(
        dataset_name="acs_employment",
        n=300,
        protocols=("GRR", "OUE-r"),
        epsilons=(0.7, 1.9),
        prior_kinds=("correct",),
        seed=123,
        figure="fig5",
    )


@pytest.fixture(scope="module")
def fig2_serial_rows(fig2_cells):
    return run_grid(fig2_cells, executor=SerialExecutor()).rows


@pytest.fixture(scope="module")
def fig5_serial_rows(fig5_cells):
    return run_grid(fig5_cells, executor=SerialExecutor()).rows


class TestExecutorParity:
    def test_fig2_pool_matches_serial(self, fig2_cells, fig2_serial_rows):
        pool = run_grid(fig2_cells, executor=ProcessPoolExecutor(workers=4))
        assert _canonical(pool.rows) == _canonical(fig2_serial_rows)
        assert pool.rows  # non-degenerate

    def test_fig5_pool_matches_serial(self, fig5_cells, fig5_serial_rows):
        pool = run_grid(fig5_cells, executor=ProcessPoolExecutor(workers=4))
        assert _canonical(pool.rows) == _canonical(fig5_serial_rows)

    def test_fig2_threaded_matches_serial(self, fig2_cells, fig2_serial_rows):
        threaded = run_grid(fig2_cells, executor=ThreadedExecutor(workers=4))
        assert _canonical(threaded.rows) == _canonical(fig2_serial_rows)
        assert threaded.rows  # non-degenerate

    def test_fig5_threaded_matches_serial(self, fig5_cells, fig5_serial_rows):
        threaded = run_grid(fig5_cells, executor=ThreadedExecutor(workers=4))
        assert _canonical(threaded.rows) == _canonical(fig5_serial_rows)

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_fig2_sharded_invocations_merge_shuffled(
        self, fig2_cells, fig2_serial_rows, shards, tmp_path
    ):
        # each shard in its own invocation (the shard_worker code path) ...
        for shard_index in range(shards):
            run_shard(fig2_cells, shards, shard_index, tmp_path)
        artifacts = find_shard_artifacts(tmp_path, shards)
        assert len(artifacts) == shards
        # ... merged in shuffled order
        random.Random(shards).shuffle(artifacts)
        merged = merge_artifacts(fig2_cells, artifacts)
        assert _canonical(merged.rows) == _canonical(fig2_serial_rows)

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_fig5_sharded_invocations_merge_shuffled(
        self, fig5_cells, fig5_serial_rows, shards, tmp_path
    ):
        for shard_index in range(shards):
            run_shard(fig5_cells, shards, shard_index, tmp_path)
        artifacts = find_shard_artifacts(tmp_path, shards)
        random.Random(shards).shuffle(artifacts)
        merged = merge_artifacts(fig5_cells, artifacts)
        assert _canonical(merged.rows) == _canonical(fig5_serial_rows)

    def test_fig2_inline_sharded_executor(self, fig2_cells, fig2_serial_rows):
        sharded = run_grid(fig2_cells, executor=ShardedExecutor(2, launch="inline"))
        assert _canonical(sharded.rows) == _canonical(fig2_serial_rows)
        assert sharded.computed == len(fig2_cells)

    def test_fig2_subprocess_sharded_executor(self, fig2_cells, fig2_serial_rows):
        """The real thing: one shard_worker subprocess per shard."""
        sharded = run_grid(fig2_cells, executor=ShardedExecutor(2, launch="subprocess"))
        assert _canonical(sharded.rows) == _canonical(fig2_serial_rows)


class TestResume:
    def test_rerun_resumes_every_completed_cell(self, fig2_cells, tmp_path):
        first = run_shard(fig2_cells, 2, 0, tmp_path)
        assert first.computed == first.cells and first.resumed == 0
        again = run_shard(fig2_cells, 2, 0, tmp_path)
        assert again.computed == 0
        assert again.resumed == first.cells

    def test_half_completed_run_recomputes_only_missing_cells(
        self, fig2_cells, fig2_serial_rows, tmp_path
    ):
        run_shard(fig2_cells, 2, 0, tmp_path)
        # simulate an interruption: drop one completed cell from the artifact
        path = shard_artifact_path(tmp_path, 2, 0)
        artifact = json.loads(path.read_text())
        dropped = artifact["entries"].pop()
        path.write_text(json.dumps(artifact))
        resumed = run_shard(fig2_cells, 2, 0, tmp_path)
        assert resumed.computed == 1  # only the dropped cell
        assert resumed.resumed == resumed.cells - 1
        # the finished run still merges byte-identically
        run_shard(fig2_cells, 2, 1, tmp_path)
        merged = merge_artifacts(fig2_cells, find_shard_artifacts(tmp_path, 2))
        assert _canonical(merged.rows) == _canonical(fig2_serial_rows)
        restored = load_shard_artifact(path)
        hashes = {entry["config_hash"] for entry in restored["entries"]}
        assert dropped["config_hash"] in hashes

    def test_killed_invocation_persists_completed_cells_incrementally(self, tmp_path):
        """The partial artifact is rewritten per completed cell, so an
        invocation dying mid-shard keeps its work; the re-invocation then
        recomputes only the cell that never finished."""
        marker = tmp_path / "marker"
        cells = _echo_cells(3) + [
            GridCell(
                figure="f",
                runner="_test_exec_flaky",
                params={"marker": str(marker)},
                master_seed=3,
            )
        ]
        with pytest.raises(RuntimeError, match="flaky cell failed"):
            run_shard(cells, 1, 0, tmp_path)
        # the three echo cells completed before the crash and are journaled
        artifact_path = shard_artifact_path(tmp_path, 1, 0)
        journal = artifact_path.with_name(artifact_path.name + ".journal.jsonl")
        assert not artifact_path.exists()
        assert len(journal.read_text().strip().splitlines()) == 3
        marker.touch()
        second = run_shard(cells, 1, 0, tmp_path)
        assert second.resumed == 3
        assert second.computed == 1
        # the finished shard compacted the journal into the artifact
        assert not journal.exists()
        assert len(load_shard_artifact(artifact_path)["entries"]) == 4

    def test_torn_journal_lines_do_not_poison_later_records(self, tmp_path):
        """A crash mid-append leaves a torn, newline-less tail; the next
        invocation must recover the valid records and keep its own
        appends parseable."""
        cells = _echo_cells(4)
        run_shard(cells, 1, 0, tmp_path)
        artifact_path = shard_artifact_path(tmp_path, 1, 0)
        artifact = load_shard_artifact(artifact_path)
        journal = artifact_path.with_name(artifact_path.name + ".journal.jsonl")
        with open(journal, "w", encoding="utf-8") as handle:
            for entry in artifact["entries"][:2]:
                handle.write(
                    json.dumps({"plan_hash": artifact["plan_hash"], "entry": entry}) + "\n"
                )
            handle.write('{"plan_hash": "torn')  # crash mid-append, no newline
        artifact_path.unlink()
        resumed = run_shard(cells, 1, 0, tmp_path)
        assert resumed.resumed == 2
        assert resumed.computed == 2

    def test_bounded_cache_keeps_the_workspace(self, tmp_path):
        """A bounded cache may evict merged cells, so the per-plan workspace
        must survive as the resume state."""
        cells = _echo_cells(4)
        root = tmp_path / "shards"
        run_grid(
            cells,
            executor=ShardedExecutor(
                2,
                launch="inline",
                directory=root,
                cache_dir=tmp_path / "cache",
                cache_max_entries=1,
            ),
        )
        assert list(root.iterdir())  # workspace kept
        warm = run_grid(
            cells,
            executor=ShardedExecutor(2, launch="inline", directory=root),
        )
        assert warm.resumed == 4

    def test_resumed_sharded_executor_reports_resumed_cells(self, tmp_path):
        cells = _echo_cells(5)
        executor = ShardedExecutor(2, directory=tmp_path, launch="inline")
        cold = run_grid(cells, executor=executor)
        assert cold.computed == 5 and cold.resumed == 0
        warm = run_grid(cells, executor=ShardedExecutor(2, directory=tmp_path, launch="inline"))
        assert warm.resumed == 5 and warm.computed == 0
        assert _canonical(warm.rows) == _canonical(cold.rows)

    def test_shard_workers_share_the_cell_cache(self, tmp_path):
        """cache_dir hands every shard worker the shared GridCache, so a
        later non-sharded run is served from cache."""
        cells = _echo_cells(5)
        cache_dir = tmp_path / "cache"
        run_grid(
            cells,
            executor=ShardedExecutor(2, launch="inline", cache_dir=cache_dir),
        )
        warm = run_grid(cells, cache=cache_dir)
        assert warm.from_cache == 5 and warm.computed == 0

    def test_warm_cache_hits_reported_as_from_cache_in_sharded_summary(self, tmp_path):
        """Worker-side cache hits must surface as from_cache, not computed."""
        cells = _echo_cells(4)
        cache_dir = tmp_path / "cache"
        run_grid(cells, cache=cache_dir)  # warm every cell
        warm = run_grid(
            cells,
            executor=ShardedExecutor(
                2, launch="inline", directory=tmp_path / "shards", cache_dir=cache_dir
            ),
        )
        assert warm.from_cache == 4
        assert warm.computed == 0

    def test_successful_cached_run_prunes_its_workspace(self, tmp_path):
        """With a shared cache holding the results, the per-plan workspace
        is redundant and gets pruned; without one it is kept for resume."""
        cells = _echo_cells(3)
        root, cache_dir = tmp_path / "shards", tmp_path / "cache"
        run_grid(
            cells,
            executor=ShardedExecutor(
                2, launch="inline", directory=root, cache_dir=cache_dir
            ),
        )
        assert list(root.iterdir()) == []  # workspace pruned
        warm = run_grid(cells, cache=cache_dir)
        assert warm.from_cache == 3  # the cache took over the resume role

    def test_parent_and_workers_sharing_one_cache_is_coherent(self, tmp_path):
        """The CLI wiring: run_grid and the shard workers use the same cache
        directory (the parent skips its redundant puts)."""
        cells = _echo_cells(5)
        cache_dir = tmp_path / "cache"
        cold = run_grid(
            cells,
            cache=cache_dir,
            executor=ShardedExecutor(2, launch="inline", cache_dir=cache_dir),
        )
        assert cold.computed == 5
        warm = run_grid(cells, cache=cache_dir)
        assert warm.from_cache == 5 and warm.computed == 0
        assert _canonical(warm.rows) == _canonical(cold.rows)

    def test_interrupted_sharded_run_keeps_completed_work_in_the_cache(self, tmp_path):
        """Shard 1 fails, but shard 0's cells survive via the shared cache."""
        cells = _echo_cells(4) + [
            GridCell(figure="f", runner="_test_exec_boom", params={}, master_seed=3)
        ]
        cache_dir = tmp_path / "cache"
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_grid(
                cells,
                executor=ShardedExecutor(
                    2, launch="inline", directory=tmp_path / "shards", cache_dir=cache_dir
                ),
            )
        retry = run_grid(_echo_cells(4), cache=cache_dir)
        assert retry.from_cache > 0
        assert retry.from_cache + retry.computed == 4

    def test_persistent_directory_serves_many_plans(self, tmp_path):
        """One shard root can host different grids (benchmark sweeps): each
        plan gets its own fingerprint-named workspace instead of colliding."""
        first = run_grid(_echo_cells(4), executor=ShardedExecutor(2, directory=tmp_path, launch="inline"))
        second = run_grid(_echo_cells(6), executor=ShardedExecutor(2, directory=tmp_path, launch="inline"))
        assert first.computed == 4 and second.computed == 6
        # re-running the first plan resumes from its own workspace
        again = run_grid(_echo_cells(4), executor=ShardedExecutor(2, directory=tmp_path, launch="inline"))
        assert again.resumed == 4
        assert _canonical(again.rows) == _canonical(first.rows)

    def test_changed_pending_subset_does_not_collide(self, tmp_path):
        """Cache hits shrink the executor's pending set; the smaller plan
        must start a fresh workspace, not clash with the full-plan one."""
        cells = _echo_cells(6)
        executor = lambda: ShardedExecutor(2, directory=tmp_path / "shards", launch="inline")
        run_grid(cells, executor=executor())
        cache = tmp_path / "cache"
        run_grid(cells[:2], cache=cache)  # warm the cache for two cells
        warm = run_grid(cells, cache=cache, executor=executor())
        assert warm.from_cache == 2 and warm.computed == 4
        assert _canonical(warm.rows) == _canonical(run_grid(cells).rows)

    def test_no_resume_purges_stale_artifact_and_journal(self, tmp_path):
        """resume=False must discard old state so a crash mid-recompute
        cannot resurrect the rows the flag was meant to throw away."""
        cells = _echo_cells(3)
        run_shard(cells, 1, 0, tmp_path)
        artifact_path = shard_artifact_path(tmp_path, 1, 0)
        journal = artifact_path.with_name(artifact_path.name + ".journal.jsonl")
        journal.write_text("stale")
        forced = run_shard(cells, 1, 0, tmp_path, resume=False)
        assert forced.computed == 3 and forced.resumed == 0
        assert not journal.exists()

    def test_partial_artifact_of_other_plan_rejected(self, tmp_path):
        run_shard(_echo_cells(4), 2, 0, tmp_path)
        with pytest.raises(InvalidParameterError, match="different plan"):
            run_shard(_echo_cells(5), 2, 0, tmp_path)

    def test_plan_file_of_other_plan_rejected(self, tmp_path):
        write_plan(tmp_path, _echo_cells(4), shards=2)
        write_plan(tmp_path, _echo_cells(4), shards=2)  # idempotent
        with pytest.raises(InvalidParameterError, match="different plan"):
            write_plan(tmp_path, _echo_cells(5), shards=2)


class TestJournalKillSimulation:
    """Kill-simulation coverage of the JSONL journal's torn-tail recovery:
    a crashed invocation can leave a newline-less tail AND a corrupt
    mid-file line, and the resuming invocation must recover every valid
    record, heal the tail onto a fresh line, and keep its own appends
    parseable."""

    def _crashed_cells(self, marker):
        return _echo_cells(4) + [
            GridCell(
                figure="f",
                runner="_test_exec_flaky",
                params={"marker": str(marker)},
                master_seed=3,
            )
        ]

    def test_corrupt_midfile_line_and_torn_tail_recover_and_heal(self, tmp_path):
        marker = tmp_path / "marker"
        cells = self._crashed_cells(marker)
        with pytest.raises(RuntimeError, match="flaky cell failed"):
            run_shard(cells, 1, 0, tmp_path)
        artifact_path = shard_artifact_path(tmp_path, 1, 0)
        journal = artifact_path.with_name(artifact_path.name + ".journal.jsonl")
        records = journal.read_text().strip().splitlines()
        assert len(records) == 4

        # simulate a messier crash: records 0-2 intact, a corrupt line in
        # the middle, and record 3 torn mid-write with no trailing newline
        journal.write_text(
            records[0]
            + "\n"
            + '{"plan_hash": "corrupt-mid-file\n'
            + records[1]
            + "\n"
            + records[2]
            + "\n"
            + records[3][: len(records[3]) // 2]  # torn tail, no newline
        )

        # second crashed invocation: resumes the 3 valid records, recomputes
        # the torn one, journals it — and must first heal the torn tail
        with pytest.raises(RuntimeError, match="flaky cell failed"):
            run_shard(cells, 1, 0, tmp_path)
        content = journal.read_text()
        torn = records[3][: len(records[3]) // 2]
        assert torn + "\n" in content  # the tail was healed onto its own line
        parsed = []
        for line in content.splitlines():
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        # 3 resumed records re-read, plus the recomputed 4th on a clean line
        hashes = {record["entry"]["config_hash"] for record in parsed}
        assert len(hashes) == 4

        # the fixed invocation finishes from the healed journal alone
        marker.touch()
        final = run_shard(cells, 1, 0, tmp_path)
        assert final.resumed == 4
        assert final.computed == 1
        assert not journal.exists()
        assert len(load_shard_artifact(artifact_path)["entries"]) == 5

    def test_resumed_entries_match_the_original_rows(self, tmp_path):
        cells = _echo_cells(4)
        first = run_shard(cells, 1, 0, tmp_path)
        artifact_path = shard_artifact_path(tmp_path, 1, 0)
        original = load_shard_artifact(artifact_path)
        journal = artifact_path.with_name(artifact_path.name + ".journal.jsonl")
        # rebuild the journal as a crash would have left it (torn tail) and
        # drop the artifact: the journal is now the only resume state
        with open(journal, "w", encoding="utf-8") as handle:
            for entry in original["entries"]:
                handle.write(
                    json.dumps({"plan_hash": original["plan_hash"], "entry": entry})
                    + "\n"
                )
            handle.write('{"plan_hash": "torn')
        artifact_path.unlink()
        resumed = run_shard(cells, 1, 0, tmp_path)
        assert resumed.resumed == 4 and resumed.computed == 0
        restored = load_shard_artifact(artifact_path)
        assert _canonical(
            [entry["rows"] for entry in restored["entries"]]
        ) == _canonical([entry["rows"] for entry in original["entries"]])


class TestSqliteBackend:
    """The sqlite cell-store path of run_shard / ShardedExecutor: one
    WAL-mode workspace database replaces per-shard artifact files and JSONL
    journals, and resume state becomes a journal query."""

    def test_shards_journal_into_one_database(self, tmp_path):
        cells = _echo_cells(5)
        for shard_index in range(2):
            result = run_shard(
                cells, 2, shard_index, tmp_path, cache_backend="sqlite"
            )
            assert result.backend == "sqlite"
        assert (tmp_path / SHARD_DB_NAME).exists()
        assert find_shard_artifacts(tmp_path, 2) == []  # no artifact files
        store = workspace_store(tmp_path)
        artifacts = journal_artifacts(store, plan_fingerprint(cells), 2)
        store.close()
        merged = merge_artifacts(cells, artifacts, expected_shards=2)
        assert _canonical(merged.rows) == _canonical(run_grid(cells).rows)

    def test_rerun_resumes_from_the_journal(self, tmp_path):
        cells = _echo_cells(5)
        first = run_shard(cells, 2, 0, tmp_path, cache_backend="sqlite")
        assert first.computed == first.cells and first.resumed == 0
        again = run_shard(cells, 2, 0, tmp_path, cache_backend="sqlite")
        assert again.computed == 0
        assert again.resumed == first.cells

    def test_killed_invocation_keeps_journaled_cells(self, tmp_path):
        marker = tmp_path / "marker"
        cells = _echo_cells(3) + [
            GridCell(
                figure="f",
                runner="_test_exec_flaky",
                params={"marker": str(marker)},
                master_seed=3,
            )
        ]
        with pytest.raises(RuntimeError, match="flaky cell failed"):
            run_shard(cells, 1, 0, tmp_path, cache_backend="sqlite")
        store = workspace_store(tmp_path)
        journaled = store.journal_entries(plan_fingerprint(cells))
        store.close()
        assert len(journaled) == 3  # the echo cells committed per completion
        marker.touch()
        second = run_shard(cells, 1, 0, tmp_path, cache_backend="sqlite")
        assert second.resumed == 3
        assert second.computed == 1

    def test_no_resume_clears_only_this_shards_rows(self, tmp_path):
        cells = _echo_cells(6)
        run_shard(cells, 2, 0, tmp_path, cache_backend="sqlite")
        run_shard(cells, 2, 1, tmp_path, cache_backend="sqlite")
        forced = run_shard(
            cells, 2, 0, tmp_path, cache_backend="sqlite", resume=False
        )
        assert forced.computed == forced.cells and forced.resumed == 0
        # shard 1's journal rows survived the forced recompute of shard 0
        other = run_shard(cells, 2, 1, tmp_path, cache_backend="sqlite")
        assert other.resumed == other.cells

    def test_inline_sharded_executor_sqlite(self, tmp_path):
        cells = _echo_cells(5)
        result = run_grid(
            cells,
            executor=ShardedExecutor(
                2,
                launch="inline",
                directory=tmp_path / "shards",
                cache_dir=tmp_path / "cache",
                cache_backend="sqlite",
            ),
        )
        assert _canonical(result.rows) == _canonical(run_grid(cells).rows)
        # the shared sqlite cache serves a later non-sharded run
        warm = run_grid(
            cells,
            cache=CellStore.from_options(tmp_path / "cache", cache_backend="sqlite"),
        )
        assert warm.from_cache == 5 and warm.computed == 0


class TestBackendParity:
    """json and sqlite cell stores must be an implementation detail: the
    fig2-quick rows are byte-identical across backends for serial, pool-4
    and 2-shard execution, cold and warm."""

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_fig2_serial_cold_and_warm(
        self, backend, fig2_cells, fig2_serial_rows, tmp_path
    ):
        cache = CellStore.from_options(tmp_path / "cache", cache_backend=backend)
        cold = run_grid(fig2_cells, executor=SerialExecutor(), cache=cache)
        warm = run_grid(fig2_cells, executor=SerialExecutor(), cache=cache)
        assert warm.from_cache == len(fig2_cells)
        assert _canonical(cold.rows) == _canonical(fig2_serial_rows)
        assert _canonical(warm.rows) == _canonical(fig2_serial_rows)

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_fig2_pool4(self, backend, fig2_cells, fig2_serial_rows, tmp_path):
        cache = CellStore.from_options(tmp_path / "cache", cache_backend=backend)
        pool = run_grid(
            fig2_cells, executor=ProcessPoolExecutor(workers=4), cache=cache
        )
        assert _canonical(pool.rows) == _canonical(fig2_serial_rows)

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_fig2_two_shards(self, backend, fig2_cells, fig2_serial_rows, tmp_path):
        sharded = run_grid(
            fig2_cells,
            executor=ShardedExecutor(
                2,
                launch="inline",
                directory=tmp_path / "shards",
                cache_backend=backend,
            ),
        )
        assert _canonical(sharded.rows) == _canonical(fig2_serial_rows)


class TestExecutorSeam:
    def test_shard_positions_partition_the_plan(self):
        positions = [shard_positions(10, 3, index) for index in range(3)]
        assert sorted(p for chunk in positions for p in chunk) == list(range(10))

    def test_cached_cells_never_reach_the_executor(self, tmp_path):
        cells = _echo_cells(4)
        run_grid(cells, cache=tmp_path / "cache")

        class CountingExecutor(SerialExecutor):
            seen = 0

            def execute(self, tasks, record):
                CountingExecutor.seen += len(tasks)
                super().execute(tasks, record)

        warm = run_grid(cells, cache=tmp_path / "cache", executor=CountingExecutor())
        assert CountingExecutor.seen == 0
        assert warm.from_cache == 4

    def test_executor_dropping_cells_raises(self):
        class LossyExecutor(Executor):
            def execute(self, tasks, record):
                pass  # records nothing

        with pytest.raises(GridExecutionError, match="without results"):
            run_grid(_echo_cells(3), executor=LossyExecutor())

    def test_resolve_executor_choices(self):
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        pool = resolve_executor(None, 6)
        assert isinstance(pool, ProcessPoolExecutor) and pool.workers == 6
        explicit = SerialExecutor()
        assert resolve_executor(explicit, 8) is explicit

    def test_resolve_executor_rejects_non_executor(self):
        with pytest.raises(InvalidParameterError):
            run_grid([], executor="serial")

    def test_threaded_executor_keeps_draining_on_cell_failure(self, tmp_path):
        """Surviving cells are still recorded (cached) before the error."""
        cells = _echo_cells(4) + [
            GridCell(figure="f", runner="_test_exec_boom", params={}, master_seed=3)
        ]
        cache_dir = tmp_path / "cache"
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_grid(cells, executor=ThreadedExecutor(workers=3), cache=cache_dir)
        retry = run_grid(_echo_cells(4), cache=cache_dir)
        assert retry.from_cache == 4 and retry.computed == 0

    def test_threaded_executor_single_worker_falls_back_to_serial(self):
        result = run_grid(_echo_cells(3), executor=ThreadedExecutor(workers=1))
        assert _canonical(result.rows) == _canonical(
            run_grid(_echo_cells(3), executor=SerialExecutor()).rows
        )

    def test_invalid_executor_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProcessPoolExecutor(workers=0)
        with pytest.raises(InvalidParameterError):
            ThreadedExecutor(workers=0)
        with pytest.raises(InvalidParameterError):
            ShardedExecutor(0)
        with pytest.raises(InvalidParameterError):
            ShardedExecutor(2, launch="carrier-pigeon")
        with pytest.raises(InvalidParameterError):
            ShardedExecutor(2, workers=0)

    def test_summary_reports_executor_name(self):
        result = run_grid(_echo_cells(2), executor=SerialExecutor())
        assert result.summary()["executor"] == "SerialExecutor"
        assert result.summary()["resumed"] == 0
