"""Tests for the experiment configuration presets."""

import math

from repro.experiments.config import (
    FULL,
    PAPER_EPSILONS,
    PIE_BETAS,
    QUICK,
    SMOKE,
    UTILITY_EPSILONS,
    ExperimentConfig,
)


class TestGrids:
    def test_paper_epsilons(self):
        assert PAPER_EPSILONS == tuple(float(e) for e in range(1, 11))

    def test_utility_epsilons_are_logs(self):
        assert UTILITY_EPSILONS[0] == math.log(2)
        assert UTILITY_EPSILONS[-1] == math.log(7)
        assert len(UTILITY_EPSILONS) == 6

    def test_pie_betas_descend_from_095_to_05(self):
        assert PIE_BETAS[0] == 0.95
        assert PIE_BETAS[-1] == 0.5
        assert list(PIE_BETAS) == sorted(PIE_BETAS, reverse=True)


class TestPresets:
    def test_quick_is_smaller_than_full(self):
        assert QUICK.n is not None and QUICK.n <= 5000
        assert FULL.n is None
        assert FULL.runs >= QUICK.runs

    def test_smoke_is_tiny(self):
        assert SMOKE.n <= 1000
        assert len(SMOKE.epsilons) <= 3

    def test_config_is_frozen(self):
        config = ExperimentConfig()
        try:
            config.n = 10
        except AttributeError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("ExperimentConfig should be immutable")

    def test_full_matches_paper_settings(self):
        assert FULL.runs == 20
        assert FULL.epsilons == PAPER_EPSILONS
        assert FULL.num_surveys == 5
        assert FULL.top_ks == (1, 10)
