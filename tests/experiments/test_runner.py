"""Tests for the experiment registry and CLI."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.runner import available_experiments, main, run_experiment


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        expected = {f"fig{i}" for i in (1, 2, 3, 4, 5, 6)} | {
            f"fig{i}" for i in range(9, 18)
        }
        assert set(available_experiments()) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig99")

    def test_fig1_runs_and_returns_rows(self):
        rows = run_experiment("fig1", quick=True)
        assert rows
        assert {"protocol", "epsilon", "expected_acc_pct"} <= set(rows[0])


class TestCli:
    def test_main_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        output = capsys.readouterr().out
        assert "protocol" in output
        assert "GRR" in output

    def test_main_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
