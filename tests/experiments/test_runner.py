"""Tests for the experiment registry and CLI."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.runner import available_experiments, main, run_experiment


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        expected = {f"fig{i}" for i in (1, 2, 3, 4, 5, 6)} | {
            f"fig{i}" for i in range(9, 18)
        }
        assert set(available_experiments()) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig99")

    def test_unknown_experiment_error_lists_valid_figures(self):
        """The error message must name every valid figure id."""
        with pytest.raises(InvalidParameterError) as excinfo:
            run_experiment("fig99")
        message = str(excinfo.value)
        assert "fig99" in message
        for figure in available_experiments():
            assert figure in message

    def test_fig1_runs_and_returns_rows(self):
        rows = run_experiment("fig1", quick=True)
        assert rows
        assert {"protocol", "epsilon", "expected_acc_pct"} <= set(rows[0])

    def test_fig1_parallel_matches_sequential(self):
        sequential = run_experiment("fig1", quick=True, workers=1)
        parallel = run_experiment("fig1", quick=True, workers=2)
        assert sequential == parallel

    def test_grid_info_reports_cells(self):
        info = {}
        run_experiment("fig1", quick=True, grid_info=info)
        assert info["cells"] == 10  # 2 metrics x 5 protocols
        assert info["computed"] == 10
        assert info["from_cache"] == 0


class TestCli:
    def test_main_prints_table(self, capsys):
        assert main(["fig1", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "protocol" in output
        assert "GRR" in output

    def test_main_rejects_unknown_figure_with_nonzero_exit(self, capsys):
        """An unknown figure exits non-zero and lists the valid ids on stderr."""
        assert main(["fig99", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        for figure in ("fig1", "fig2", "fig17"):
            assert figure in err

    def test_main_uses_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        entries = list(cache_dir.glob("*.json"))
        assert len(entries) == 10
        # warm rerun is served entirely from the cache and prints the same table
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_main_writes_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["fig1", "--no-cache", "--out", str(out_dir), "--workers", "2"]) == 0
        capsys.readouterr()
        figure_dir = out_dir / "fig1"
        rows = json.loads((figure_dir / "rows.json").read_text())
        meta = json.loads((figure_dir / "meta.json").read_text())
        assert rows and rows[0]["protocol"]
        assert meta["figure"] == "fig1"
        assert meta["grid"]["cells"] == 10
        assert meta["grid"]["workers"] == 2
        assert (figure_dir / "table.txt").read_text().startswith("figure")

    def test_main_rejects_quick_and_full_together(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--quick", "--full"])

    def test_main_rejects_cache_dir_that_is_a_file(self, tmp_path, capsys):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        assert main(["fig1", "--cache-dir", str(not_a_dir)]) == 2
        assert "not usable" in capsys.readouterr().err
