"""Tests for the experiment registry and CLI."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.grid import SerialExecutor
from repro.experiments.runner import (
    available_experiments,
    figure_spec,
    main,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        expected = {f"fig{i}" for i in (1, 2, 3, 4, 5, 6)} | {
            f"fig{i}" for i in range(9, 18)
        }
        assert set(available_experiments()) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig99")

    def test_unknown_experiment_error_lists_valid_figures(self):
        """The error message must name every valid figure id."""
        with pytest.raises(InvalidParameterError) as excinfo:
            run_experiment("fig99")
        message = str(excinfo.value)
        assert "fig99" in message
        for figure in available_experiments():
            assert figure in message

    def test_fig1_runs_and_returns_rows(self):
        rows = run_experiment("fig1", quick=True)
        assert rows
        assert {"protocol", "epsilon", "expected_acc_pct"} <= set(rows[0])

    def test_fig1_parallel_matches_sequential(self):
        sequential = run_experiment("fig1", quick=True, workers=1)
        parallel = run_experiment("fig1", quick=True, workers=2)
        assert sequential == parallel

    def test_grid_info_reports_cells(self):
        info = {}
        run_experiment("fig1", quick=True, grid_info=info)
        assert info["cells"] == 10  # 2 metrics x 5 protocols
        assert info["computed"] == 10
        assert info["from_cache"] == 0
        assert info["executor"] == "SerialExecutor"

    def test_explicit_executor_matches_default(self):
        default = run_experiment("fig1", quick=True)
        explicit = run_experiment("fig1", quick=True, executor=SerialExecutor())
        assert default == explicit

    def test_figure_spec_plan_and_postprocess_compose(self):
        """run_experiment is exactly plan -> run_grid -> postprocess."""
        from repro.experiments.grid import run_grid

        spec = figure_spec("fig1", quick=True)
        cells = spec.plan(None)
        assert len(cells) == 10
        rows = spec.postprocess(run_grid(cells).rows)
        assert rows == run_experiment("fig1", quick=True)

    def test_figure_spec_rejects_unknown_figure(self):
        with pytest.raises(InvalidParameterError):
            figure_spec("fig99")


class TestCli:
    def test_main_prints_table(self, capsys):
        assert main(["fig1", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "protocol" in output
        assert "GRR" in output

    def test_main_rejects_unknown_figure_with_nonzero_exit(self, capsys):
        """An unknown figure exits non-zero and lists the valid ids on stderr."""
        assert main(["fig99", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        for figure in ("fig1", "fig2", "fig17"):
            assert figure in err

    def test_main_uses_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        entries = list(cache_dir.glob("*.json"))
        assert len(entries) == 10
        # warm rerun is served entirely from the cache and prints the same table
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_main_writes_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["fig1", "--no-cache", "--out", str(out_dir), "--workers", "2"]) == 0
        capsys.readouterr()
        figure_dir = out_dir / "fig1"
        rows = json.loads((figure_dir / "rows.json").read_text())
        meta = json.loads((figure_dir / "meta.json").read_text())
        assert rows and rows[0]["protocol"]
        assert meta["figure"] == "fig1"
        assert meta["grid"]["cells"] == 10
        assert meta["grid"]["workers"] == 2
        assert (figure_dir / "table.txt").read_text().startswith("figure")

    def test_main_rejects_quick_and_full_together(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--quick", "--full"])

    def test_main_rejects_cache_dir_that_is_a_file(self, tmp_path, capsys):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        assert main(["fig1", "--cache-dir", str(not_a_dir)]) == 2
        assert "not usable" in capsys.readouterr().err


class TestCliCacheBounds:
    def test_cache_max_entries_caps_the_cache_dir_during_a_sweep(
        self, tmp_path, capsys
    ):
        """fig1 computes 10 cells; the bounded cache keeps at most 4 files."""
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir), "--cache-max-entries", "4"]) == 0
        capsys.readouterr()
        assert len(list(cache_dir.glob("*.json"))) <= 4

    def test_cache_max_bytes_caps_the_cache_dir_during_a_sweep(self, tmp_path, capsys):
        unbounded = tmp_path / "unbounded"
        assert main(["fig1", "--cache-dir", str(unbounded)]) == 0
        capsys.readouterr()
        total = sum(path.stat().st_size for path in unbounded.glob("*.json"))
        budget = total // 3
        bounded = tmp_path / "bounded"
        assert main(["fig1", "--cache-dir", str(bounded), "--cache-max-bytes", str(budget)]) == 0
        capsys.readouterr()
        assert sum(path.stat().st_size for path in bounded.glob("*.json")) <= budget

    def test_cache_bounds_hold_under_sharded_execution(self, tmp_path, capsys):
        """Shard workers receive the bounds too, so --shards N cannot
        overflow a bounded cache."""
        cache_dir = tmp_path / "cache"
        code = main(
            ["fig1", "--cache-dir", str(cache_dir), "--cache-max-entries", "4",
             "--shards", "2", "--shard-dir", str(tmp_path / "shards")]
        )
        assert code == 0
        capsys.readouterr()
        assert len(list(cache_dir.glob("*.json"))) <= 4

    def test_invalid_bound_exits_2(self, tmp_path, capsys):
        # rejected by argparse before any run state is touched
        cache_dir = tmp_path / "cache"
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--cache-dir", str(cache_dir), "--cache-max-entries", "0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cache-max-entries" in err
        assert "positive integer" in err


class TestCliArgumentValidation:
    """Bad numeric flags fail at parse time: exit 2, naming flag and value."""

    @pytest.mark.parametrize(
        ("flag", "value", "expected"),
        [
            ("--workers", "0", "positive integer"),
            ("--workers", "-2", "positive integer"),
            ("--shards", "0", "positive integer"),
            ("--shard-index", "-1", "non-negative integer"),
            ("--lease-timeout", "0", "positive number"),
            ("--cache-max-entries", "banana", "positive integer"),
        ],
    )
    def test_invalid_values_exit_2_naming_the_flag(
        self, capsys, flag, value, expected
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err
        assert expected in err
        assert value in err

    def test_max_retries_rejects_negatives_but_allows_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--max-retries", "-1"])
        assert excinfo.value.code == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_bad_listen_address_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--remote-listen", "nonsense"])
        assert excinfo.value.code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_remote_conflicts_with_sharding(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--remote-workers", "2", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_remote_conflicts_with_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--remote-workers", "2", "--workers", "2"])
        assert excinfo.value.code == 2
        assert "--remote-workers" in capsys.readouterr().err

    def test_remote_tuning_flags_require_remote_mode(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--lease-timeout", "5"])
        assert excinfo.value.code == 2
        assert "--remote-listen or --remote-workers" in capsys.readouterr().err


class TestCliKernelsAndExecutor:
    """--kernel-backend / --executor: parse-time validation and parity."""

    def test_unknown_kernel_backend_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--kernel-backend", "cuda"])
        assert excinfo.value.code == 2
        assert "--kernel-backend" in capsys.readouterr().err

    def test_numba_backend_without_numba_is_a_clear_error(self, capsys):
        from repro.kernels import numba_available

        if numba_available():
            pytest.skip("numba installed: the explicit request succeeds")
        assert main(["fig1", "--no-cache", "--kernel-backend", "numba"]) == 2
        assert "numba is not importable" in capsys.readouterr().err

    def test_bogus_backend_env_var_exits_2(self, capsys, monkeypatch):
        from repro.kernels import KERNEL_BACKEND_ENV

        monkeypatch.setenv(KERNEL_BACKEND_ENV, "bogus")
        assert main(["fig1", "--no-cache"]) == 2
        assert "unknown kernel backend" in capsys.readouterr().err

    def test_serial_executor_conflicts_with_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--executor", "serial", "--workers", "2"])
        assert excinfo.value.code == 2
        assert "--executor serial" in capsys.readouterr().err

    def test_executor_conflicts_with_sharding(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--executor", "thread", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "--executor" in capsys.readouterr().err

    def test_executor_conflicts_with_remote_mode(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--executor", "thread", "--remote-workers", "2"])
        assert excinfo.value.code == 2
        assert "remote execution" in capsys.readouterr().err

    def test_threaded_cli_artifact_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial"
        assert main(
            ["fig1", "--no-cache", "--executor", "serial", "--out", str(serial_out)]
        ) == 0
        threaded_out = tmp_path / "threaded"
        assert main(
            ["fig1", "--no-cache", "--executor", "thread", "--workers", "3",
             "--kernel-backend", "auto", "--out", str(threaded_out)]
        ) == 0
        capsys.readouterr()
        assert (threaded_out / "fig1" / "rows.json").read_bytes() == (
            serial_out / "fig1" / "rows.json"
        ).read_bytes()
        meta = json.loads((threaded_out / "fig1" / "meta.json").read_text())
        assert meta["kernel_backend"] in ("numpy", "numba")
        assert meta["grid"]["executor"] == "ThreadedExecutor"


class TestCliRemote:
    def test_remote_workers_artifact_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial"
        assert main(["fig1", "--no-cache", "--out", str(serial_out)]) == 0
        capsys.readouterr()
        remote_out = tmp_path / "remote"
        event_log = tmp_path / "events.jsonl"
        code = main(
            ["fig1", "--no-cache", "--remote-workers", "2",
             "--out", str(remote_out), "--remote-log", str(event_log)]
        )
        capsys.readouterr()
        assert code == 0
        assert (remote_out / "fig1" / "rows.json").read_bytes() == (
            serial_out / "fig1" / "rows.json"
        ).read_bytes()
        lines = [json.loads(line) for line in event_log.read_text().splitlines()]
        assert lines[-1]["event"] == "summary"
        assert {"worker_spawned", "lease_granted", "cell_completed"} <= {
            line["event"] for line in lines
        }


class TestCliCellStore:
    """--cache-backend, the run ledger and the figure-less maintenance
    commands (--migrate-cache / --show-runs)."""

    def test_sqlite_backend_round_trip_matches_json(self, tmp_path, capsys):
        json_dir = tmp_path / "json-cache"
        assert main(["fig1", "--cache-dir", str(json_dir)]) == 0
        reference = capsys.readouterr().out
        cache_dir = tmp_path / "sqlite-cache"
        args = ["fig1", "--cache-dir", str(cache_dir), "--cache-backend", "sqlite"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert cold == reference
        assert (cache_dir / "cells.sqlite").exists()
        assert list(cache_dir.glob("*.json")) == []  # no per-cell files
        # warm rerun is served from the database
        assert main(args) == 0
        assert capsys.readouterr().out == cold

    def test_sqlite_backend_records_run_ledger(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir),
                     "--cache-backend", "sqlite"]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "--show-runs"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 1
        entry = lines[0]
        assert entry["kind"] == "run_grid"
        assert entry["figure"] == "fig1"
        assert entry["summary"]["cells"] == 10

    def test_sqlite_sharded_invocations_merge_identically(self, tmp_path, capsys):
        reference = tmp_path / "reference"
        assert main(["fig1", "--no-cache", "--out", str(reference)]) == 0
        capsys.readouterr()
        shard_dir = tmp_path / "shards"
        cache_dir = tmp_path / "cache"
        common = ["fig1", "--cache-dir", str(cache_dir),
                  "--cache-backend", "sqlite", "--shards", "2",
                  "--shard-dir", str(shard_dir)]
        for index in ("0", "1"):
            assert main(common + ["--shard-index", index]) == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["backend"] == "sqlite"
        merged = tmp_path / "merged"
        assert main(common + ["--merge-shards", "--out", str(merged)]) == 0
        capsys.readouterr()
        assert (merged / "fig1" / "rows.json").read_bytes() == (
            reference / "fig1" / "rows.json"
        ).read_bytes()
        meta = json.loads((merged / "fig1" / "meta.json").read_text())
        assert meta["cache_backend"] == "sqlite"
        # the ledger saw both shard runs and the merge
        assert main(["--cache-dir", str(cache_dir), "--show-runs"]) == 0
        kinds = [json.loads(line)["kind"]
                 for line in capsys.readouterr().out.splitlines()]
        assert kinds.count("run_shard") == 2
        assert kinds.count("merge_shards") == 1

    def test_migrate_cache_imports_json_entries(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert len(list(cache_dir.glob("*.json"))) == 10
        assert main(["--cache-dir", str(cache_dir), "--migrate-cache"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["imported"] == 10
        assert summary["skipped"] == 0
        # the migrated store now serves a warm sqlite run
        assert main(["fig1", "--cache-dir", str(cache_dir),
                     "--cache-backend", "sqlite"]) == 0
        capsys.readouterr()

    def test_migrate_cache_is_idempotent(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "--migrate-cache"]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "--migrate-cache"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["imported"] == 0
        assert summary["already_present"] == 10

    def test_show_runs_limit(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        for _ in range(3):
            assert main(["fig1", "--cache-dir", str(cache_dir),
                         "--cache-backend", "sqlite"]) == 0
            capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "--show-runs", "2"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_invalid_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--cache-backend", "mongodb"])

    def test_figure_required_without_maintenance_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["--no-cache"])

    def test_maintenance_flags_reject_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--migrate-cache"])

    def test_maintenance_flags_reject_no_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["--no-cache", "--migrate-cache"])

    def test_maintenance_flags_reject_sharding_flags(self, capsys):
        for extra in (["--merge-shards"], ["--shard-index", "0"],
                      ["--shard-dir", "workdir"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["--show-runs", *extra])
            assert excinfo.value.code == 2
            assert "sharding" in capsys.readouterr().err

    def test_maintenance_flags_reject_out(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--migrate-cache", "--out", str(tmp_path / "figs")])
        assert excinfo.value.code == 2
        assert "--out" in capsys.readouterr().err

    def test_maintenance_flags_reject_json_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--show-runs", "--cache-backend", "json"])
        assert excinfo.value.code == 2
        assert "SQLite" in capsys.readouterr().err

    def test_maintenance_flags_accept_explicit_sqlite_backend(
        self, tmp_path, capsys
    ):
        # redundant but consistent: maintenance targets the sqlite store anyway
        cache_dir = tmp_path / "cache"
        assert main(["fig1", "--cache-dir", str(cache_dir),
                     "--cache-backend", "sqlite"]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(cache_dir), "--cache-backend", "sqlite",
                     "--show-runs"]) == 0

    def test_no_cache_rejects_cache_bounds(self, capsys):
        for bound in (["--cache-max-entries", "4"],
                      ["--cache-max-bytes", "1024"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["fig1", "--no-cache", *bound])
            assert excinfo.value.code == 2
            assert "--no-cache" in capsys.readouterr().err

    def test_maintenance_on_unusable_cache_dir_exits_2(self, tmp_path, capsys):
        occupied = tmp_path / "occupied"
        occupied.write_text("")
        assert main(["--cache-dir", str(occupied), "--show-runs"]) == 2
        assert "error" in capsys.readouterr().err


class TestCliSharding:
    def _rows(self, out_dir, figure="fig1"):
        return (out_dir / figure / "rows.json").read_bytes()

    def test_shard_invocations_merge_into_identical_artifact(self, tmp_path, capsys):
        reference = tmp_path / "reference"
        assert main(["fig1", "--no-cache", "--out", str(reference)]) == 0
        capsys.readouterr()
        shard_dir = tmp_path / "shards"
        for index in ("0", "1"):
            code = main(
                ["fig1", "--no-cache", "--shards", "2", "--shard-index", index,
                 "--shard-dir", str(shard_dir)]
            )
            assert code == 0
            summary = json.loads(capsys.readouterr().out)
            assert summary["shards"] == 2
            assert summary["computed"] == summary["cells"]
        merged = tmp_path / "merged"
        code = main(
            ["fig1", "--no-cache", "--shards", "2", "--merge-shards",
             "--shard-dir", str(shard_dir), "--out", str(merged)]
        )
        assert code == 0
        capsys.readouterr()
        assert self._rows(merged) == self._rows(reference)
        meta = json.loads((merged / "fig1" / "meta.json").read_text())
        assert meta["grid"]["cells"] == 10
        assert meta["grid"]["missing"] == 0

    def test_shard_reinvocation_resumes(self, tmp_path, capsys):
        shard_dir = tmp_path / "shards"
        args = ["fig1", "--no-cache", "--shards", "2", "--shard-index", "0",
                "--shard-dir", str(shard_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["computed"] == 0
        assert summary["resumed"] == summary["cells"]

    def test_single_invocation_sharded_executor(self, tmp_path, capsys):
        reference = tmp_path / "reference"
        assert main(["fig1", "--no-cache", "--out", str(reference)]) == 0
        capsys.readouterr()
        sharded = tmp_path / "sharded"
        assert main(["fig1", "--no-cache", "--shards", "2", "--shard-dir",
                     str(tmp_path / "parts"), "--out", str(sharded)]) == 0
        capsys.readouterr()
        assert self._rows(sharded) == self._rows(reference)

    def test_merge_with_missing_shard_exits_2_naming_cells(self, tmp_path, capsys):
        shard_dir = tmp_path / "shards"
        assert main(["fig1", "--no-cache", "--shards", "2", "--shard-index", "0",
                     "--shard-dir", str(shard_dir)]) == 0
        capsys.readouterr()
        assert main(["fig1", "--no-cache", "--shards", "2", "--merge-shards",
                     "--shard-dir", str(shard_dir)]) == 2
        err = capsys.readouterr().err
        assert "absent" in err
        assert "analytical_acc" in err

    def test_shard_index_requires_shards(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--shard-index", "0"])

    def test_shard_index_conflicts_with_merge(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--shards", "2", "--shard-index", "0", "--merge-shards"])

    def test_shard_index_rejects_out(self, capsys):
        """--out would be silently ignored on a single-shard invocation."""
        with pytest.raises(SystemExit):
            main(["fig1", "--shards", "2", "--shard-index", "0", "--out", "x"])

    def test_out_of_range_shard_index_exits_2(self, tmp_path, capsys):
        assert main(["fig1", "--no-cache", "--shards", "2", "--shard-index", "5",
                     "--shard-dir", str(tmp_path)]) == 2
        assert "shard_index" in capsys.readouterr().err


class TestCliService:
    """The figure-less --serve / --snapshot collection-service paths."""

    @pytest.mark.parametrize(
        "argv",
        (
            ["--serve", "127.0.0.1:0"],  # no --attribute
            ["--serve", "127.0.0.1:0", "--snapshot", "http://h:1"],
            ["fig1", "--serve", "127.0.0.1:0", "--attribute", "a:GRR:4:1.0"],
            ["--serve", "127.0.0.1:0", "--attribute", "a:GRR:4:1.0",
             "--shards", "2"],
            ["--serve", "127.0.0.1:0", "--attribute", "a:GRR:4:1.0",
             "--remote-workers", "1"],
            ["--serve", "127.0.0.1:0", "--attribute", "a:GRR:4:1.0",
             "--migrate-cache"],
            ["--serve", "127.0.0.1:0", "--attribute", "a:GRR:4:1.0",
             "--out", "x"],
            ["--window", "tumbling:5"],  # server knobs without --serve
            ["--attribute", "a:GRR:4:1.0"],
            ["--queue-size", "4"],
            ["--snapshot", "http://h:1", "--window", "tumbling:5"],
            ["--snapshot", "http://h:1", "--queue-size", "4"],
        ),
    )
    def test_service_flag_conflicts_exit_2(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_serve_starts_registers_and_stops(self, capsys):
        from repro.experiments.runner import _service_main, build_parser
        from repro.service.client import CollectionClient

        args = build_parser().parse_args(
            ["--serve", "127.0.0.1:0",
             "--attribute", "age:GRR:8:1.0",
             "--attribute", "city:OUE:4:2.0",
             "--window", "sliding:60x4", "--queue-size", "8"]
        )
        probed = {}

        def probe():
            # runs while the service is live; the URL was printed already
            url = capsys.readouterr().out.strip().split()[-1]
            client = CollectionClient(url)
            probed.update(client.stats()["attributes"])

        assert _service_main(args, stop=probe) == 0
        assert sorted(probed) == ["age", "city"]
        assert probed["age"]["window"] == "sliding:60x4"

    def test_serve_rejects_bad_attribute_spec(self, capsys):
        from repro.experiments.runner import _service_main, build_parser

        args = build_parser().parse_args(
            ["--serve", "127.0.0.1:0", "--attribute", "nope"]
        )
        assert _service_main(args, stop=lambda: None) == 2
        assert "NAME:PROTOCOL:K:EPSILON" in capsys.readouterr().err

    def test_snapshot_prints_estimates_as_json_lines(self, capsys):
        from repro.experiments.runner import _service_main, build_parser
        from repro.service.client import CollectionClient
        from repro.service.server import CollectionService

        service = CollectionService()
        service.start()
        try:
            client = CollectionClient(service.url)
            client.register_attribute("age", "GRR", k=4, epsilon=1.0)
            client.register_attribute("city", "GRR", k=4, epsilon=1.0)
            client.send_batch("age", "b0", [0, 1, 2, 3])
            client.flush()
            args = build_parser().parse_args(["--snapshot", service.url])
            assert _service_main(args) == 0
            lines = [json.loads(line) for line in
                     capsys.readouterr().out.strip().splitlines()]
            assert [line["attribute"] for line in lines] == ["age", "city"]
            assert lines[0]["n"] == 4 and len(lines[0]["estimates"]) == 4
            assert lines[1]["estimates"] is None  # no data yet
            # restricting to one attribute name
            args = build_parser().parse_args(
                ["--snapshot", service.url, "--attribute", "city"]
            )
            assert _service_main(args) == 0
            lines = [json.loads(line) for line in
                     capsys.readouterr().out.strip().splitlines()]
            assert [line["attribute"] for line in lines] == ["city"]
        finally:
            service.stop()

    def test_snapshot_against_dead_service_exits_2(self, capsys):
        from repro.core.retry import RetryPolicy
        from repro.experiments.runner import _service_main, build_parser
        from repro.service.server import CollectionService

        # bind then release a port so nothing is listening there
        service = CollectionService()
        service.start()
        url = service.url
        service.stop()
        args = build_parser().parse_args(["--snapshot", url])
        import repro.experiments.runner as runner_module
        import repro.service.client as client_module

        original = client_module.CollectionClient

        def fast_client(base_url):
            return original(
                base_url,
                retry_policy=RetryPolicy(
                    max_retries=1, base_delay=1e-3, max_delay=1e-3, jitter=0.0
                ),
            )

        # _service_main imports CollectionClient from repro.service.client
        import unittest.mock as mock

        with mock.patch.object(client_module, "CollectionClient", fast_client):
            assert _service_main(args) == 2
        assert "error" in capsys.readouterr().err
