"""Property tests for ``merge_artifacts`` (ISSUE 4, satellite 2).

Shard-count and merge-order invariance, duplicate-cell handling and the
missing-cell report that names the absent configs rather than raising a
bare ``KeyError``.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShardMergeError
from repro.experiments.grid import GridCell, cell_runner, run_grid
from repro.experiments.sharding import (
    find_shard_artifacts,
    load_shard_artifact,
    merge_artifacts,
    plan_fingerprint,
    run_shard,
    shard_artifact_path,
)


@cell_runner("_test_merge_echo")
def _merge_echo_cell(params, rng):
    return [{"value": params.get("value", 0), "draw": int(rng.integers(0, 10**9))}]


@cell_runner("_test_merge_numpy")
def _merge_numpy_cell(params, rng):
    import numpy as np

    # numpy scalars are legal runner output (GridCache coerces them too)
    return [{"value": np.int64(params.get("value", 0)), "acc": np.float64(0.5)}]


def _cells(values) -> list[GridCell]:
    return [
        GridCell(figure="f", runner="_test_merge_echo", params={"value": int(v)}, master_seed=5)
        for v in values
    ]


def _run_all_shards(cells, shards, directory) -> list:
    for shard_index in range(shards):
        run_shard(cells, shards, shard_index, directory)
    return find_shard_artifacts(directory, shards)


class TestMergeInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        n_cells=st.integers(min_value=1, max_value=12),
        shards=st.integers(min_value=1, max_value=5),
        order_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_shard_count_and_order_reassembles_the_plan(
        self, tmp_path_factory, n_cells, shards, order_seed
    ):
        cells = _cells(range(n_cells))
        reference = run_grid(cells).rows
        directory = tmp_path_factory.mktemp("shards")
        artifacts = _run_all_shards(cells, shards, directory)
        random.Random(order_seed).shuffle(artifacts)
        merged = merge_artifacts(cells, artifacts)
        assert merged.rows == reference

    def test_two_and_three_way_splits_merge_identically(self, tmp_path):
        cells = _cells(range(7))
        rows_by_split = {}
        for shards in (2, 3):
            directory = tmp_path / f"split-{shards}"
            merged = merge_artifacts(cells, _run_all_shards(cells, shards, directory))
            rows_by_split[shards] = merged.rows
        assert rows_by_split[2] == rows_by_split[3]

    def test_intra_shard_duplicates_counted_in_summary(self, tmp_path):
        """cells == computed + resumed + from_cache + deduplicated."""
        cells = _cells([1, 1, 2])  # duplicate work lands in shard 0 (1-shard)
        result = run_shard(cells, 1, 0, tmp_path)
        assert result.cells == 3
        assert result.deduplicated == 1
        assert result.computed + result.resumed + result.from_cache == 2

    def test_merge_is_idempotent_over_identical_duplicates(self, tmp_path):
        """Overlapping partials whose rows agree (e.g. a re-merge) are fine."""
        cells = _cells(range(4))
        artifacts = _run_all_shards(cells, 2, tmp_path)
        merged = merge_artifacts(cells, artifacts + artifacts)
        assert merged.rows == run_grid(cells).rows

    def test_summary_counts_sources(self, tmp_path):
        cells = _cells(range(4))
        merged = merge_artifacts(cells, _run_all_shards(cells, 2, tmp_path))
        summary = merged.summary()
        assert summary["cells"] == 4
        assert summary["computed"] == 4
        assert summary["missing"] == 0
        assert summary["plan_hash"] == plan_fingerprint(cells)

    def test_numpy_scalar_rows_survive_the_sharded_path(self, tmp_path):
        """Runners returning numpy scalars must serialize in partial
        artifacts exactly like they do in the GridCache."""
        cells = [
            GridCell(figure="f", runner="_test_merge_numpy", params={"value": v})
            for v in range(3)
        ]
        merged = merge_artifacts(cells, _run_all_shards(cells, 2, tmp_path))
        assert merged.rows == [{"value": v, "acc": 0.5} for v in range(3)]

    def test_summary_counts_cache_served_cells(self, tmp_path):
        """Shards executed against a warm cache report from_cache correctly."""
        cells = _cells(range(4))
        cache = tmp_path / "cache"
        run_grid(cells, cache=cache)  # warm every cell
        for shard_index in range(2):
            run_shard(cells, 2, shard_index, tmp_path / "shards", cache=cache)
        summary = merge_artifacts(
            cells, find_shard_artifacts(tmp_path / "shards", 2)
        ).summary()
        assert summary["from_cache"] == 4
        assert summary["computed"] == 0


class TestDuplicateRejection:
    def test_conflicting_duplicate_cell_rejected(self, tmp_path):
        cells = _cells(range(4))
        artifacts = _run_all_shards(cells, 2, tmp_path)
        # tamper with one shard's copy of a cell so the duplicate conflicts
        path = shard_artifact_path(tmp_path, 2, 0)
        artifact = json.loads(path.read_text())
        artifact["entries"][0]["rows"] = [{"value": -999, "draw": 0}]
        forged = shard_artifact_path(tmp_path, 2, 1).with_name("forged.json")
        forged.write_text(json.dumps({**artifact, "shard_index": 0}))
        with pytest.raises(ShardMergeError, match="differing rows") as excinfo:
            merge_artifacts(cells, artifacts + [forged])
        assert excinfo.value.conflicting
        assert "_test_merge_echo" in excinfo.value.conflicting[0]


class TestMissingCellReport:
    def test_missing_shard_names_absent_configs(self, tmp_path):
        cells = _cells(range(5))
        run_shard(cells, 2, 0, tmp_path)  # shard 1 never ran
        artifacts = find_shard_artifacts(tmp_path, 2)
        try:
            merge_artifacts(cells, artifacts, expected_shards=2)
        except ShardMergeError as exc:
            message = str(exc)
            assert "absent" in message
            assert "_test_merge_echo" in message
            # shard 1 holds the odd plan positions
            assert len(exc.missing) == 2
            assert any('"value":1' in descriptor for descriptor in exc.missing)
            assert any('"value":3' in descriptor for descriptor in exc.missing)
        else:  # pragma: no cover - the merge must fail
            pytest.fail("incomplete merge did not raise")

    def test_missing_cells_never_raise_bare_keyerror(self, tmp_path):
        cells = _cells(range(3))
        with pytest.raises(ShardMergeError):
            merge_artifacts(cells, [])

    def test_foreign_plan_artifact_rejected(self, tmp_path):
        cells = _cells(range(3))
        others = _cells(range(10, 13))
        artifacts = _run_all_shards(others, 1, tmp_path)
        with pytest.raises(ShardMergeError, match="different plan"):
            merge_artifacts(cells, artifacts)

    def test_structurally_invalid_artifact_rejected(self, tmp_path):
        cells = _cells(range(2))
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"entries": []}))
        with pytest.raises(ShardMergeError, match="lacks"):
            merge_artifacts(cells, [bogus])
        bogus.write_text("{not json")
        with pytest.raises(ShardMergeError, match="cannot read"):
            load_shard_artifact(bogus)
