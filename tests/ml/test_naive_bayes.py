"""Tests for the Bernoulli Naive Bayes baseline."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.metrics import accuracy_score
from repro.ml.naive_bayes import BernoulliNaiveBayes


def make_problem(n=600, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=n)
    features = np.zeros((n, 6))
    for c in range(3):
        mask = labels == c
        features[mask, 2 * c] = (rng.random(mask.sum()) < 0.85).astype(float)
        features[mask, 2 * c + 1] = (rng.random(mask.sum()) < 0.7).astype(float)
    return features, labels


class TestNaiveBayes:
    def test_learns_separable_problem(self):
        features, labels = make_problem()
        model = BernoulliNaiveBayes().fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.85

    def test_predict_proba_is_distribution(self):
        features, labels = make_problem(n=200)
        model = BernoulliNaiveBayes().fit(features, labels)
        proba = model.predict_proba(features[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_prior_dominates_without_evidence(self):
        # all-zero features: the majority class should win
        labels = np.array([0] * 90 + [1] * 10)
        features = np.zeros((100, 3))
        model = BernoulliNaiveBayes().fit(features, labels)
        assert model.predict(np.zeros((1, 3)))[0] == 0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BernoulliNaiveBayes().predict(np.zeros((2, 3)))

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            BernoulliNaiveBayes(alpha=0.0)

    def test_misaligned_inputs(self):
        with pytest.raises(InvalidParameterError):
            BernoulliNaiveBayes().fit(np.zeros((5, 2)), np.zeros(3, dtype=int))
