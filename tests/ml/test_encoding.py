"""Tests for the report featurization used by the classifier attacks."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.ml.encoding import (
    count_threshold_features,
    encode_dataset_rows,
    encode_reports,
    one_hot_columns,
)
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD


class TestOneHot:
    def test_one_hot_shape_and_values(self):
        encoded = one_hot_columns(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=np.float32)
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            one_hot_columns(np.array([0, 3]), 3)


class TestCountThresholds:
    def test_thresholds(self):
        bits = np.array([[0, 0, 0, 0], [1, 0, 0, 0], [1, 1, 1, 0]], dtype=np.uint8)
        features = count_threshold_features(bits)
        assert features.shape == (3, 4)
        np.testing.assert_array_equal(features[0], [0, 0, 0, 0])
        np.testing.assert_array_equal(features[1], [1, 0, 0, 0])
        np.testing.assert_array_equal(features[2], [1, 1, 1, 0])

    def test_small_domain_limits_thresholds(self):
        bits = np.array([[1, 0]], dtype=np.uint8)
        assert count_threshold_features(bits).shape == (1, 2)


class TestEncodeReports:
    def test_grr_reports_one_hot_blocks(self, tiny_dataset):
        solution = RSFD(tiny_dataset.domain, 1.0, variant="grr", rng=0)
        reports = solution.collect(tiny_dataset)
        features = encode_reports(reports)
        assert features.shape == (tiny_dataset.n, sum(tiny_dataset.sizes))
        # each one-hot block contributes exactly one active feature
        assert np.all(features.sum(axis=1) == tiny_dataset.d)

    def test_ue_reports_include_bits_and_counts(self, tiny_dataset):
        solution = RSFD(tiny_dataset.domain, 1.0, variant="ue-z", ue_kind="OUE", rng=0)
        reports = solution.collect(tiny_dataset)
        features = encode_reports(reports)
        expected_width = sum(k + min(4, k) for k in tiny_dataset.sizes)
        assert features.shape == (tiny_dataset.n, expected_width)
        assert set(np.unique(features)) <= {0.0, 1.0}

    def test_rsrfd_reports_encodable(self, tiny_dataset):
        priors = [np.full(k, 1.0 / k) for k in tiny_dataset.sizes]
        solution = RSRFD(tiny_dataset.domain, 1.0, priors, variant="ue-r", rng=0)
        reports = solution.collect(tiny_dataset)
        features = encode_reports(reports)
        assert features.shape[0] == tiny_dataset.n


class TestEncodeDatasetRows:
    def test_shape(self, tiny_dataset):
        features = encode_dataset_rows(tiny_dataset.data, tiny_dataset.domain)
        assert features.shape == (tiny_dataset.n, sum(tiny_dataset.sizes))

    def test_wrong_shape_rejected(self, tiny_dataset):
        with pytest.raises(InvalidParameterError):
            encode_dataset_rows(tiny_dataset.data[:, :2], tiny_dataset.domain)
