"""Tests for the binary-feature regression tree."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.tree import BinaryFeatureRegressionTree


def make_separable_problem(n=500, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(n, 6)).astype(np.float32)
    # target depends strongly on feature 2
    target = np.where(features[:, 2] > 0.5, 1.0, -1.0)
    gradients = -target  # minimizing squared loss around the target
    hessians = np.ones(n)
    return features, gradients, hessians, target


class TestFitting:
    def test_learns_single_feature_split(self):
        features, gradients, hessians, target = make_separable_problem()
        tree = BinaryFeatureRegressionTree(max_depth=2, min_samples_leaf=5)
        tree.fit(features, gradients, hessians)
        predictions = tree.predict(features)
        # predictions should be positively correlated with the target
        assert np.corrcoef(predictions, target)[0, 1] > 0.95

    def test_leaf_value_is_mean_like(self):
        # with constant gradients the tree should output -G/(H + lambda)
        features = np.zeros((20, 3), dtype=np.float32)
        gradients = np.full(20, 2.0)
        hessians = np.ones(20)
        tree = BinaryFeatureRegressionTree(max_depth=3, reg_lambda=0.0, min_samples_leaf=1)
        tree.fit(features, gradients, hessians)
        np.testing.assert_allclose(tree.predict(features), -2.0, atol=1e-9)

    def test_respects_max_depth(self):
        features, gradients, hessians, _ = make_separable_problem(n=300)
        shallow = BinaryFeatureRegressionTree(max_depth=1, min_samples_leaf=1)
        shallow.fit(features, gradients, hessians)
        deep = BinaryFeatureRegressionTree(max_depth=5, min_samples_leaf=1)
        deep.fit(features, gradients, hessians)
        assert shallow.node_count <= 3
        assert deep.node_count >= shallow.node_count

    def test_min_samples_leaf_prevents_tiny_splits(self):
        features, gradients, hessians, _ = make_separable_problem(n=30)
        tree = BinaryFeatureRegressionTree(max_depth=5, min_samples_leaf=20)
        tree.fit(features, gradients, hessians)
        assert tree.node_count == 1  # cannot split without violating the minimum

    def test_misaligned_inputs_rejected(self):
        tree = BinaryFeatureRegressionTree()
        with pytest.raises(InvalidParameterError):
            tree.fit(np.zeros((10, 2)), np.zeros(5), np.ones(10))

    def test_invalid_hyperparameters(self):
        with pytest.raises(InvalidParameterError):
            BinaryFeatureRegressionTree(max_depth=0)
        with pytest.raises(InvalidParameterError):
            BinaryFeatureRegressionTree(min_samples_leaf=0)
        with pytest.raises(InvalidParameterError):
            BinaryFeatureRegressionTree(reg_lambda=-1.0)


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BinaryFeatureRegressionTree().predict(np.zeros((2, 3)))

    def test_predict_new_rows(self):
        features, gradients, hessians, _ = make_separable_problem()
        tree = BinaryFeatureRegressionTree(max_depth=2, min_samples_leaf=5)
        tree.fit(features, gradients, hessians)
        new = np.zeros((2, 6), dtype=np.float32)
        new[1, 2] = 1.0
        predictions = tree.predict(new)
        assert predictions[1] > predictions[0]
