"""Tests for the ML metrics."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.ml.metrics import accuracy_score, confusion_matrix, per_class_recall


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 2, 3, 4], [1, 0, 3, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            accuracy_score([1, 2], [1])

    def test_empty(self):
        with pytest.raises(InvalidParameterError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_explicit_n_classes(self):
        matrix = confusion_matrix([0], [0], n_classes=3)
        assert matrix.shape == (3, 3)

    def test_per_class_recall(self):
        recall = per_class_recall([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_allclose(recall, [0.5, 1.0])

    def test_recall_for_absent_class_is_zero(self):
        recall = per_class_recall([0, 0], [0, 0], n_classes=2)
        assert recall[1] == 0.0
