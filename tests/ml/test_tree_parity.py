"""Parity tests: level-wise histogram trees vs the recursive reference.

The level-wise builder (:mod:`repro.ml.tree`) and the recursive reference
(:mod:`repro.ml.tree_reference`) implement the same split rule with the same
first-max tie-breaking, so they must grow identical trees whenever gains are
untied; floating-point summation order is their only difference.  When
gains *are* mathematically tied (two features inducing the same partition,
or the piecewise-constant gradients of boosting round 0 producing equal
contingency counts), either implementation may round the tie its own way —
those cases are covered by prediction-level equivalence instead.
"""

import numpy as np
import pytest

from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.tree import BinaryFeatureRegressionTree, grow_forest
from repro.ml.tree_reference import RecursiveBinaryFeatureRegressionTree


def untied_problem(seed, n=400, n_features=12):
    """Continuous random gradients: exact gain ties are (essentially) impossible."""
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(n, n_features)).astype(np.float32)
    gradients = rng.normal(size=n)
    hessians = np.clip(rng.random(n), 1e-6, None)
    return features, gradients, hessians


def classification_problem(seed, n=1500, n_features=12, n_classes=3):
    """Binary features with per-feature densities (avoids contingency ties)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n)
    features = (rng.random((n, n_features)) < rng.random(n_features) * 0.8 + 0.1).astype(
        np.float32
    )
    for c in range(n_classes):
        mask = labels == c
        features[mask, c] = (rng.random(int(mask.sum())) < 0.85).astype(np.float32)
    return features, labels


def assert_same_structure(level_wise, recursive):
    new = level_wise.structure()
    ref = recursive.structure()
    np.testing.assert_array_equal(new["feature"], ref["feature"])
    np.testing.assert_array_equal(new["left"], ref["left"])
    np.testing.assert_array_equal(new["right"], ref["right"])
    np.testing.assert_allclose(new["value"], ref["value"], rtol=1e-9, atol=1e-12)


class TestTreeParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "max_depth,min_samples_leaf,reg_lambda",
        [(1, 5, 1.0), (3, 5, 1.0), (4, 10, 2.5), (4, 8, 0.0)],
    )
    def test_identical_splits_when_gains_untied(
        self, seed, max_depth, min_samples_leaf, reg_lambda
    ):
        features, gradients, hessians = untied_problem(seed)
        level_wise = BinaryFeatureRegressionTree(
            max_depth, min_samples_leaf, reg_lambda
        ).fit(features, gradients, hessians)
        recursive = RecursiveBinaryFeatureRegressionTree(
            max_depth, min_samples_leaf, reg_lambda
        ).fit(features, gradients, hessians)
        assert_same_structure(level_wise, recursive)
        np.testing.assert_allclose(
            level_wise.predict(features),
            recursive.predict(features),
            rtol=1e-9,
            atol=1e-12,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_predictions_match_on_deep_small_leaf_trees(self, seed):
        # deep trees with tiny leaves hit gain ties (features partitioning a
        # small node identically); the chosen feature may then differ, but
        # the induced partition — and hence every prediction — must not
        features, gradients, hessians = untied_problem(seed, n=300, n_features=25)
        level_wise = BinaryFeatureRegressionTree(6, 1, 0.5).fit(
            features, gradients, hessians
        )
        recursive = RecursiveBinaryFeatureRegressionTree(6, 1, 0.5).fit(
            features, gradients, hessians
        )
        assert level_wise.node_count == recursive.node_count
        np.testing.assert_allclose(
            level_wise.predict(features),
            recursive.predict(features),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_predict_on_unseen_rows_matches(self):
        features, gradients, hessians = untied_problem(3)
        held_out = untied_problem(99)[0]
        level_wise = BinaryFeatureRegressionTree(3, 5).fit(features, gradients, hessians)
        recursive = RecursiveBinaryFeatureRegressionTree(3, 5).fit(
            features, gradients, hessians
        )
        np.testing.assert_allclose(
            level_wise.predict(held_out), recursive.predict(held_out), rtol=1e-9
        )


class TestGrowForest:
    def test_matches_single_tree_fits(self):
        rng = np.random.default_rng(0)
        features = rng.integers(0, 2, size=(500, 10)).astype(np.float32)
        gradients = rng.normal(size=(500, 3))
        hessians = np.clip(rng.random((500, 3)), 1e-6, None)
        forest = grow_forest(features, gradients, hessians, max_depth=3, min_samples_leaf=5)
        for t, tree in enumerate(forest):
            alone = BinaryFeatureRegressionTree(3, 5).fit(
                features, gradients[:, t], hessians[:, t]
            )
            lock = tree.structure()
            solo = alone.structure()
            np.testing.assert_array_equal(lock["feature"], solo["feature"])
            np.testing.assert_array_equal(lock["left"], solo["left"])
            np.testing.assert_allclose(lock["value"], solo["value"], rtol=1e-12)

    def test_leaf_ids_match_apply(self):
        features, gradients, hessians = untied_problem(5)
        trees, leaf_ids = grow_forest(
            features,
            gradients[:, None],
            hessians[:, None],
            max_depth=4,
            min_samples_leaf=5,
            return_leaf_ids=True,
        )
        np.testing.assert_array_equal(trees[0].apply(features), leaf_ids[0])

    def test_transposed_features_apply_path(self):
        features, gradients, hessians = untied_problem(7)
        tree = BinaryFeatureRegressionTree(4, 5).fit(features, gradients, hessians)
        features_t = np.ascontiguousarray(features.T)
        np.testing.assert_array_equal(
            tree.apply(features), tree.apply(features, features_t)
        )


class TestBoostingGoldenParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fixed_seed_predictions_identical(self, seed):
        features, labels = classification_problem(seed)
        kwargs = dict(n_estimators=10, max_depth=3, min_samples_leaf=10, rng=0)
        level_wise = GradientBoostingClassifier(**kwargs).fit(features, labels)
        recursive = GradientBoostingClassifier(
            tree_class=RecursiveBinaryFeatureRegressionTree, **kwargs
        ).fit(features, labels)
        np.testing.assert_array_equal(
            level_wise.predict(features), recursive.predict(features)
        )
        np.testing.assert_allclose(
            level_wise.predict_proba(features),
            recursive.predict_proba(features),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_subsample_path_matches(self):
        # both implementations must consume the subsampling rng identically
        features, labels = classification_problem(1)
        kwargs = dict(
            n_estimators=6, max_depth=3, min_samples_leaf=10, subsample=0.7, rng=7
        )
        level_wise = GradientBoostingClassifier(**kwargs).fit(features, labels)
        recursive = GradientBoostingClassifier(
            tree_class=RecursiveBinaryFeatureRegressionTree, **kwargs
        ).fit(features, labels)
        np.testing.assert_array_equal(
            level_wise.predict(features), recursive.predict(features)
        )
