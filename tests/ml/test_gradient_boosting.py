"""Tests for the multiclass gradient-boosting classifier."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.ml.gradient_boosting import GradientBoostingClassifier, softmax
from repro.ml.metrics import accuracy_score


def make_multiclass_problem(n=900, n_classes=3, seed=0):
    """Binary features where class c activates feature block c."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n)
    features = rng.integers(0, 2, size=(n, 4 * n_classes)).astype(np.float32)
    for c in range(n_classes):
        mask = labels == c
        features[mask, 4 * c] = (rng.random(mask.sum()) < 0.9).astype(np.float32)
        features[~mask, 4 * c] = (rng.random((~mask).sum()) < 0.1).astype(np.float32)
    return features, labels


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_handles_large_scores(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestClassifier:
    def test_learns_separable_classes(self):
        features, labels = make_multiclass_problem()
        model = GradientBoostingClassifier(n_estimators=15, max_depth=3, rng=0)
        model.fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.85

    def test_generalizes_to_held_out_rows(self):
        features, labels = make_multiclass_problem(n=1200)
        model = GradientBoostingClassifier(n_estimators=15, max_depth=3, rng=0)
        model.fit(features[:900], labels[:900])
        assert accuracy_score(labels[900:], model.predict(features[900:])) > 0.8

    def test_predict_proba_is_distribution(self):
        features, labels = make_multiclass_problem(n=300)
        model = GradientBoostingClassifier(n_estimators=5, rng=0)
        model.fit(features, labels)
        proba = model.predict_proba(features[:10])
        assert proba.shape == (10, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_beats_majority_class_on_imbalanced_data(self):
        rng = np.random.default_rng(1)
        n = 800
        labels = (rng.random(n) < 0.2).astype(np.int64)
        features = np.zeros((n, 4), dtype=np.float32)
        features[:, 0] = labels  # perfectly informative feature
        model = GradientBoostingClassifier(n_estimators=10, rng=0)
        model.fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.95

    def test_subsample_mode(self):
        features, labels = make_multiclass_problem(n=600)
        model = GradientBoostingClassifier(n_estimators=10, subsample=0.5, rng=0)
        model.fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.7

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict(np.zeros((2, 3)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(InvalidParameterError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(InvalidParameterError):
            GradientBoostingClassifier(subsample=0.0)

    def test_single_class_rejected(self):
        with pytest.raises(InvalidParameterError):
            GradientBoostingClassifier().fit(np.zeros((10, 2)), np.zeros(10, dtype=int))
