"""Tests of the repro.kernels backend registry and kernel contracts.

Two layers:

* **registry** — name resolution (env var, ``auto`` fallback, numba
  requested-but-missing), process-wide selection, introspection;
* **kernel parity** — hypothesis property tests comparing every available
  backend against a brute-force pure-Python oracle over random shapes,
  including empty blocks, single-row inputs and OLH chunk-boundary cases.
  Without numba installed this still pins the NumPy backend against the
  oracle; with numba installed the same properties (plus explicit
  numpy-vs-numba assertions) prove cross-backend parity.

Integer-valued kernels must agree exactly; ``histogram_product`` is float64
and compared with a tight ``allclose`` (backends may sum in different
orders).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as kernels
from repro.exceptions import InvalidParameterError
from repro.kernels import (
    KERNEL_BACKEND_CHOICES,
    KERNEL_BACKEND_ENV,
    KernelBackend,
    active_backend_name,
    available_backends,
    get_backend,
    numba_available,
    resolve_backend_name,
    set_backend,
)
from repro.protocols.olh import HASH_PRIME

UNKNOWN = -1

BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide backend selection as the test found it."""
    before = kernels._active_backend
    yield
    kernels._active_backend = before


def backend(name: str) -> KernelBackend:
    return set_backend(name)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def test_available_backends_always_include_numpy() -> None:
    assert "numpy" in BACKENDS
    assert "auto" not in BACKENDS
    assert ("numba" in BACKENDS) == numba_available()


def test_resolve_rejects_unknown_backend() -> None:
    with pytest.raises(InvalidParameterError, match="unknown kernel backend"):
        resolve_backend_name("cuda")


def test_resolve_auto_prefers_numba_when_available() -> None:
    resolved = resolve_backend_name("auto")
    assert resolved == ("numba" if numba_available() else "numpy")


def test_env_var_drives_default_resolution(monkeypatch) -> None:
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
    assert resolve_backend_name(None) == "numpy"
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "bogus")
    with pytest.raises(InvalidParameterError, match="unknown kernel backend"):
        resolve_backend_name(None)
    monkeypatch.delenv(KERNEL_BACKEND_ENV)
    assert resolve_backend_name(None) in ("numpy", "numba")


def test_set_backend_selects_and_get_backend_serves() -> None:
    selected = set_backend("numpy")
    assert selected.name == "numpy"
    assert get_backend() is selected
    assert active_backend_name() == "numpy"


def test_explicit_numba_without_numba_is_an_error() -> None:
    if numba_available():
        assert set_backend("numba").name == "numba"
    else:
        with pytest.raises(InvalidParameterError, match="numba is not importable"):
            set_backend("numba")


def test_backend_exposes_all_kernels() -> None:
    for name in BACKENDS:
        kernel_map = backend(name).kernels()
        assert set(kernel_map) == {
            "distance_block",
            "distance_update",
            "histogram_product",
            "olh_support",
            "olh_attack_counts",
            "olh_attack_select",
        }
        assert all(callable(fn) for fn in kernel_map.values())


def test_choices_cover_env_and_cli_surface() -> None:
    assert KERNEL_BACKEND_CHOICES == ("numpy", "numba", "auto")


# --------------------------------------------------------------------------- #
# brute-force oracles
# --------------------------------------------------------------------------- #
def oracle_distances(rows, background, attributes):
    """O(n*m*c) reference for distance_block."""
    n, m = rows.shape[0], background.shape[0]
    out = np.zeros((n, m), dtype=np.int64)
    for i in range(n):
        for j in range(m):
            for column, attribute in enumerate(attributes):
                value = rows[i, attribute]
                if value != UNKNOWN and value != background[j, column]:
                    out[i, j] += 1
    return out


def oracle_olh_supports(reports, k, g):
    """(m, k) boolean support matrix straight from the hash definition."""
    m = reports.shape[0]
    supports = np.zeros((m, k), dtype=bool)
    for i in range(m):
        a, b, y = (int(x) for x in reports[i])
        for v in range(k):
            supports[i, v] = ((a * v + b) % HASH_PRIME) % g == y
    return supports


def random_reports(rng, m, k, g):
    a = rng.integers(1, HASH_PRIME, size=m, dtype=np.int64)
    b = rng.integers(0, HASH_PRIME, size=m, dtype=np.int64)
    y = rng.integers(0, g, size=m, dtype=np.int64)
    return np.column_stack([a, b, y])


# --------------------------------------------------------------------------- #
# kernel parity properties (every available backend vs the oracle)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=7),
    m=st.integers(min_value=0, max_value=6),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_distance_block_matches_oracle(name, n, m, d, seed) -> None:
    rng = np.random.default_rng(seed)
    rows = rng.integers(-1, 4, size=(n, d)).astype(np.int64)
    c = int(rng.integers(1, d + 1))
    attributes = np.sort(rng.choice(d, size=c, replace=False)).astype(np.int64)
    background = rng.integers(0, 4, size=(m, c)).astype(np.int64)
    for out_dtype in (np.int16, np.int32):
        out = np.zeros((n, m), dtype=out_dtype)
        backend(name).distance_block(rows, background, attributes, UNKNOWN, out)
        np.testing.assert_array_equal(
            out.astype(np.int64), oracle_distances(rows, background, attributes)
        )


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    block=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=1, max_value=6),
    writes=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_distance_update_matches_recompute(name, block, m, writes, seed) -> None:
    rng = np.random.default_rng(seed)
    writes = min(writes, block)  # the engine never rewrites a row twice per group
    background_column = rng.integers(0, 4, size=m).astype(np.int64)
    old_profile = rng.integers(-1, 4, size=block).astype(np.int64)
    new_profile = old_profile.copy()
    rows = rng.choice(block, size=writes, replace=False).astype(np.int64)
    new_values = rng.integers(-1, 4, size=writes).astype(np.int64)
    new_profile[rows] = new_values

    def column_distances(profile):
        known = profile != UNKNOWN
        return ((profile[:, None] != background_column[None, :]) & known[:, None]).astype(
            np.int64
        )

    distances = column_distances(old_profile).astype(np.int16)
    backend(name).distance_update(
        distances, rows, old_profile[rows], new_values, background_column, UNKNOWN
    )
    np.testing.assert_array_equal(
        distances.astype(np.int64), column_distances(new_profile)
    )


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    slots=st.integers(min_value=0, max_value=5),
    n=st.integers(min_value=0, max_value=8),
    n_features=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_histogram_product_matches_gemm(name, slots, n, n_features, seed) -> None:
    rng = np.random.default_rng(seed)
    weights_t = rng.random((slots, n))
    weights_t[rng.random((slots, n)) < 0.5] = 0.0  # frontier rows are sparse
    features = (rng.random((n, n_features)) < 0.5).astype(np.float64)
    result = backend(name).histogram_product(weights_t, features)
    assert result.shape == (slots, n_features)
    np.testing.assert_allclose(result, weights_t @ features, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=0, max_value=8),
    k=st.integers(min_value=1, max_value=12),
    g=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_olh_kernels_match_oracle(name, m, k, g, seed) -> None:
    rng = np.random.default_rng(seed)
    reports = random_reports(rng, m, k, g)
    supports = oracle_olh_supports(reports, k, g)
    kernel = backend(name)
    np.testing.assert_array_equal(
        kernel.olh_support(reports, k, g, HASH_PRIME), supports.sum(axis=0).astype(float)
    )
    counts = kernel.olh_attack_counts(reports, k, g, HASH_PRIME)
    np.testing.assert_array_equal(counts, supports.sum(axis=1).astype(np.int64))
    rows = np.flatnonzero(counts > 0)
    if rows.size:
        ranks = rng.integers(0, counts[rows], dtype=np.int64)
        guesses = kernel.olh_attack_select(reports, k, g, HASH_PRIME, rows, ranks)
        for row, rank, guess in zip(rows, ranks, guesses):
            assert supports[row, guess]
            assert int(supports[row, :guess].sum()) == rank


@pytest.mark.parametrize("name", BACKENDS)
def test_olh_support_chunk_boundary_sums(name) -> None:
    """Chunked summation (how OLH blocks reports) matches the one-shot kernel."""
    rng = np.random.default_rng(7)
    k, g, m, chunk = 17, 4, 23, 8  # 23 = 2 full chunks + a ragged tail
    reports = random_reports(rng, m, k, g)
    kernel = backend(name)
    total = kernel.olh_support(reports, k, g, HASH_PRIME)
    chunked = sum(
        kernel.olh_support(reports[start : start + chunk], k, g, HASH_PRIME)
        for start in range(0, m, chunk)
    )
    np.testing.assert_array_equal(total, chunked)
    np.testing.assert_array_equal(
        kernel.olh_support(reports[:0], k, g, HASH_PRIME), np.zeros(k)
    )


# --------------------------------------------------------------------------- #
# explicit numpy-vs-numba parity (skipped cleanly when numba is absent)
# --------------------------------------------------------------------------- #
requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba backend not importable"
)


@requires_numba
@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=40),
    m=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_numpy_numba_distance_parity(n, m, seed) -> None:
    rng = np.random.default_rng(seed)
    d = 6
    rows = rng.integers(-1, 5, size=(n, d)).astype(np.int64)
    attributes = np.arange(d, dtype=np.int64)
    background = rng.integers(0, 5, size=(m, d)).astype(np.int64)
    outs = {}
    for name in ("numpy", "numba"):
        out = np.zeros((n, m), dtype=np.int16)
        backend(name).distance_block(rows, background, attributes, UNKNOWN, out)
        outs[name] = out
    np.testing.assert_array_equal(outs["numpy"], outs["numba"])


@requires_numba
@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=0, max_value=40),
    k=st.integers(min_value=1, max_value=25),
    g=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_numpy_numba_olh_parity(m, k, g, seed) -> None:
    rng = np.random.default_rng(seed)
    reports = random_reports(rng, m, k, g)
    results = {
        name: (
            backend(name).olh_support(reports, k, g, HASH_PRIME),
            backend(name).olh_attack_counts(reports, k, g, HASH_PRIME),
        )
        for name in ("numpy", "numba")
    }
    np.testing.assert_array_equal(results["numpy"][0], results["numba"][0])
    np.testing.assert_array_equal(results["numpy"][1], results["numba"][1])


@requires_numba
@settings(max_examples=25, deadline=None)
@given(
    slots=st.integers(min_value=0, max_value=6),
    n=st.integers(min_value=0, max_value=30),
    n_features=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_numpy_numba_histogram_parity(slots, n, n_features, seed) -> None:
    rng = np.random.default_rng(seed)
    weights_t = rng.random((slots, n))
    weights_t[rng.random((slots, n)) < 0.6] = 0.0
    features = (rng.random((n, n_features)) < 0.5).astype(np.float64)
    numpy_hist = backend("numpy").histogram_product(weights_t, features)
    numba_hist = backend("numba").histogram_product(weights_t, features)
    np.testing.assert_allclose(numpy_hist, numba_hist, rtol=1e-12, atol=1e-12)


@requires_numba
def test_oracle_outputs_identical_across_backends() -> None:
    """End-to-end OLH estimate/attack byte-parity across kernel backends."""
    from repro.protocols.olh import OLH

    values = np.random.default_rng(3).integers(0, 50, size=400)
    reports = OLH(k=50, epsilon=1.0, rng=11).randomize_many(values)
    results = {}
    for name in ("numpy", "numba"):
        backend(name)
        oracle = OLH(k=50, epsilon=1.0, rng=11, chunk_size=64)
        results[name] = (
            oracle.estimate_frequencies(reports),
            oracle.attack_many(reports),
        )
    np.testing.assert_array_equal(results["numpy"][0], results["numba"][0])
    np.testing.assert_array_equal(results["numpy"][1], results["numba"][1])
