"""End-to-end integration tests checking the paper's qualitative findings.

Each test runs a complete pipeline at small scale and asserts the *shape* of
the result the paper reports — who wins, in which direction, by a clear
margin — rather than absolute numbers.
"""

import numpy as np
import pytest

from repro.attacks import (
    AttributeInferenceAttack,
    ReidentificationAttack,
    build_profiles_smp,
    plan_surveys,
)
from repro.datasets import load_dataset
from repro.metrics import mse_avg
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.multidim import RSFD, RSRFD, SMP, SPL
from repro.privacy import make_priors


@pytest.fixture(scope="module")
def adult():
    return load_dataset("adult", n=600, rng=11)


@pytest.fixture(scope="module")
def acs():
    return load_dataset("acs_employment", n=500, rng=11)


@pytest.fixture(scope="module")
def nursery():
    return load_dataset("nursery", n=500, rng=11)


class TestUtilityOrdering:
    def test_smp_beats_spl(self, adult):
        """Sec. 2.3: splitting the budget is far worse than sampling."""
        epsilon = 1.0
        spl = SPL(adult.domain, epsilon, protocol="GRR", rng=0)
        smp = SMP(adult.domain, epsilon, protocol="GRR", rng=0)
        _, spl_estimates = spl.collect_and_estimate(adult)
        _, smp_estimates = smp.collect_and_estimate(adult)
        assert mse_avg(smp_estimates, adult) < mse_avg(spl_estimates, adult)


class TestReidentificationFindings:
    def test_grr_far_riskier_than_oue_under_smp(self, adult):
        """Fig. 2: GRR (and SS/SUE) lead to much higher RID-ACC than OUE/OLH."""
        surveys = plan_surveys(adult.d, 4, rng=1)
        reident = ReidentificationAttack(adult, rng=2)
        accuracies = {}
        for protocol in ("GRR", "OUE"):
            profiling = build_profiles_smp(
                adult, surveys, protocol=protocol, epsilon=8.0, metric="uniform", rng=3
            )
            accuracies[protocol] = reident.full_knowledge(
                profiling.final_profile, top_k=10
            ).accuracy
        assert accuracies["GRR"] > 2 * accuracies["OUE"]

    def test_rid_acc_increases_with_surveys(self, adult):
        """Fig. 2: more collections means better profiling and higher risk."""
        surveys = plan_surveys(adult.d, 5, rng=1)
        profiling = build_profiles_smp(
            adult, surveys, protocol="GRR", epsilon=8.0, metric="uniform", rng=3
        )
        reident = ReidentificationAttack(adult, rng=2)
        results = reident.evaluate_profiling(profiling, top_k=10, model="FK-RI")
        accuracies = [results[s].accuracy for s in sorted(results)]
        assert accuracies[-1] > accuracies[0]

    def test_attack_beats_random_baseline(self, adult):
        surveys = plan_surveys(adult.d, 4, rng=1)
        profiling = build_profiles_smp(
            adult, surveys, protocol="GRR", epsilon=6.0, metric="uniform", rng=3
        )
        result = ReidentificationAttack(adult, rng=2).full_knowledge(
            profiling.final_profile, top_k=10
        )
        assert result.accuracy > 5 * result.baseline


class TestAttributeInferenceFindings:
    def test_ue_z_worst_ue_r_and_grr_intermediate(self, acs):
        """Sec. 4.3: zero-vector fake data leaks the sampled attribute the most."""
        epsilon = 8.0
        accuracies = {}
        for label, variant, kind in (
            ("SUE-z", "ue-z", "SUE"),
            ("GRR", "grr", "OUE"),
        ):
            solution = RSFD(acs.domain, epsilon, variant=variant, ue_kind=kind, rng=4)
            reports = solution.collect(acs)
            attack = AttributeInferenceAttack(
                solution, classifier_factory=BernoulliNaiveBayes, rng=5
            )
            accuracies[label] = attack.no_knowledge(reports, synthetic_factor=1.0).accuracy
        baseline = 1.0 / acs.d
        assert accuracies["SUE-z"] > 5 * baseline
        assert accuracies["SUE-z"] > accuracies["GRR"]

    def test_nursery_defeats_the_attack(self, nursery):
        """Appendix D: uniform-like data gives no meaningful AIF improvement."""
        solution = RSFD(nursery.domain, 6.0, variant="grr", rng=4)
        reports = solution.collect(nursery)
        attack = AttributeInferenceAttack(
            solution, classifier_factory=BernoulliNaiveBayes, rng=5
        )
        result = attack.no_knowledge(reports, synthetic_factor=1.0)
        assert result.accuracy < 2.5 * result.baseline

    def test_rsrfd_countermeasure_reduces_attack(self, acs):
        """Sec. 5.2.3: realistic fake data pushes AIF-ACC back towards baseline."""
        epsilon = 8.0
        rsfd = RSFD(acs.domain, epsilon, variant="ue-z", ue_kind="SUE", rng=4)
        rsfd_result = AttributeInferenceAttack(
            rsfd, classifier_factory=BernoulliNaiveBayes, rng=5
        ).no_knowledge(rsfd.collect(acs), synthetic_factor=1.0)

        priors = make_priors("correct", acs, rng=6)
        rsrfd = RSRFD(acs.domain, epsilon, priors, variant="ue-r", ue_kind="SUE", rng=4)
        rsrfd_result = AttributeInferenceAttack(
            rsrfd, classifier_factory=BernoulliNaiveBayes, rng=5
        ).no_knowledge(rsrfd.collect(acs), synthetic_factor=1.0)

        assert rsrfd_result.accuracy < rsfd_result.accuracy


class TestCountermeasureUtility:
    def test_rsrfd_grr_improves_utility_with_realistic_priors(self):
        """Fig. 5: RS+RFD beats RS+FD when fake data follows realistic priors.

        Run on a skewed 6-attribute projection of ACSEmployment with the GRR
        local randomizer (the configuration where the gap is largest on the
        synthetic surrogate) and averaged over several collections.
        """
        dataset = load_dataset("acs_employment", n=8000, rng=11).project(
            [0, 1, 5, 11, 15, 17]
        )
        epsilon = float(np.log(2))
        priors = dataset.all_frequencies()
        errors_fd, errors_rfd = [], []
        for repeat in range(4):
            rsfd = RSFD(dataset.domain, epsilon, variant="grr", rng=20 + repeat)
            rsrfd = RSRFD(dataset.domain, epsilon, priors, variant="grr", rng=30 + repeat)
            _, est_fd = rsfd.collect_and_estimate(dataset)
            _, est_rfd = rsrfd.collect_and_estimate(dataset)
            errors_fd.append(mse_avg(est_fd, dataset))
            errors_rfd.append(mse_avg(est_rfd, dataset))
        assert np.mean(errors_rfd) < np.mean(errors_fd)
