"""Cross-module property-based tests (hypothesis).

These complement the per-module tests with invariants that must hold for any
randomly drawn configuration: multidimensional estimators return one
histogram per attribute with roughly unit mass, profiles only contain
in-domain values, priors are distributions, and the composition algebra is
consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.profile import UNKNOWN, Survey, build_profiles_smp
from repro.core.composition import amplified_epsilon, deamplified_epsilon
from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD
from repro.multidim.smp import SMP
from repro.privacy.priors import make_priors

sizes_strategy = st.lists(st.integers(min_value=2, max_value=9), min_size=2, max_size=5)
epsilon_strategy = st.floats(min_value=0.5, max_value=8.0)
seed_strategy = st.integers(min_value=0, max_value=2**31 - 1)


def build_dataset(sizes: list[int], n: int, seed: int) -> TabularDataset:
    rng = np.random.default_rng(seed)
    domain = Domain.from_sizes(sizes)
    columns = []
    for k in sizes:
        weights = rng.dirichlet(np.ones(k) * 0.7)
        columns.append(rng.choice(k, size=n, p=weights))
    return TabularDataset.from_columns(columns, domain)


@settings(max_examples=15, deadline=None)
@given(sizes=sizes_strategy, epsilon=epsilon_strategy, seed=seed_strategy)
def test_smp_estimates_have_unit_mass(sizes, epsilon, seed):
    dataset = build_dataset(sizes, n=4000, seed=seed)
    solution = SMP(dataset.domain, epsilon, protocol="GRR", rng=seed)
    _, estimates = solution.collect_and_estimate(dataset)
    assert len(estimates) == dataset.d
    for estimate in estimates:
        assert np.isfinite(estimate.estimates).all()
        assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.35)


@settings(max_examples=12, deadline=None)
@given(
    sizes=sizes_strategy,
    epsilon=epsilon_strategy,
    seed=seed_strategy,
    variant=st.sampled_from(["grr", "ue-z", "ue-r"]),
)
def test_rsfd_estimates_have_unit_mass(sizes, epsilon, seed, variant):
    dataset = build_dataset(sizes, n=4000, seed=seed)
    solution = RSFD(dataset.domain, epsilon, variant=variant, ue_kind="OUE", rng=seed)
    _, estimates = solution.collect_and_estimate(dataset)
    # estimator noise grows sharply as the per-attribute budget shrinks: the
    # unit-mass sum has std ~0.16 at epsilon=0.5 with d=5, so the fixed 0.5
    # bound sat at ~3 sigma and flaked; widen to ~6 sigma at the low end
    tolerance = 1.0 if epsilon < 1.0 else 0.5
    for estimate in estimates:
        assert np.isfinite(estimate.estimates).all()
        assert estimate.estimates.sum() == pytest.approx(1.0, abs=tolerance)


@settings(max_examples=12, deadline=None)
@given(
    sizes=sizes_strategy,
    epsilon=epsilon_strategy,
    seed=seed_strategy,
    prior_kind=st.sampled_from(["uniform", "dir", "zipf", "exp", "correct"]),
)
def test_rsrfd_estimates_have_unit_mass_for_any_prior(sizes, epsilon, seed, prior_kind):
    dataset = build_dataset(sizes, n=4000, seed=seed)
    priors = make_priors(prior_kind, dataset, rng=seed)
    for prior, k in zip(priors, sizes):
        assert prior.shape == (k,)
        assert prior.sum() == pytest.approx(1.0)
    solution = RSRFD(dataset.domain, epsilon, priors, variant="grr", rng=seed)
    _, estimates = solution.collect_and_estimate(dataset)
    for estimate in estimates:
        assert np.isfinite(estimate.estimates).all()
        assert estimate.estimates.sum() == pytest.approx(1.0, abs=0.5)


@settings(max_examples=10, deadline=None)
@given(sizes=sizes_strategy, epsilon=epsilon_strategy, seed=seed_strategy)
def test_smp_profiles_stay_in_domain_and_grow(sizes, epsilon, seed):
    dataset = build_dataset(sizes, n=300, seed=seed)
    surveys = [Survey(tuple(range(dataset.d)))] * 2
    result = build_profiles_smp(
        dataset, surveys, protocol="GRR", epsilon=epsilon, metric="uniform", rng=seed
    )
    previous_known = 0
    for snapshot in result.snapshots:
        known = snapshot != UNKNOWN
        assert known.sum() >= previous_known
        previous_known = known.sum()
        for j, k in enumerate(sizes):
            column = snapshot[:, j]
            valid = column[column != UNKNOWN]
            if valid.size:
                assert valid.min() >= 0 and valid.max() < k


@settings(max_examples=40, deadline=None)
@given(
    epsilon=st.floats(min_value=0.05, max_value=12.0),
    d=st.integers(min_value=1, max_value=30),
)
def test_amplification_roundtrip_and_monotonicity(epsilon, d):
    amplified = amplified_epsilon(epsilon, d)
    assert amplified >= epsilon - 1e-12
    assert deamplified_epsilon(amplified, d) == pytest.approx(epsilon, rel=1e-9)
