"""Incremental matching engine vs the reference path (ISSUE 5).

Three layers of equivalence evidence:

* **property tests** — the count-based decision of
  :func:`repro.attacks.reidentification.count_topk_hits` agrees with the
  jitter + ``argpartition`` decision exactly on tie-free distance matrices,
  and realizes the same analytic hit probability under ties;
* **engine parity** — ``evaluate_profiling`` matches the reference engine
  exactly wherever the true-record distances are tie-free, and within
  binomial noise on real (tied) profilings;
* **regression pins** — scaled-down fig-2/fig-4 grids are pinned to exact
  row values, freezing the incremental engine's RNG stream and decisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.profile import (
    ProfilingResult,
    SurveyDelta,
    build_profiles_smp,
    plan_surveys,
)
from repro.attacks.reidentification import (
    ReidentificationAttack,
    count_topk_hits,
    top_k_candidates,
)
from repro.attacks.reidentification_reference import ReferenceReidentificationAttack
from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError


# --------------------------------------------------------------------------- #
# count-based decision vs jitter decision
# --------------------------------------------------------------------------- #
class TestCountDecisionTieFree:
    @settings(max_examples=40, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=1, max_value=40),
        top_k=st.integers(min_value=1, max_value=45),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_top_k_candidates_exactly(self, n_rows, m, top_k, seed):
        """On per-row-distinct distances both decisions are deterministic."""
        rng = np.random.default_rng(seed)
        distances = np.stack([rng.permutation(m) for _ in range(n_rows)])
        true_ids = rng.integers(0, m, size=n_rows)
        counted = count_topk_hits(
            distances, true_ids, top_k, np.random.default_rng(seed + 1)
        )
        candidates = top_k_candidates(distances, top_k, np.random.default_rng(seed + 2))
        jittered = (candidates == true_ids[:, None]).any(axis=1)
        np.testing.assert_array_equal(counted, jittered)

    def test_validates_inputs(self):
        with pytest.raises(InvalidParameterError):
            count_topk_hits(np.zeros((2, 3)), np.zeros(2, dtype=int), 0, np.random.default_rng(0))
        with pytest.raises(InvalidParameterError):
            count_topk_hits(np.zeros(3), np.zeros(3, dtype=int), 1, np.random.default_rng(0))
        with pytest.raises(InvalidParameterError):
            count_topk_hits(np.zeros((2, 3)), np.zeros(3, dtype=int), 1, np.random.default_rng(0))


class TestCountDecisionUnderTies:
    #: (distances row, true_id, top_k, analytic hit probability)
    CASES = [
        ([0, 0, 0, 1, 1, 2], 1, 2, 2 / 3),  # 3-way tie at the true distance
        ([0, 0, 0, 1, 1, 2], 1, 1, 1 / 3),
        ([0, 1, 1, 1, 5, 5], 0, 1, 1.0),  # unique closest: deterministic hit
        ([0, 1, 1, 1, 5, 5], 4, 4, 0.0),  # too far: deterministic miss
        ([2, 0, 2, 2, 2, 2], 0, 3, 2 / 5),  # k slots left after 1 closer, 5 tied
    ]

    @pytest.mark.parametrize("row, true_id, top_k, probability", CASES)
    def test_hit_rate_matches_hypergeometric_law(self, row, true_id, top_k, probability):
        """Both deciders draw tie winners from the same law."""
        distances = np.asarray([row])
        true_ids = np.asarray([true_id])
        trials = 3000
        count_rng = np.random.default_rng(99)
        jitter_rng = np.random.default_rng(101)
        counted = sum(
            int(count_topk_hits(distances, true_ids, top_k, count_rng)[0])
            for _ in range(trials)
        )
        jittered = sum(
            int((top_k_candidates(distances, top_k, jitter_rng) == true_id).any())
            for _ in range(trials)
        )
        assert counted / trials == pytest.approx(probability, abs=0.045)
        assert jittered / trials == pytest.approx(probability, abs=0.045)
        if probability in (0.0, 1.0):
            assert counted == jittered  # deterministic cases agree exactly


# --------------------------------------------------------------------------- #
# evaluate_profiling: incremental vs reference engine
# --------------------------------------------------------------------------- #
@pytest.fixture
def tie_free_profiling():
    """Unique records revealed progressively: all true distances tie-free."""
    n = 60
    domain = Domain.from_sizes([n, n])
    values = np.stack([np.arange(n), np.arange(n)], axis=1)
    dataset = TabularDataset(domain, values)
    first = np.full((n, 2), -1, dtype=np.int64)
    first[:, 0] = values[:, 0]
    profiling = ProfilingResult.from_snapshots(
        [first, values.astype(np.int64)], surveys=[], metric="uniform"
    )
    return dataset, profiling


class TestEngineParity:
    def test_exact_equality_on_tie_free_profiling(self, tie_free_profiling):
        dataset, profiling = tie_free_profiling
        for top_k in (1, 3, 10):
            incremental = ReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, top_k=top_k, min_surveys=1
            )
            reference = ReferenceReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, top_k=top_k, min_surveys=1
            )
            assert incremental.keys() == reference.keys() == {1, 2}
            for surveys_done in incremental:
                assert (
                    incremental[surveys_done].accuracy
                    == reference[surveys_done].accuracy
                )

    def test_statistical_equivalence_on_tied_profiling(self, small_dataset):
        """Real profilings have ties; RID-ACC gaps stay at binomial noise."""
        surveys = plan_surveys(small_dataset.d, 4, rng=5, min_fraction=0.6)
        profiling = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=6.0, metric="uniform", rng=6
        )
        for top_k in (1, 10):
            incremental = ReidentificationAttack(small_dataset, rng=7).evaluate_profiling(
                profiling, top_k=top_k
            )
            reference = ReferenceReidentificationAttack(
                small_dataset, rng=7
            ).evaluate_profiling(profiling, top_k=top_k)
            for surveys_done in incremental:
                gap = abs(
                    incremental[surveys_done].accuracy
                    - reference[surveys_done].accuracy
                )
                assert gap < 0.1  # n=600: ~3.5 sigma of two-binomial noise

    def test_deltas_reverting_cells_to_unknown_stay_exact(self):
        """Regression: a delta may revert a cell to UNKNOWN (reachable via
        from_snapshots); the incremental update must drop the cell's
        contribution, not score the sentinel against the background."""
        n = 30
        domain = Domain.from_sizes([n, n])
        values = np.stack([np.arange(n), np.arange(n)], axis=1)
        dataset = TabularDataset(domain, values)
        full = values.astype(np.int64)
        forgotten = full.copy()
        forgotten[:, 1] = -1  # second survey forgets attribute 1
        profiling = ProfilingResult.from_snapshots(
            [full, forgotten], surveys=[], metric="uniform"
        )
        for top_k in (1, 5):
            incremental = ReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, top_k=top_k, min_surveys=1
            )
            reference = ReferenceReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, top_k=top_k, min_surveys=1
            )
            for surveys_done in reference:
                assert (
                    incremental[surveys_done].accuracy
                    == reference[surveys_done].accuracy
                )

    def test_distance_dtype_bound_guard_at_the_boundary(self):
        """Regression: a background wide enough to overflow the int16
        distance state must be rejected up front, not silently wrapped."""
        n = 4
        limit = int(np.iinfo(np.int16).max)

        def make(d):
            domain = Domain.from_sizes([2] * d)
            dataset = TabularDataset(domain, np.zeros((n, d), dtype=np.int64))
            delta = SurveyDelta(
                rows=np.arange(n, dtype=np.int64),
                attributes=np.zeros(n, dtype=np.int64),
                values=np.ones(n, dtype=np.int64),
            )
            profiling = ProfilingResult(
                deltas=[delta], shape=(n, d), surveys=[], metric="uniform"
            )
            return dataset, profiling

        dataset, profiling = make(limit)  # exactly at the bound: fine
        results = ReidentificationAttack(dataset, rng=0).evaluate_profiling(
            profiling, top_k=1, min_surveys=1
        )
        assert set(results) == {1}

        dataset, profiling = make(limit + 1)  # one column past it: rejected
        with pytest.raises(InvalidParameterError, match="overflow"):
            ReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, top_k=1, min_surveys=1
            )

    def test_min_surveys_beyond_horizon_returns_empty(self, tie_free_profiling):
        dataset, profiling = tie_free_profiling
        results = ReidentificationAttack(dataset, rng=0).evaluate_profiling(
            profiling, top_k=1, min_surveys=5
        )
        assert results == {}

    def test_incremental_engine_tags_metadata(self, tie_free_profiling):
        dataset, profiling = tie_free_profiling
        results = ReidentificationAttack(dataset, rng=0).evaluate_profiling(
            profiling, top_k=1, min_surveys=2
        )
        assert results[2].metadata["engine"] == "incremental"
        assert results[2].metadata["model"] == "FK-RI"

    def test_mismatched_background_size_rejected(self, tie_free_profiling):
        _, profiling = tie_free_profiling
        other = TabularDataset(
            Domain.from_sizes([60, 60]), np.zeros((10, 2), dtype=np.int64)
        )
        with pytest.raises(InvalidParameterError):
            ReidentificationAttack(other, rng=0).evaluate_profiling(profiling)


class TestPartialKnowledgeSubsets:
    def test_subset_drawn_once_per_evaluation(self, tie_free_profiling):
        """Default PK-RI holds one attribute subset across every snapshot, so
        repeating the evaluation with the same seed is fully deterministic."""
        dataset, profiling = tie_free_profiling
        first = ReidentificationAttack(dataset, rng=3).evaluate_profiling(
            profiling, top_k=1, model="PK-RI", min_surveys=1
        )
        second = ReidentificationAttack(dataset, rng=3).evaluate_profiling(
            profiling, top_k=1, model="PK-RI", min_surveys=1
        )
        assert {s: r.accuracy for s, r in first.items()} == {
            s: r.accuracy for s, r in second.items()
        }

    def test_full_subset_equals_full_knowledge(self, tie_free_profiling):
        """PK-RI over *all* attributes consumes the same stream as FK-RI."""
        dataset, profiling = tie_free_profiling
        partial = ReidentificationAttack(dataset, rng=4).evaluate_profiling(
            profiling, top_k=3, model="PK-RI", min_surveys=1,
            pk_attributes=range(dataset.d),
        )
        full = ReidentificationAttack(dataset, rng=4).evaluate_profiling(
            profiling, top_k=3, model="FK-RI", min_surveys=1
        )
        for surveys_done in full:
            assert partial[surveys_done].accuracy == full[surveys_done].accuracy
        assert partial[1].metadata["model"] == "PK-RI"

    def test_redraw_attributes_restores_per_snapshot_churn(self, tie_free_profiling):
        """The escape hatch draws a fresh subset per snapshot (legacy)."""
        dataset, profiling = tie_free_profiling
        redrawn = ReidentificationAttack(dataset, rng=5).evaluate_profiling(
            profiling, top_k=1, model="PK-RI", min_surveys=1, redraw_attributes=True
        )
        assert set(redrawn) == {1, 2}
        assert "engine" not in redrawn[1].metadata  # snapshot-by-snapshot path
        # deterministic under a fixed seed
        again = ReidentificationAttack(dataset, rng=5).evaluate_profiling(
            profiling, top_k=1, model="PK-RI", min_surveys=1, redraw_attributes=True
        )
        assert {s: r.accuracy for s, r in redrawn.items()} == {
            s: r.accuracy for s, r in again.items()
        }

    def test_reference_engine_rejects_fixed_subset_without_attributes(
        self, tie_free_profiling
    ):
        dataset, profiling = tie_free_profiling
        with pytest.raises(InvalidParameterError):
            ReferenceReidentificationAttack(dataset, rng=0).evaluate_profiling(
                profiling, model="PK-RI", redraw_attributes=False
            )


# --------------------------------------------------------------------------- #
# regression pins: scaled-down fig-2 / fig-4 quick grids
# --------------------------------------------------------------------------- #
class TestQuickGridPins:
    """Exact row pins freezing the incremental engine's RNG stream.

    The incremental engine consumes a different tie-break stream than the
    reference (one uniform per user instead of a jitter matrix), so these
    values differ from the pre-incremental rows wherever ties exist; they
    were verified statistically equivalent against the reference engine
    (``benchmarks/bench_reident_matching.py`` gates the same property in CI).
    """

    def test_fig2_quick_rows_pinned(self):
        from repro.experiments.reident_smp import run_reidentification_smp

        rows = run_reidentification_smp(
            dataset_name="adult",
            n=250,
            protocols=("GRR", "OUE"),
            epsilons=(2.0, 8.0),
            num_surveys=3,
            top_ks=(1, 10),
            seed=123,
            figure="fig2",
        )
        pinned = {
            ("GRR", 2.0, 2, 1): 3.2,
            ("GRR", 2.0, 3, 1): 6.4,
            ("GRR", 2.0, 2, 10): 20.0,
            ("GRR", 2.0, 3, 10): 28.4,
            ("GRR", 8.0, 2, 1): 25.6,
            ("GRR", 8.0, 3, 1): 51.6,
            ("GRR", 8.0, 2, 10): 74.4,
            ("GRR", 8.0, 3, 10): 94.4,
            ("OUE", 2.0, 2, 1): 1.2,
            ("OUE", 2.0, 3, 1): 3.2,
            ("OUE", 2.0, 2, 10): 12.4,
            ("OUE", 2.0, 3, 10): 18.4,
            ("OUE", 8.0, 2, 1): 11.2,
            ("OUE", 8.0, 3, 1): 12.4,
            ("OUE", 8.0, 2, 10): 34.8,
            ("OUE", 8.0, 3, 10): 43.2,
        }
        actual = {
            (row["protocol"], row["privacy_level"], row["surveys"], row["top_k"]):
            row["rid_acc_pct"]
            for row in rows
        }
        assert actual.keys() == pinned.keys()
        for key, expected in pinned.items():
            assert actual[key] == pytest.approx(expected), key

    def test_fig4_quick_rows_pinned(self):
        from repro.experiments.reident_rsfd import run_reidentification_rsfd

        rows = run_reidentification_rsfd(
            dataset_name="adult",
            n=300,
            epsilons=(4.0,),
            num_surveys=2,
            top_ks=(1, 10),
            seed=123,
            figure="fig4",
        )
        pinned = {(2, 1): 5 / 3, (2, 10): 11.0}
        actual = {(row["surveys"], row["top_k"]): row["rid_acc_pct"] for row in rows}
        assert actual.keys() == pinned.keys()
        for key, expected in pinned.items():
            assert actual[key] == pytest.approx(expected), key
