"""Tests for the re-identification attack."""

import numpy as np
import pytest

from repro.attacks.profile import UNKNOWN, Survey, build_profiles_smp
from repro.attacks.reidentification import (
    ReidentificationAttack,
    match_distances,
    top_k_candidates,
)
from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import InvalidParameterError


@pytest.fixture
def unique_dataset():
    """Every user has a unique record, so exact profiles re-identify perfectly."""
    domain = Domain.from_sizes([10, 10])
    values = np.array([[i % 10, i // 10] for i in range(100)])
    return TabularDataset(domain, values)


class TestMatching:
    def test_distance_counts_disagreements_on_known_attributes(self):
        profiles = np.array([[1, UNKNOWN, 3]])
        background = np.array([[1, 9, 3], [1, 9, 4], [2, 9, 4]])
        distances = match_distances(profiles, background)
        np.testing.assert_array_equal(distances, [[0, 1, 2]])

    def test_unknown_attributes_are_ignored(self):
        profiles = np.array([[UNKNOWN, UNKNOWN]])
        background = np.array([[3, 4], [5, 6]])
        distances = match_distances(profiles, background)
        np.testing.assert_array_equal(distances, [[0, 0]])

    def test_partial_background_columns(self):
        profiles = np.array([[1, 2, 3]])
        background = np.array([[9, 3]])  # only attributes 1 and 2 known
        distances = match_distances(profiles, background, background_attributes=[1, 2])
        np.testing.assert_array_equal(distances, [[1]])

    def test_block_slicing(self):
        profiles = np.array([[1, 1], [2, 2], [3, 3]])
        background = np.array([[1, 1], [2, 2], [3, 3]])
        distances = match_distances(profiles, background, block=slice(1, 3))
        assert distances.shape == (2, 3)
        assert distances[0, 1] == 0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            match_distances(np.zeros(3), np.zeros((2, 3)))
        with pytest.raises(InvalidParameterError):
            match_distances(np.zeros((2, 3)), np.zeros((2, 3)), background_attributes=[0])


class TestDecision:
    def test_top_k_selects_minimum_distance(self):
        distances = np.array([[3, 0, 5, 1]])
        candidates = top_k_candidates(distances, 2, np.random.default_rng(0))
        assert set(candidates[0].tolist()) == {1, 3}

    def test_ties_broken_randomly(self):
        distances = np.zeros((1, 50), dtype=np.int32)
        rng = np.random.default_rng(0)
        picks = {tuple(sorted(top_k_candidates(distances, 3, rng)[0])) for _ in range(20)}
        assert len(picks) > 1

    def test_invalid_top_k(self):
        with pytest.raises(InvalidParameterError):
            top_k_candidates(np.zeros((1, 3)), 0, np.random.default_rng(0))


class TestReidentificationAttack:
    def test_exact_profiles_reidentify_unique_users(self, unique_dataset):
        attack = ReidentificationAttack(unique_dataset, rng=0)
        result = attack.full_knowledge(unique_dataset.data.copy(), top_k=1)
        assert result.accuracy == 1.0
        assert result.baseline == pytest.approx(1 / 100)
        assert result.lift > 50

    def test_empty_profiles_reduce_to_random_guessing(self, unique_dataset):
        attack = ReidentificationAttack(unique_dataset, rng=0)
        empty = np.full_like(unique_dataset.data, UNKNOWN)
        result = attack.full_knowledge(empty, top_k=10)
        assert result.accuracy == pytest.approx(result.baseline, abs=0.08)

    def test_partial_knowledge_weaker_than_full(self, unique_dataset):
        attack = ReidentificationAttack(unique_dataset, rng=0)
        profiles = unique_dataset.data.copy().astype(np.int64)
        full = attack.full_knowledge(profiles, top_k=1)
        partial = attack.partial_knowledge(profiles, top_k=1, attributes=[0])
        assert partial.accuracy <= full.accuracy
        assert partial.metadata["model"] == "PK-RI"

    def test_top_k_accuracy_monotone(self, unique_dataset):
        attack = ReidentificationAttack(unique_dataset, rng=0)
        noisy = unique_dataset.data.copy().astype(np.int64)
        noisy[::2, 0] = (noisy[::2, 0] + 1) % 10  # corrupt half the profiles
        top1 = attack.full_knowledge(noisy, top_k=1)
        top10 = attack.full_knowledge(noisy, top_k=10)
        assert top10.accuracy >= top1.accuracy

    def test_size_mismatch_requires_true_ids(self, unique_dataset):
        attack = ReidentificationAttack(unique_dataset, rng=0)
        with pytest.raises(InvalidParameterError):
            attack.attack(unique_dataset.data[:10].copy(), top_k=1, true_ids=np.arange(5))

    def test_evaluate_profiling_returns_expected_keys(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * 3
        profiling = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=6.0, metric="uniform", rng=1
        )
        attack = ReidentificationAttack(small_dataset, rng=0)
        results = attack.evaluate_profiling(profiling, top_k=10, model="FK-RI", min_surveys=2)
        assert set(results.keys()) == {2, 3}
        with pytest.raises(InvalidParameterError):
            attack.evaluate_profiling(profiling, model="bogus")

    def test_more_surveys_do_not_reduce_accuracy(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * 3
        profiling = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=8.0, metric="uniform", rng=1
        )
        attack = ReidentificationAttack(small_dataset, rng=0)
        results = attack.evaluate_profiling(profiling, top_k=10, model="FK-RI", min_surveys=1)
        accuracies = [results[i].accuracy for i in sorted(results)]
        assert accuracies[-1] >= accuracies[0]


class TestTieBreakingDeterminism:
    def test_equal_distance_ties_identical_across_dtypes(self):
        """Regression: jitter is taken in float64 explicitly, so a fixed seed
        selects the same candidates no matter the distance dtype."""
        base = np.array([[2, 2, 2, 2, 2, 0, 0, 2]])
        reference = None
        for dtype in (np.int32, np.int64, np.float32, np.float64):
            candidates = top_k_candidates(
                base.astype(dtype), 3, np.random.default_rng(1234)
            )
            if reference is None:
                reference = candidates
            else:
                np.testing.assert_array_equal(candidates, reference)

    def test_same_seed_same_ties_repeatedly(self):
        distances = np.zeros((4, 20), dtype=np.int32)
        first = top_k_candidates(distances, 5, np.random.default_rng(7))
        second = top_k_candidates(distances, 5, np.random.default_rng(7))
        np.testing.assert_array_equal(first, second)

    def test_jitter_never_reorders_distinct_integer_distances(self):
        rng = np.random.default_rng(0)
        for trial in range(25):
            distances = rng.integers(0, 10, size=(1, 30))
            best = top_k_candidates(distances, 1, np.random.default_rng(trial))[0, 0]
            assert distances[0, best] == distances.min()
