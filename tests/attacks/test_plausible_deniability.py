"""Tests for the plausible-deniability attack module."""

import numpy as np
import pytest

from repro.attacks.plausible_deniability import (
    expected_profiling_accuracy,
    expected_single_report_accuracy,
    profiling_accuracy_curve,
    single_report_attack_accuracy,
)
from repro.exceptions import InvalidParameterError


class TestSingleReport:
    @pytest.mark.parametrize("protocol", ["GRR", "SS", "SUE", "OUE"])
    def test_empirical_matches_analytical(self, protocol):
        values = np.random.default_rng(0).integers(0, 12, size=20000)
        empirical = single_report_attack_accuracy(protocol, 2.0, values, rng=1, k=12)
        analytical = expected_single_report_accuracy(protocol, 2.0, 12)
        assert empirical == pytest.approx(analytical, abs=0.02)

    def test_olh_empirical_does_not_exceed_analytical_bound(self):
        values = np.random.default_rng(0).integers(0, 30, size=20000)
        empirical = single_report_attack_accuracy("OLH", 2.0, values, rng=1, k=30)
        analytical = expected_single_report_accuracy("OLH", 2.0, 30)
        assert empirical <= analytical * 1.1

    def test_empty_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            single_report_attack_accuracy("GRR", 1.0, np.array([]))

    def test_accuracy_increases_with_epsilon(self):
        values = np.random.default_rng(0).integers(0, 8, size=10000)
        low = single_report_attack_accuracy("GRR", 1.0, values, rng=1, k=8)
        high = single_report_attack_accuracy("GRR", 6.0, values, rng=1, k=8)
        assert high > low


class TestProfiling:
    SIZES = (74, 7, 16)

    def test_uniform_metric_product(self):
        total = expected_profiling_accuracy("GRR", 5.0, self.SIZES, "uniform")
        singles = [expected_single_report_accuracy("GRR", 5.0, k) for k in self.SIZES]
        assert total == pytest.approx(np.prod(singles))

    def test_non_uniform_below_uniform(self):
        assert expected_profiling_accuracy(
            "SUE", 5.0, self.SIZES, "non-uniform"
        ) < expected_profiling_accuracy("SUE", 5.0, self.SIZES, "uniform")

    def test_unknown_metric_rejected(self):
        with pytest.raises(InvalidParameterError):
            expected_profiling_accuracy("GRR", 1.0, self.SIZES, "sometimes")

    def test_curve_shape_and_monotonicity(self):
        epsilons = [1, 2, 4, 8, 10]
        curve = profiling_accuracy_curve("GRR", epsilons, self.SIZES)
        assert curve.shape == (5,)
        assert list(curve) == sorted(curve)

    def test_fig1_qualitative_ordering(self):
        # GRR / SS / SUE dominate OLH / OUE at high epsilon (Fig. 1a)
        eps = 9.0
        high = min(
            expected_profiling_accuracy(p, eps, self.SIZES) for p in ("GRR", "SS", "SUE")
        )
        low = max(
            expected_profiling_accuracy(p, eps, self.SIZES) for p in ("OLH", "OUE")
        )
        assert high > low
