"""Tests for multi-survey profile building."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.attacks.profile as profile_module
from repro.attacks.profile import (
    UNKNOWN,
    DeltaRecorder,
    ProfilingResult,
    SnapshotView,
    Survey,
    SurveyDelta,
    build_profiles_rsfd,
    build_profiles_smp,
    plan_surveys,
)
from repro.exceptions import InvalidParameterError
from repro.ml.naive_bayes import BernoulliNaiveBayes


class TestSurveyPlanning:
    def test_survey_validation(self):
        survey = Survey((0, 2, 3))
        assert survey.d == 3
        with pytest.raises(InvalidParameterError):
            Survey(())
        with pytest.raises(InvalidParameterError):
            Survey((1, 1))

    def test_plan_respects_minimum_size(self):
        surveys = plan_surveys(d=10, num_surveys=20, rng=0, min_fraction=0.5)
        assert len(surveys) == 20
        for survey in surveys:
            assert 5 <= survey.d <= 10
            assert all(0 <= a < 10 for a in survey.attributes)

    def test_plan_is_deterministic(self):
        a = plan_surveys(6, 4, rng=3)
        b = plan_surveys(6, 4, rng=3)
        assert [s.attributes for s in a] == [s.attributes for s in b]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            plan_surveys(1, 3)
        with pytest.raises(InvalidParameterError):
            plan_surveys(5, 0)
        with pytest.raises(InvalidParameterError):
            plan_surveys(5, 3, min_fraction=1.5)


class TestSMPProfiling:
    def test_snapshots_grow_monotonically(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 3, rng=0, min_fraction=0.6)
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        assert len(result.snapshots) == 3
        known = [int((snap != UNKNOWN).sum()) for snap in result.snapshots]
        assert known == sorted(known)
        # after the first survey every user knows exactly one attribute
        assert (result.snapshots[0] != UNKNOWN).sum(axis=1).tolist() == [1] * small_dataset.n

    def test_uniform_metric_accumulates_distinct_attributes(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * small_dataset.d
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        # with d surveys over all attributes and no replacement, everyone ends
        # up with a complete profile
        assert (result.final_profile != UNKNOWN).all()

    def test_non_uniform_metric_grows_slower(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * small_dataset.d
        uniform = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        non_uniform = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="non-uniform", rng=1
        )
        assert (non_uniform.final_profile != UNKNOWN).sum() < (
            uniform.final_profile != UNKNOWN
        ).sum()

    def test_high_epsilon_profiles_are_mostly_correct(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))]
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=10.0, metric="uniform", rng=1
        )
        profile = result.final_profile
        known = profile != UNKNOWN
        correct = (profile == small_dataset.data) & known
        assert correct.sum() / known.sum() > 0.9

    def test_pie_metric_reports_small_domains_in_clear(self, small_dataset):
        # with beta = 0.5 and tiny domains, everything is reported in the clear,
        # so the inferred values match the truth exactly
        surveys = [Survey(tuple(range(small_dataset.d)))]
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=1.0,
            metric="uniform", rng=1, pie_beta=0.5,
        )
        profile = result.final_profile
        known = profile != UNKNOWN
        assert ((profile == small_dataset.data) | ~known).all()

    def test_invalid_metric_rejected(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            build_profiles_smp(
                small_dataset, [Survey((0, 1))], protocol="GRR", epsilon=1.0, metric="bogus"
            )


class TestRSFDProfiling:
    def test_chained_attack_produces_profiles(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 2, rng=0, min_fraction=0.6)
        result = build_profiles_rsfd(
            small_dataset,
            surveys,
            epsilon=4.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=BernoulliNaiveBayes,
            rng=1,
        )
        assert len(result.snapshots) == 2
        # the attacker always assigns one predicted attribute per survey
        assert (result.snapshots[0] != UNKNOWN).any()
        assert result.extra["solution"] == "RS+FD"

    def test_rsfd_profiles_less_accurate_than_smp(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * 2
        smp = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=6.0, metric="uniform", rng=1
        )
        rsfd = build_profiles_rsfd(
            small_dataset,
            surveys,
            epsilon=6.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=BernoulliNaiveBayes,
            rng=1,
        )

        def correctness(result):
            profile = result.final_profile
            known = profile != UNKNOWN
            return ((profile == small_dataset.data) & known).sum() / max(1, known.sum())

        assert correctness(rsfd) < correctness(smp)


class TestNKAmortization:
    """Amortizing NK training across surveys sharing a domain (ISSUE 4)."""

    def _build(self, dataset, surveys, amortize, rng, factory=BernoulliNaiveBayes):
        return build_profiles_rsfd(
            dataset,
            surveys,
            epsilon=4.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=factory,
            amortize_nk=amortize,
            rng=rng,
        )

    def test_identical_when_no_surveys_share_a_domain(self, small_dataset):
        """Distinct attribute sets never amortize, so both paths are
        byte-identical (the default flip cannot perturb such plans)."""
        surveys = [Survey((0, 1)), Survey((1, 2)), Survey((0, 2))]
        amortized = self._build(small_dataset, surveys, True, rng=7)
        per_survey = self._build(small_dataset, surveys, False, rng=7)
        assert all(amortized.extra["nk_trained"])
        for a, b in zip(amortized.snapshots, per_survey.snapshots):
            np.testing.assert_array_equal(a, b)

    def test_trains_once_per_distinct_domain(self, small_dataset):
        calls = []

        def counting_factory():
            calls.append(1)
            return BernoulliNaiveBayes()

        surveys = [Survey((0, 1, 2)), Survey((0, 1, 2)), Survey((1, 2))]
        result = self._build(small_dataset, surveys, True, rng=1, factory=counting_factory)
        assert len(calls) == 2  # two distinct attribute sets
        assert result.extra["nk_trained"] == [True, False, True]
        calls.clear()
        per_survey = self._build(
            small_dataset, surveys, False, rng=1, factory=counting_factory
        )
        assert len(calls) == 3  # one training per survey
        assert per_survey.extra["nk_trained"] == [True, True, True]

    def test_attack_accuracy_matches_per_survey_path(self, small_dataset):
        """Regression pin: reusing the classifier must not change the NK
        attack's accuracy beyond seed-to-seed noise.

        The first survey trains in both paths (exactly equal); later surveys
        of the same domain reuse a classifier trained on synthetic profiles
        drawn from the same marginals, so their per-survey accuracies are
        compared in the mean over seeds.
        """
        surveys = [Survey((0, 1, 2))] * 3
        amortized_acc, per_survey_acc = [], []
        for seed in range(4):
            amortized = self._build(small_dataset, surveys, True, rng=seed)
            per_survey = self._build(small_dataset, surveys, False, rng=seed)
            assert amortized.extra["nk_accuracy"][0] == per_survey.extra["nk_accuracy"][0]
            amortized_acc.append(amortized.extra["nk_accuracy"])
            per_survey_acc.append(per_survey.extra["nk_accuracy"])
        mean_amortized = float(np.mean(amortized_acc))
        mean_per_survey = float(np.mean(per_survey_acc))
        assert abs(mean_amortized - mean_per_survey) < 0.03
        # both stay clear of a broken classifier (d=3 random guessing = 1/3)
        assert mean_amortized > 1.0 / small_dataset.d - 0.05


# --------------------------------------------------------------------------- #
# delta-backed snapshot storage (ISSUE 5)
# --------------------------------------------------------------------------- #
class _InstrumentedRecorder(DeltaRecorder):
    """Recorder that also keeps the dense per-survey copies the builders
    historically stored, as the independent ground truth for reconstruction."""

    def __init__(self, n, d):
        super().__init__(n, d)
        self.dense_snapshots = []

    def commit_survey(self):
        delta = super().commit_survey()
        self.dense_snapshots.append(self.profile.copy())
        return delta


class TestDeltaReconstruction:
    def _intercept(self, monkeypatch):
        captured = []

        def factory(n, d):
            recorder = _InstrumentedRecorder(n, d)
            captured.append(recorder)
            return recorder

        monkeypatch.setattr(profile_module, "DeltaRecorder", factory)
        return captured

    def test_smp_snapshots_byte_identical_to_dense_copies(
        self, small_dataset, monkeypatch
    ):
        captured = self._intercept(monkeypatch)
        surveys = plan_surveys(small_dataset.d, 4, rng=2, min_fraction=0.6)
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=3
        )
        (recorder,) = captured
        assert len(result.snapshots) == len(recorder.dense_snapshots) == 4
        for reconstructed, dense in zip(result.snapshots, recorder.dense_snapshots):
            assert reconstructed.dtype == dense.dtype
            np.testing.assert_array_equal(reconstructed, dense)

    def test_rsfd_snapshots_byte_identical_to_dense_copies(
        self, small_dataset, monkeypatch
    ):
        captured = self._intercept(monkeypatch)
        surveys = [Survey(tuple(range(small_dataset.d)))] * 3
        result = build_profiles_rsfd(
            small_dataset,
            surveys,
            epsilon=4.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=BernoulliNaiveBayes,
            rng=3,
        )
        (recorder,) = captured
        assert len(result.snapshots) == 3
        # RS+FD rewrites cells across surveys, so this also exercises the
        # overwrite path of the delta replay
        for reconstructed, dense in zip(result.snapshots, recorder.dense_snapshots):
            np.testing.assert_array_equal(reconstructed, dense)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           num_surveys=st.integers(min_value=1, max_value=5))
    def test_recorder_replay_matches_naive_dense_accumulation(self, seed, num_surveys):
        """Arbitrary write sequences (including overwrites) replay exactly."""
        rng = np.random.default_rng(seed)
        n, d = 17, 5
        recorder = DeltaRecorder(n, d)
        naive = np.full((n, d), UNKNOWN, dtype=np.int64)
        dense_truth = []
        for _ in range(num_surveys):
            written = set()
            for _ in range(int(rng.integers(0, 4))):
                attribute = int(rng.integers(0, d))
                candidates = [r for r in range(n) if (r, attribute) not in written]
                rows = rng.choice(
                    candidates, size=min(len(candidates), int(rng.integers(1, 8))),
                    replace=False,
                )
                values = rng.integers(0, 9, size=rows.size)
                recorder.write(rows, attribute, values)
                naive[rows, attribute] = values
                written.update((int(r), attribute) for r in rows)
            recorder.commit_survey()
            dense_truth.append(naive.copy())
        result = ProfilingResult(
            deltas=recorder.deltas, shape=(n, d), surveys=[], metric="uniform"
        )
        for reconstructed, dense in zip(result.snapshots, dense_truth):
            np.testing.assert_array_equal(reconstructed, dense)


class TestProfilingResultDeltas:
    def test_no_dense_snapshot_copies_are_retained(self):
        # the adult surrogate's d=10 shows the storage win (each survey
        # writes ~1 of d cells per user); small_dataset's d=3 would tie
        from repro.datasets.loaders import load_dataset

        dataset = load_dataset("adult", n=200, rng=0)
        surveys = plan_surveys(dataset.d, 3, rng=0, min_fraction=0.6)
        result = build_profiles_smp(
            dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        assert isinstance(result.snapshots, SnapshotView)
        assert len(result.deltas) == 3
        n, d = result.shape
        dense_bytes = len(result.deltas) * n * d * 8
        delta_bytes = sum(
            delta.rows.nbytes + delta.attributes.nbytes + delta.values.nbytes
            for delta in result.deltas
        )
        assert delta_bytes < dense_bytes

    def test_snapshot_view_indexing(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 3, rng=0, min_fraction=0.6)
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        view = result.snapshots
        np.testing.assert_array_equal(view[-1], view[2])
        np.testing.assert_array_equal(result.final_profile, view[2])
        sliced = view[1:]
        assert len(sliced) == 2
        np.testing.assert_array_equal(sliced[0], view[1])
        for index, snapshot in enumerate(view):
            np.testing.assert_array_equal(snapshot, view[index])
        with pytest.raises(IndexError):
            view[3]
        with pytest.raises(IndexError):
            view[-4]

    def test_from_snapshots_roundtrip(self):
        first = np.array([[UNKNOWN, 2], [1, UNKNOWN]], dtype=np.int64)
        second = np.array([[3, 2], [1, 0]], dtype=np.int64)
        result = ProfilingResult.from_snapshots(
            [first, second], surveys=[], metric="uniform"
        )
        assert result.shape == (2, 2)
        np.testing.assert_array_equal(result.snapshots[0], first)
        np.testing.assert_array_equal(result.snapshots[1], second)
        # diffing records exactly the three cells that changed hands
        assert result.deltas[0].size == 2
        assert result.deltas[1].size == 2

    def test_from_snapshots_validation(self):
        with pytest.raises(InvalidParameterError):
            ProfilingResult.from_snapshots([], surveys=[], metric="uniform")
        with pytest.raises(InvalidParameterError):
            ProfilingResult.from_snapshots(
                [np.zeros((2, 2)), np.zeros((3, 2))], surveys=[], metric="uniform"
            )

    def test_survey_delta_validation(self):
        with pytest.raises(InvalidParameterError):
            SurveyDelta(
                rows=np.zeros(2, dtype=np.int64),
                attributes=np.zeros(3, dtype=np.int64),
                values=np.zeros(2, dtype=np.int64),
            )

    def test_known_counts_from_deltas(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 2, rng=0, min_fraction=0.6)
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        counts = result.known_counts(0)
        assert (counts == 1).all()  # one attribute inferred after survey 1
        assert (result.known_counts(-1) >= counts).all()
