"""Tests for multi-survey profile building."""

import numpy as np
import pytest

from repro.attacks.profile import (
    UNKNOWN,
    Survey,
    build_profiles_rsfd,
    build_profiles_smp,
    plan_surveys,
)
from repro.exceptions import InvalidParameterError
from repro.ml.naive_bayes import BernoulliNaiveBayes


class TestSurveyPlanning:
    def test_survey_validation(self):
        survey = Survey((0, 2, 3))
        assert survey.d == 3
        with pytest.raises(InvalidParameterError):
            Survey(())
        with pytest.raises(InvalidParameterError):
            Survey((1, 1))

    def test_plan_respects_minimum_size(self):
        surveys = plan_surveys(d=10, num_surveys=20, rng=0, min_fraction=0.5)
        assert len(surveys) == 20
        for survey in surveys:
            assert 5 <= survey.d <= 10
            assert all(0 <= a < 10 for a in survey.attributes)

    def test_plan_is_deterministic(self):
        a = plan_surveys(6, 4, rng=3)
        b = plan_surveys(6, 4, rng=3)
        assert [s.attributes for s in a] == [s.attributes for s in b]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            plan_surveys(1, 3)
        with pytest.raises(InvalidParameterError):
            plan_surveys(5, 0)
        with pytest.raises(InvalidParameterError):
            plan_surveys(5, 3, min_fraction=1.5)


class TestSMPProfiling:
    def test_snapshots_grow_monotonically(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 3, rng=0, min_fraction=0.6)
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        assert len(result.snapshots) == 3
        known = [int((snap != UNKNOWN).sum()) for snap in result.snapshots]
        assert known == sorted(known)
        # after the first survey every user knows exactly one attribute
        assert (result.snapshots[0] != UNKNOWN).sum(axis=1).tolist() == [1] * small_dataset.n

    def test_uniform_metric_accumulates_distinct_attributes(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * small_dataset.d
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        # with d surveys over all attributes and no replacement, everyone ends
        # up with a complete profile
        assert (result.final_profile != UNKNOWN).all()

    def test_non_uniform_metric_grows_slower(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * small_dataset.d
        uniform = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="uniform", rng=1
        )
        non_uniform = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=4.0, metric="non-uniform", rng=1
        )
        assert (non_uniform.final_profile != UNKNOWN).sum() < (
            uniform.final_profile != UNKNOWN
        ).sum()

    def test_high_epsilon_profiles_are_mostly_correct(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))]
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=10.0, metric="uniform", rng=1
        )
        profile = result.final_profile
        known = profile != UNKNOWN
        correct = (profile == small_dataset.data) & known
        assert correct.sum() / known.sum() > 0.9

    def test_pie_metric_reports_small_domains_in_clear(self, small_dataset):
        # with beta = 0.5 and tiny domains, everything is reported in the clear,
        # so the inferred values match the truth exactly
        surveys = [Survey(tuple(range(small_dataset.d)))]
        result = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=1.0,
            metric="uniform", rng=1, pie_beta=0.5,
        )
        profile = result.final_profile
        known = profile != UNKNOWN
        assert ((profile == small_dataset.data) | ~known).all()

    def test_invalid_metric_rejected(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            build_profiles_smp(
                small_dataset, [Survey((0, 1))], protocol="GRR", epsilon=1.0, metric="bogus"
            )


class TestRSFDProfiling:
    def test_chained_attack_produces_profiles(self, small_dataset):
        surveys = plan_surveys(small_dataset.d, 2, rng=0, min_fraction=0.6)
        result = build_profiles_rsfd(
            small_dataset,
            surveys,
            epsilon=4.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=BernoulliNaiveBayes,
            rng=1,
        )
        assert len(result.snapshots) == 2
        # the attacker always assigns one predicted attribute per survey
        assert (result.snapshots[0] != UNKNOWN).any()
        assert result.extra["solution"] == "RS+FD"

    def test_rsfd_profiles_less_accurate_than_smp(self, small_dataset):
        surveys = [Survey(tuple(range(small_dataset.d)))] * 2
        smp = build_profiles_smp(
            small_dataset, surveys, protocol="GRR", epsilon=6.0, metric="uniform", rng=1
        )
        rsfd = build_profiles_rsfd(
            small_dataset,
            surveys,
            epsilon=6.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=BernoulliNaiveBayes,
            rng=1,
        )

        def correctness(result):
            profile = result.final_profile
            known = profile != UNKNOWN
            return ((profile == small_dataset.data) & known).sum() / max(1, known.sum())

        assert correctness(rsfd) < correctness(smp)


class TestNKAmortization:
    """Amortizing NK training across surveys sharing a domain (ISSUE 4)."""

    def _build(self, dataset, surveys, amortize, rng, factory=BernoulliNaiveBayes):
        return build_profiles_rsfd(
            dataset,
            surveys,
            epsilon=4.0,
            variant="grr",
            metric="uniform",
            synthetic_factor=0.5,
            classifier_factory=factory,
            amortize_nk=amortize,
            rng=rng,
        )

    def test_identical_when_no_surveys_share_a_domain(self, small_dataset):
        """Distinct attribute sets never amortize, so both paths are
        byte-identical (the default flip cannot perturb such plans)."""
        surveys = [Survey((0, 1)), Survey((1, 2)), Survey((0, 2))]
        amortized = self._build(small_dataset, surveys, True, rng=7)
        per_survey = self._build(small_dataset, surveys, False, rng=7)
        assert all(amortized.extra["nk_trained"])
        for a, b in zip(amortized.snapshots, per_survey.snapshots):
            np.testing.assert_array_equal(a, b)

    def test_trains_once_per_distinct_domain(self, small_dataset):
        calls = []

        def counting_factory():
            calls.append(1)
            return BernoulliNaiveBayes()

        surveys = [Survey((0, 1, 2)), Survey((0, 1, 2)), Survey((1, 2))]
        result = self._build(small_dataset, surveys, True, rng=1, factory=counting_factory)
        assert len(calls) == 2  # two distinct attribute sets
        assert result.extra["nk_trained"] == [True, False, True]
        calls.clear()
        per_survey = self._build(
            small_dataset, surveys, False, rng=1, factory=counting_factory
        )
        assert len(calls) == 3  # one training per survey
        assert per_survey.extra["nk_trained"] == [True, True, True]

    def test_attack_accuracy_matches_per_survey_path(self, small_dataset):
        """Regression pin: reusing the classifier must not change the NK
        attack's accuracy beyond seed-to-seed noise.

        The first survey trains in both paths (exactly equal); later surveys
        of the same domain reuse a classifier trained on synthetic profiles
        drawn from the same marginals, so their per-survey accuracies are
        compared in the mean over seeds.
        """
        surveys = [Survey((0, 1, 2))] * 3
        amortized_acc, per_survey_acc = [], []
        for seed in range(4):
            amortized = self._build(small_dataset, surveys, True, rng=seed)
            per_survey = self._build(small_dataset, surveys, False, rng=seed)
            assert amortized.extra["nk_accuracy"][0] == per_survey.extra["nk_accuracy"][0]
            amortized_acc.append(amortized.extra["nk_accuracy"])
            per_survey_acc.append(per_survey.extra["nk_accuracy"])
        mean_amortized = float(np.mean(amortized_acc))
        mean_per_survey = float(np.mean(per_survey_acc))
        assert abs(mean_amortized - mean_per_survey) < 0.03
        # both stay clear of a broken classifier (d=3 random guessing = 1/3)
        assert mean_amortized > 1.0 / small_dataset.d - 0.05
