"""Tests for the random-guess baselines."""

import numpy as np
import pytest

from repro.attacks.baselines import (
    empirical_random_attribute_guess,
    empirical_random_reidentification,
    random_attribute_baseline,
    random_reidentification_baseline,
    random_value_baseline,
)
from repro.exceptions import InvalidParameterError


class TestAnalyticalBaselines:
    def test_value_baseline(self):
        assert random_value_baseline(4) == 0.25
        with pytest.raises(InvalidParameterError):
            random_value_baseline(1)

    def test_attribute_baseline(self):
        assert random_attribute_baseline(10) == pytest.approx(0.1)
        with pytest.raises(InvalidParameterError):
            random_attribute_baseline(1)

    def test_reidentification_baseline(self):
        assert random_reidentification_baseline(1000, top_k=10) == pytest.approx(0.01)
        assert random_reidentification_baseline(5, top_k=10) == 1.0
        with pytest.raises(InvalidParameterError):
            random_reidentification_baseline(0)


class TestEmpiricalBaselines:
    def test_attribute_guess_close_to_analytical(self):
        truth = np.random.default_rng(0).integers(0, 8, size=20000)
        empirical = empirical_random_attribute_guess(truth, 8, rng=1)
        assert empirical == pytest.approx(1 / 8, abs=0.01)

    def test_reidentification_close_to_analytical(self):
        empirical = empirical_random_reidentification(500, top_k=10, rng=0)
        assert empirical == pytest.approx(10 / 500, abs=0.02)

    def test_empty_truth_rejected(self):
        with pytest.raises(InvalidParameterError):
            empirical_random_attribute_guess(np.array([]), 5)
