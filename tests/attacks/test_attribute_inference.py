"""Tests for the attribute-inference attack on RS+FD / RS+RFD."""

import numpy as np
import pytest

from repro.attacks.attribute_inference import AttributeInferenceAttack
from repro.exceptions import InvalidParameterError
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.multidim.rsfd import RSFD
from repro.multidim.rsrfd import RSRFD
from repro.multidim.smp import SMP


@pytest.fixture
def skewed_dataset(small_domain, rng):
    from repro.core.dataset import TabularDataset

    n = 800
    columns = []
    for attr in small_domain:
        weights = np.arange(attr.size, 0, -1, dtype=float) ** 2
        weights /= weights.sum()
        columns.append(rng.choice(attr.size, size=n, p=weights))
    return TabularDataset.from_columns(columns, small_domain, name="skewed")


def fast_classifier():
    return BernoulliNaiveBayes()


class TestConstruction:
    def test_rejects_non_rsfd_solution(self, small_dataset):
        smp = SMP(small_dataset.domain, 1.0, rng=0)
        with pytest.raises(InvalidParameterError):
            AttributeInferenceAttack(smp)


class TestAttackModels:
    def test_nk_returns_predictions_for_all_users(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 4.0, variant="ue-z", ue_kind="SUE", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        result = attack.no_knowledge(reports, synthetic_factor=1.0)
        assert result.model == "NK"
        assert result.predictions.shape == (skewed_dataset.n,)
        assert result.baseline == pytest.approx(1.0 / skewed_dataset.d)
        assert 0.0 <= result.accuracy <= 1.0

    def test_ue_z_fake_data_is_easily_detected(self, skewed_dataset):
        # RS+FD[SUE-z] at high epsilon leaks the sampled attribute (Sec. 4.3)
        solution = RSFD(skewed_dataset.domain, 8.0, variant="ue-z", ue_kind="SUE", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        result = attack.no_knowledge(reports, synthetic_factor=1.0)
        assert result.accuracy > 2 * result.baseline

    def test_pk_uses_compromised_profiles(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 6.0, variant="ue-z", ue_kind="OUE", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        result = attack.partial_knowledge(reports, compromised_fraction=0.3)
        assert result.model == "PK"
        # test users exclude the compromised ones
        assert result.test_indices.shape[0] == skewed_dataset.n - round(0.3 * skewed_dataset.n)
        assert result.accuracy > result.baseline

    def test_hybrid_combines_sources(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 6.0, variant="ue-z", ue_kind="OUE", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        result = attack.hybrid(reports, synthetic_factor=1.0, compromised_fraction=0.1)
        assert result.model == "HM"
        assert result.accuracy > result.baseline

    def test_run_dispatch(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 4.0, variant="grr", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        assert attack.run("nk", reports, synthetic_factor=0.5).model == "NK"
        with pytest.raises(InvalidParameterError):
            attack.run("zz", reports)

    def test_invalid_fractions_rejected(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 4.0, variant="grr", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        with pytest.raises(InvalidParameterError):
            attack.partial_knowledge(reports, compromised_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            attack.partial_knowledge(reports, compromised_fraction=1.0)
        with pytest.raises(InvalidParameterError):
            attack.no_knowledge(reports, synthetic_factor=0.0)


class TestCountermeasure:
    def test_rsrfd_reduces_aif_accuracy_vs_rsfd_ue_z(self, skewed_dataset):
        """The countermeasure's headline privacy claim (Fig. 6 vs Fig. 3)."""
        epsilon = 8.0
        rsfd = RSFD(skewed_dataset.domain, epsilon, variant="ue-z", ue_kind="SUE", rng=0)
        rsfd_reports = rsfd.collect(skewed_dataset)
        rsfd_attack = AttributeInferenceAttack(rsfd, classifier_factory=fast_classifier, rng=1)
        rsfd_accuracy = rsfd_attack.no_knowledge(rsfd_reports, 1.0).accuracy

        priors = skewed_dataset.all_frequencies()
        rsrfd = RSRFD(skewed_dataset.domain, epsilon, priors, variant="ue-r", ue_kind="SUE", rng=0)
        rsrfd_reports = rsrfd.collect(skewed_dataset)
        rsrfd_attack = AttributeInferenceAttack(rsrfd, classifier_factory=fast_classifier, rng=1)
        rsrfd_accuracy = rsrfd_attack.no_knowledge(rsrfd_reports, 1.0).accuracy

        assert rsrfd_accuracy < rsfd_accuracy

    def test_predict_sampled_attribute_shape(self, skewed_dataset):
        solution = RSFD(skewed_dataset.domain, 4.0, variant="grr", rng=0)
        reports = solution.collect(skewed_dataset)
        attack = AttributeInferenceAttack(solution, classifier_factory=fast_classifier, rng=1)
        predictions = attack.predict_sampled_attribute(reports, synthetic_factor=0.5)
        assert predictions.shape == (skewed_dataset.n,)
        assert set(np.unique(predictions)) <= set(range(skewed_dataset.d))
