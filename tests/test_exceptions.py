"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DomainMismatchError,
    EstimationError,
    InvalidParameterError,
    InvalidPrivacyBudgetError,
    NotFittedError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidParameterError,
            InvalidPrivacyBudgetError,
            DomainMismatchError,
            NotFittedError,
            EstimationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parameter_errors_are_value_errors(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(DomainMismatchError, ValueError)

    def test_budget_error_is_parameter_error(self):
        assert issubclass(InvalidPrivacyBudgetError, InvalidParameterError)

    def test_runtime_errors(self):
        assert issubclass(NotFittedError, RuntimeError)
        assert issubclass(EstimationError, RuntimeError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise DomainMismatchError("boom")
