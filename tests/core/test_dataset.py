"""Tests for repro.core.dataset."""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.domain import Domain
from repro.exceptions import DomainMismatchError, InvalidParameterError


@pytest.fixture
def domain():
    return Domain.from_sizes([3, 4], names=["x", "y"])


@pytest.fixture
def dataset(domain):
    data = np.array([[0, 0], [1, 1], [2, 3], [0, 0], [1, 2]])
    return TabularDataset(domain, data, name="demo")


class TestConstruction:
    def test_basic_properties(self, dataset):
        assert dataset.n == 5
        assert dataset.d == 2
        assert dataset.sizes == (3, 4)
        assert len(dataset) == 5

    def test_data_is_read_only(self, dataset):
        with pytest.raises(ValueError):
            dataset.data[0, 0] = 1

    def test_rejects_out_of_domain_values(self, domain):
        with pytest.raises(DomainMismatchError):
            TabularDataset(domain, np.array([[0, 4]]))

    def test_rejects_wrong_dimensionality(self, domain):
        with pytest.raises(DomainMismatchError):
            TabularDataset(domain, np.array([0, 1, 2]))

    def test_from_columns(self, domain):
        ds = TabularDataset.from_columns([np.array([0, 1]), np.array([3, 2])], domain)
        assert ds.n == 2
        assert ds.row(0).tolist() == [0, 3]

    def test_from_columns_wrong_count(self, domain):
        with pytest.raises(DomainMismatchError):
            TabularDataset.from_columns([np.array([0, 1])], domain)


class TestStatistics:
    def test_frequencies_sum_to_one(self, dataset):
        for j in range(dataset.d):
            freqs = dataset.frequencies(j)
            assert freqs.shape == (dataset.sizes[j],)
            assert freqs.sum() == pytest.approx(1.0)

    def test_frequencies_values(self, dataset):
        freqs = dataset.frequencies(0)
        assert freqs.tolist() == pytest.approx([2 / 5, 2 / 5, 1 / 5])

    def test_all_frequencies(self, dataset):
        all_freqs = dataset.all_frequencies()
        assert len(all_freqs) == 2

    def test_uniqueness_full(self, domain):
        data = np.array([[0, 0], [0, 0], [1, 1], [2, 2]])
        ds = TabularDataset(domain, data)
        assert ds.uniqueness() == pytest.approx(0.5)

    def test_uniqueness_subset_of_attributes(self, domain):
        data = np.array([[0, 0], [0, 1], [1, 2], [2, 3]])
        ds = TabularDataset(domain, data)
        # on attribute 0 alone, value 0 appears twice -> only 2/4 unique
        assert ds.uniqueness([0]) == pytest.approx(0.5)
        assert ds.uniqueness([1]) == pytest.approx(1.0)


class TestTransformations:
    def test_project(self, dataset):
        projected = dataset.project([1])
        assert projected.d == 1
        assert projected.domain.names == ("y",)
        np.testing.assert_array_equal(projected.column(0), dataset.column(1))

    def test_sample_users_without_replacement(self, dataset):
        sample, idx = dataset.sample_users(3, rng=0)
        assert sample.n == 3
        assert len(set(idx.tolist())) == 3

    def test_sample_users_too_many(self, dataset):
        with pytest.raises(InvalidParameterError):
            dataset.sample_users(10)

    def test_split_users(self, dataset):
        first, second, idx1, idx2 = dataset.split_users(2, rng=0)
        assert first.n == 2 and second.n == 3
        assert set(idx1.tolist()).isdisjoint(idx2.tolist())
        assert sorted(idx1.tolist() + idx2.tolist()) == list(range(5))

    def test_split_users_invalid_count(self, dataset):
        with pytest.raises(InvalidParameterError):
            dataset.split_users(0)
        with pytest.raises(InvalidParameterError):
            dataset.split_users(5)
