"""Unit tests for the shared bounded-retry policy."""

from __future__ import annotations

import pytest

from repro.core.retry import RetryPolicy, retry_call
from repro.exceptions import InvalidParameterError


class TestRetryPolicy:
    def test_defaults_are_valid(self) -> None:
        policy = RetryPolicy()
        assert policy.max_retries == 5
        assert len(list(policy.delays())) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": 0.0},
            {"base_delay": -0.5},
            {"max_delay": 0.01, "base_delay": 0.05},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
    )
    def test_invalid_parameters_fail_fast(self, kwargs: dict) -> None:
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kwargs)

    def test_exponential_growth_saturates_at_max_delay(self) -> None:
        policy = RetryPolicy(
            max_retries=6, base_delay=0.1, max_delay=0.8, multiplier=2.0, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8, 0.8, 0.8])

    def test_jitter_stays_within_fraction_and_cap(self) -> None:
        policy = RetryPolicy(
            max_retries=8, base_delay=0.1, max_delay=1.0, multiplier=2.0, jitter=0.2
        )
        for attempt in range(8):
            raw = min(1.0, 0.1 * 2.0**attempt)
            delay = policy.delay(attempt, key="cell-x")
            assert delay <= 1.0  # never exceeds the cap, jitter included
            assert abs(delay - raw) <= 0.2 * raw + 1e-12

    def test_jitter_is_deterministic_per_key_and_attempt(self) -> None:
        policy = RetryPolicy(jitter=0.3)
        first = [policy.delay(a, key="cell-a") for a in range(4)]
        again = [policy.delay(a, key="cell-a") for a in range(4)]
        other = [policy.delay(a, key="cell-b") for a in range(4)]
        assert first == again  # reproducible schedule
        assert first != other  # distinct keys decorrelate

    def test_negative_attempt_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            RetryPolicy().delay(-1)


class TestRetryCall:
    def test_success_needs_no_sleep(self) -> None:
        slept: list[float] = []
        assert retry_call(lambda: 42, RetryPolicy(), sleep=slept.append) == 42
        assert slept == []

    def test_retries_until_success_following_the_schedule(self) -> None:
        policy = RetryPolicy(max_retries=5, base_delay=0.1, max_delay=1.0, jitter=0.0)
        failures = [OSError("boom"), OSError("boom")]
        slept: list[float] = []

        def flaky() -> str:
            if failures:
                raise failures.pop(0)
            return "ok"

        assert retry_call(flaky, policy, key="k", sleep=slept.append) == "ok"
        assert slept == pytest.approx([policy.delay(0, key="k"), policy.delay(1, key="k")])

    def test_final_failure_reraises_last_exception_unchanged(self) -> None:
        policy = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.01, jitter=0.0)
        attempts: list[int] = []

        def always_fails() -> None:
            attempts.append(1)
            raise OSError(f"failure {len(attempts)}")

        with pytest.raises(OSError, match="failure 3"):
            retry_call(always_fails, policy, sleep=lambda _: None)
        assert len(attempts) == 3  # first try + max_retries

    def test_non_matching_exception_propagates_immediately(self) -> None:
        attempts: list[int] = []

        def wrong_kind() -> None:
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(wrong_kind, RetryPolicy(), sleep=lambda _: None)
        assert len(attempts) == 1

    def test_custom_retry_on_types(self) -> None:
        failures = [KeyError("x")]

        def flaky() -> str:
            if failures:
                raise failures.pop(0)
            return "ok"

        assert (
            retry_call(
                flaky, RetryPolicy(), retry_on=(KeyError,), sleep=lambda _: None
            )
            == "ok"
        )

    def test_zero_retries_means_one_attempt(self) -> None:
        policy = RetryPolicy(max_retries=0)
        attempts: list[int] = []

        def fails() -> None:
            attempts.append(1)
            raise OSError("boom")

        with pytest.raises(OSError):
            retry_call(fails, policy, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_on_retry_observes_each_attempt(self) -> None:
        policy = RetryPolicy(max_retries=3, base_delay=0.1, max_delay=1.0, jitter=0.0)
        seen: list[tuple[int, str, float]] = []
        failures = [OSError("a"), OSError("b")]

        def flaky() -> str:
            if failures:
                raise failures.pop(0)
            return "ok"

        retry_call(
            flaky,
            policy,
            sleep=lambda _: None,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, str(exc), delay)
            ),
        )
        assert seen == [(0, "a", pytest.approx(0.1)), (1, "b", pytest.approx(0.2))]
