"""Tests for repro.core.composition."""

import math

import pytest

from repro.core.composition import (
    amplified_epsilon,
    deamplified_epsilon,
    parallel_composition,
    sequential_composition,
    split_budget,
    validate_epsilon,
)
from repro.exceptions import InvalidParameterError, InvalidPrivacyBudgetError


class TestValidateEpsilon:
    def test_positive_passes(self):
        assert validate_epsilon(1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_rejected(self, bad):
        with pytest.raises(InvalidPrivacyBudgetError):
            validate_epsilon(bad)


class TestSplitAndComposition:
    def test_split_budget(self):
        assert split_budget(2.0, 4) == pytest.approx(0.5)

    def test_split_budget_invalid_d(self):
        with pytest.raises(InvalidParameterError):
            split_budget(1.0, 0)

    def test_sequential_composition_sums(self):
        assert sequential_composition([0.5, 1.0, 0.25]) == pytest.approx(1.75)

    def test_parallel_composition_max(self):
        assert parallel_composition([0.5, 1.0, 0.25]) == pytest.approx(1.0)

    def test_empty_sequences_rejected(self):
        with pytest.raises(InvalidParameterError):
            sequential_composition([])
        with pytest.raises(InvalidParameterError):
            parallel_composition([])


class TestAmplification:
    def test_formula(self):
        # eps' = ln(d (e^eps - 1) + 1)
        assert amplified_epsilon(1.0, 3) == pytest.approx(math.log(3 * (math.e - 1) + 1))

    def test_amplified_is_larger_for_d_greater_than_one(self):
        assert amplified_epsilon(1.0, 5) > 1.0

    def test_d_equal_one_is_identity(self):
        assert amplified_epsilon(2.0, 1) == pytest.approx(2.0)

    def test_roundtrip_with_deamplification(self):
        for eps in (0.5, 1.0, 4.0):
            for d in (2, 5, 18):
                assert deamplified_epsilon(amplified_epsilon(eps, d), d) == pytest.approx(eps)

    def test_monotone_in_d(self):
        values = [amplified_epsilon(1.0, d) for d in (2, 3, 5, 10)]
        assert values == sorted(values)
