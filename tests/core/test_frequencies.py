"""Tests for repro.core.frequencies."""

import numpy as np
import pytest

from repro.core.frequencies import FrequencyEstimate, averaged_mse, true_frequencies
from repro.exceptions import InvalidParameterError


class TestFrequencyEstimate:
    def test_basic_properties(self):
        est = FrequencyEstimate(np.array([0.5, 0.3, 0.2]), attribute="x", n=100)
        assert est.k == 3
        assert est.attribute == "x"
        assert est.n == 100

    def test_estimates_read_only(self):
        est = FrequencyEstimate(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            est.estimates[0] = 1.0

    def test_as_array_is_writable_copy(self):
        est = FrequencyEstimate(np.array([0.5, 0.5]))
        arr = est.as_array()
        arr[0] = 0.9
        assert est.estimates[0] == 0.5

    def test_rejects_2d(self):
        with pytest.raises(InvalidParameterError):
            FrequencyEstimate(np.zeros((2, 2)))

    def test_clipped(self):
        est = FrequencyEstimate(np.array([-0.1, 0.5, 1.3]))
        assert est.clipped().tolist() == [0.0, 0.5, 1.0]

    def test_normalized_sums_to_one(self):
        est = FrequencyEstimate(np.array([-0.2, 0.4, 0.9]))
        normalized = est.normalized()
        assert normalized.sum() == pytest.approx(1.0)
        assert (normalized >= 0).all()

    def test_normalized_degenerate_falls_back_to_uniform(self):
        est = FrequencyEstimate(np.array([-1.0, -2.0, -0.5]))
        assert est.normalized().tolist() == pytest.approx([1 / 3] * 3)

    def test_mse(self):
        est = FrequencyEstimate(np.array([0.5, 0.5]))
        assert est.mse([0.5, 0.5]) == pytest.approx(0.0)
        assert est.mse([1.0, 0.0]) == pytest.approx(0.25)

    def test_mse_shape_mismatch(self):
        est = FrequencyEstimate(np.array([0.5, 0.5]))
        with pytest.raises(InvalidParameterError):
            est.mse([0.5, 0.3, 0.2])


class TestHelpers:
    def test_true_frequencies(self):
        freqs = true_frequencies(np.array([0, 0, 1, 2]), 4)
        assert freqs.tolist() == pytest.approx([0.5, 0.25, 0.25, 0.0])

    def test_true_frequencies_empty(self):
        assert true_frequencies(np.array([], dtype=int), 3).tolist() == [0, 0, 0]

    def test_true_frequencies_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            true_frequencies(np.array([0, 5]), 3)

    def test_averaged_mse(self):
        estimates = [
            FrequencyEstimate(np.array([0.5, 0.5])),
            FrequencyEstimate(np.array([1.0, 0.0])),
        ]
        truths = [np.array([0.5, 0.5]), np.array([0.0, 1.0])]
        assert averaged_mse(estimates, truths) == pytest.approx((0.0 + 1.0) / 2)

    def test_averaged_mse_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            averaged_mse([FrequencyEstimate(np.array([1.0, 0.0]))], [])
