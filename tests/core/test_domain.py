"""Tests for repro.core.domain."""

import numpy as np
import pytest

from repro.core.domain import Attribute, Domain
from repro.exceptions import DomainMismatchError, InvalidParameterError


class TestAttribute:
    def test_valid_attribute(self):
        attr = Attribute("age", 74)
        assert attr.name == "age"
        assert attr.size == 74
        assert list(attr.values) == list(range(74))

    def test_contains(self):
        attr = Attribute("x", 5)
        assert attr.contains(0)
        assert attr.contains(4)
        assert not attr.contains(5)
        assert not attr.contains(-1)

    def test_size_must_be_at_least_two(self):
        with pytest.raises(InvalidParameterError):
            Attribute("x", 1)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            Attribute("", 3)


class TestDomain:
    def test_from_sizes_default_names(self):
        domain = Domain.from_sizes([3, 4, 5])
        assert domain.d == 3
        assert domain.sizes == (3, 4, 5)
        assert domain.names == ("A1", "A2", "A3")

    def test_from_sizes_custom_names(self):
        domain = Domain.from_sizes([2, 2], names=["sex", "salary"])
        assert domain.names == ("sex", "salary")

    def test_names_sizes_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            Domain.from_sizes([2, 3], names=["only-one"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            Domain.from_sizes([2, 3], names=["x", "x"])

    def test_empty_domain_rejected(self):
        with pytest.raises(InvalidParameterError):
            Domain(())

    def test_index_of(self):
        domain = Domain.from_sizes([2, 3, 4], names=["a", "b", "c"])
        assert domain.index_of("b") == 1
        with pytest.raises(KeyError):
            domain.index_of("missing")

    def test_size_of_and_getitem(self):
        domain = Domain.from_sizes([2, 7])
        assert domain.size_of(1) == 7
        assert domain[1].size == 7

    def test_iteration_and_len(self):
        domain = Domain.from_sizes([2, 3, 4])
        assert len(domain) == 3
        assert [a.size for a in domain] == [2, 3, 4]

    def test_subset_preserves_order(self):
        domain = Domain.from_sizes([2, 3, 4, 5], names=["a", "b", "c", "d"])
        sub = domain.subset([2, 0])
        assert sub.names == ("c", "a")
        assert sub.sizes == (4, 2)

    def test_subset_empty_rejected(self):
        domain = Domain.from_sizes([2, 3])
        with pytest.raises(InvalidParameterError):
            domain.subset([])

    def test_validate_tuple_accepts_valid(self):
        domain = Domain.from_sizes([2, 3])
        domain.validate_tuple([1, 2])

    def test_validate_tuple_wrong_length(self):
        domain = Domain.from_sizes([2, 3])
        with pytest.raises(DomainMismatchError):
            domain.validate_tuple([1])

    def test_validate_tuple_out_of_range(self):
        domain = Domain.from_sizes([2, 3])
        with pytest.raises(DomainMismatchError):
            domain.validate_tuple([1, 3])

    def test_validate_matrix(self):
        domain = Domain.from_sizes([2, 3])
        domain.validate_matrix(np.array([[0, 2], [1, 0]]))
        with pytest.raises(DomainMismatchError):
            domain.validate_matrix(np.array([[0, 3]]))
        with pytest.raises(DomainMismatchError):
            domain.validate_matrix(np.array([[0, 1, 2]]))
