"""Tests for repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = spawn_rngs(5, 3)[1].integers(0, 10**9, size=4)
        b = spawn_rngs(5, 3)[1].integers(0, 10**9, size=4)
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
