"""Tests for repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import derive_rng, derive_seed_sequence, ensure_rng, spawn_rngs
from repro.exceptions import InvalidParameterError


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = spawn_rngs(5, 3)[1].integers(0, 10**9, size=4)
        b = spawn_rngs(5, 3)[1].integers(0, 10**9, size=4)
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(42, "cell", 3, "GRR").integers(0, 10**9, size=8)
        b = derive_rng(42, "cell", 3, "GRR").integers(0, 10**9, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_key_different_stream(self):
        a = derive_rng(42, "cell", 3, "GRR").integers(0, 10**9, size=8)
        b = derive_rng(42, "cell", 4, "GRR").integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_different_master_seed_different_stream(self):
        a = derive_rng(42, "cell").integers(0, 10**9, size=8)
        b = derive_rng(43, "cell").integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_key_part_order_matters(self):
        a = derive_rng(0, "x", "y").integers(0, 10**9, size=8)
        b = derive_rng(0, "y", "x").integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_independent_of_spawn_order(self):
        """Derivation must not depend on how many streams were made before."""
        first = derive_rng(7, "a").integers(0, 10**9, size=4)
        derive_rng(7, "b")
        derive_rng(7, "c")
        again = derive_rng(7, "a").integers(0, 10**9, size=4)
        np.testing.assert_array_equal(first, again)

    def test_seed_sequence_entropy_is_stable(self):
        a = derive_seed_sequence(1, "k").entropy
        b = derive_seed_sequence(1, "k").entropy
        assert a == b

    def test_rejects_non_int_master_seed(self):
        with pytest.raises(TypeError):
            derive_rng("42", "cell")

    def test_rejects_negative_master_seed(self):
        with pytest.raises(InvalidParameterError):
            derive_rng(-1, "cell")

    def test_rejects_unhashable_key_parts(self):
        with pytest.raises(TypeError):
            derive_rng(0, ["not", "a", "scalar"])
