"""Window-semantics tests on a hand-advanced clock (ISSUE 9 satellite).

Every assertion drives time explicitly through ``now`` arguments — no
sleeping, no wall clocks — covering the boundary conditions that bite real
streams: a report landing exactly on a window edge, snapshots between
folds, empty windows, and late reports.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import EstimationError, InvalidParameterError
from repro.protocols.registry import make_protocol
from repro.service.windows import WindowSpec, WindowedAccumulator, parse_window

K = 8
EPSILON = 1.0


def oracle(rng: int = 0):
    return make_protocol("GRR", k=K, epsilon=EPSILON, rng=rng)


def reports(o, n: int, seed: int = 5) -> np.ndarray:
    values = np.random.default_rng(seed).integers(0, K, size=n)
    return o.randomize_many(values)


class TestParseWindow:
    def test_round_trips(self):
        for text in ("cumulative", "tumbling:60", "sliding:60x4"):
            assert parse_window(parse_window(text).describe()) == parse_window(text)

    def test_pane_widths(self):
        assert parse_window("tumbling:60").pane_width == 60.0
        assert parse_window("sliding:60x4").pane_width == 15.0
        assert math.isinf(parse_window("cumulative").pane_width)

    @pytest.mark.parametrize(
        "bad",
        (
            "cumulative:5",
            "tumbling",
            "tumbling:abc",
            "tumbling:0",
            "tumbling:-1",
            "sliding:60",
            "sliding:60x0",
            "sliding:x4",
            "hopping:60",
            "",
        ),
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_window(bad)

    def test_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            WindowSpec("cumulative", span=10.0)
        with pytest.raises(InvalidParameterError):
            WindowSpec("sliding", span=10.0, panes=0)


class TestCumulativeWindow:
    def test_matches_one_shot_aggregate_byte_for_byte(self):
        o = oracle()
        batch = reports(o, 501)
        window = WindowedAccumulator(o, parse_window("cumulative"))
        for start in range(0, 501, 100):
            window.add(batch[start : start + 100], now=float(start))
        snapshot = window.snapshot(now=1e9).finalize()
        one_shot = o.aggregate(batch)
        assert snapshot.n == one_shot.n == 501
        assert snapshot.estimates.tobytes() == one_shot.estimates.tobytes()
        assert window.late_dropped == 0

    def test_never_expires(self):
        o = oracle()
        window = WindowedAccumulator(o, parse_window("cumulative"))
        window.add(reports(o, 10), now=0.0)
        assert window.snapshot(now=1e12).n == 10


class TestTumblingWindow:
    def test_edge_report_starts_the_new_pane(self):
        # a report stamped exactly at t = W belongs to the *new* window;
        # the old pane's reports are gone from the snapshot
        o = oracle()
        window = WindowedAccumulator(o, parse_window("tumbling:10"))
        window.add(reports(o, 100, seed=1), now=9.999)
        assert window.snapshot(now=9.999).n == 100
        edge = reports(o, 7, seed=2)
        window.add(edge, now=10.0)
        snapshot = window.snapshot(now=10.0)
        assert snapshot.n == 7
        one_shot = o.aggregate(edge)
        assert snapshot.finalize().estimates.tobytes() == one_shot.estimates.tobytes()

    def test_snapshot_mid_fold_is_isolated_state(self):
        # mutating a snapshot must not corrupt the live window
        o = oracle()
        window = WindowedAccumulator(o, parse_window("tumbling:10"))
        window.add(reports(o, 50, seed=1), now=1.0)
        snapshot = window.snapshot(now=1.0)
        snapshot.counts[:] = -1e9
        snapshot.n = 0
        window.add(reports(o, 25, seed=2), now=2.0)
        assert window.snapshot(now=2.0).n == 75

    def test_empty_window_snapshot_has_zero_reports(self):
        o = oracle()
        window = WindowedAccumulator(o, parse_window("tumbling:10"))
        window.add(reports(o, 100), now=0.0)
        merged = window.snapshot(now=25.0)  # two windows later: all expired
        assert merged.n == 0
        assert not merged.counts.any()
        with pytest.raises(EstimationError):
            merged.finalize()

    def test_late_report_is_dropped_and_counted(self):
        o = oracle()
        window = WindowedAccumulator(o, parse_window("tumbling:10"))
        window.add(reports(o, 10, seed=1), now=25.0)  # watermark: pane 2
        absorbed = window.add(reports(o, 4, seed=2), now=3.0)  # pane 0: late
        assert absorbed == 0
        assert window.late_dropped == 4
        assert window.accepted == 10
        assert window.snapshot(now=25.0).n == 10

    def test_watermark_never_runs_backwards(self):
        o = oracle()
        window = WindowedAccumulator(o, parse_window("tumbling:10"))
        window.add(reports(o, 10, seed=1), now=25.0)
        window.add(reports(o, 5, seed=2), now=21.0)  # same pane, older stamp
        assert window.watermark == 25.0
        assert window.snapshot(now=25.0).n == 15


class TestSlidingWindow:
    def test_panes_fall_off_incrementally(self):
        # sliding:20x4 → 5s panes; the window covers the last 4 panes
        o = oracle()
        window = WindowedAccumulator(o, parse_window("sliding:20x4"))
        for pane, count in enumerate((10, 20, 30, 40)):
            window.add(reports(o, count, seed=pane), now=5.0 * pane + 1.0)
        assert window.snapshot(now=16.0).n == 100
        # advancing one pane width drops exactly the oldest pane
        assert window.snapshot(now=21.0).n == 90
        assert window.snapshot(now=26.0).n == 70
        assert window.snapshot(now=31.0).n == 40
        assert window.snapshot(now=36.0).n == 0

    def test_merge_of_empty_window_with_live_pane(self):
        # panes with no reports contribute nothing; the merged snapshot
        # equals a one-shot aggregate over the single live pane
        o = oracle()
        window = WindowedAccumulator(o, parse_window("sliding:20x4"))
        batch = reports(o, 33)
        window.add(batch, now=12.0)
        assert window.live_panes(now=12.0) == 1
        snapshot = window.snapshot(now=14.0)
        one_shot = o.aggregate(batch)
        assert snapshot.finalize().estimates.tobytes() == one_shot.estimates.tobytes()

    def test_empty_chunk_does_not_create_a_pane(self):
        o = oracle()
        window = WindowedAccumulator(o, parse_window("sliding:20x4"))
        batch = reports(o, 5)
        window.add(batch[:0], now=1.0)
        assert window.live_panes(now=1.0) == 0
        assert window.accepted == 0
