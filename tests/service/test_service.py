"""End-to-end collection-service tests: registry, HTTP, backpressure, parity.

The service tests follow the remote-executor test philosophy: real HTTP on a
loopback ephemeral port, deterministic load (seeded generators, injected
clocks), and byte-identical parity assertions against the one-shot
``aggregate`` reference — never statistical tolerance where exactness is the
contract.
"""

from __future__ import annotations

import http.client
import json
import math

import numpy as np
import pytest

from repro.core.retry import RetryPolicy
from repro.exceptions import InvalidParameterError
from repro.service import (
    CollectionClient,
    CollectionService,
    LoadGenerator,
    ServiceUnavailableError,
    parse_attribute_spec,
)
from repro.service.server import CollectorRegistry

FAST = RetryPolicy(max_retries=6, base_delay=0.005, max_delay=0.02, jitter=0.0)


@pytest.fixture()
def service():
    svc = CollectionService(queue_size=64)
    svc.start()
    yield svc
    svc.stop()


def client_for(service: CollectionService) -> CollectionClient:
    return CollectionClient(service.url, retry_policy=FAST)


class TestParseAttributeSpec:
    def test_parses(self):
        spec = parse_attribute_spec("age:GRR:16:1.5")
        assert spec == {"attribute": "age", "protocol": "GRR", "k": 16, "epsilon": 1.5}

    @pytest.mark.parametrize("bad", ("age", "age:GRR:16", ":GRR:16:1.0", "a:GRR:x:1.0"))
    def test_rejects_malformed(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_attribute_spec(bad)


class TestCollectorRegistry:
    def test_register_is_idempotent_for_equivalent_estimators(self):
        registry = CollectorRegistry()
        a = registry.register("age", "GRR", k=16, epsilon=1.0)
        b = registry.register("age", "GRR", k=16, epsilon=1.0)
        assert a is b
        assert registry.attributes() == ("age",)

    def test_register_rejects_conflicting_estimators(self):
        registry = CollectorRegistry()
        registry.register("age", "GRR", k=16, epsilon=1.0)
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.register("age", "GRR", k=16, epsilon=2.0)
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.register("age", "OUE", k=16, epsilon=1.0)

    def test_attributes_ingest_independently(self):
        registry = CollectorRegistry()
        age = registry.register("age", "GRR", k=8, epsilon=1.0, rng=0)
        city = registry.register("city", "OUE", k=8, epsilon=1.0, rng=1)
        age.apply("b0", age.decode(age.oracle.randomize_many([1, 2, 3]).tolist()), 0.0)
        city.apply("b0", city.decode(city.oracle.randomize_many([4]).tolist()), 0.0)
        assert age.stats()["accepted_reports"] == 3
        assert city.stats()["accepted_reports"] == 1


class TestServiceEndToEnd:
    def test_estimate_matches_one_shot_aggregate_byte_for_byte(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=32, epsilon=1.0)
        load = LoadGenerator(
            "GRR", k=32, epsilon=1.0, users=3000, batch_size=500,
            churn=0.3, drift=2, duplicate_every=2, rng=11,
        )
        reference = LoadGenerator(
            "GRR", k=32, epsilon=1.0, users=3000, batch_size=500,
            churn=0.3, drift=2, duplicate_every=2, rng=11,
        )
        unique = [r for _, r, dup in reference.batches() if not dup]
        sent = load.drive(client, "age")
        assert sent["duplicate_batches_sent"] > 0
        client.flush()
        estimate = client.estimate("age")
        one_shot = reference.oracle.aggregate(np.concatenate(unique))
        assert estimate["n"] == one_shot.n == 3000
        got = np.asarray(estimate["estimates"], dtype=float)
        assert got.tobytes() == one_shot.estimates.tobytes()
        stats = client.stats()["attributes"]["age"]
        assert stats["duplicate_batches"] == sent["duplicate_batches_sent"]
        assert stats["accepted_reports"] == 3000

    def test_many_attributes_concurrently(self, service):
        client = client_for(service)
        for name, protocol in (("a", "GRR"), ("b", "OLH"), ("c", "OUE")):
            client.register_attribute(name, protocol, k=8, epsilon=1.0)
            load = LoadGenerator(protocol, k=8, epsilon=1.0, users=200,
                                 batch_size=50, rng=3)
            load.drive(client, name)
        client.flush()
        stats = client.stats()["attributes"]
        assert sorted(stats) == ["a", "b", "c"]
        for name in ("a", "b", "c"):
            assert stats[name]["accepted_reports"] == 200
            assert client.estimate(name)["n"] == 200

    def test_unknown_attribute_is_404_not_retry(self, service):
        client = client_for(service)
        with pytest.raises(ServiceUnavailableError, match="404"):
            client.send_batch("ghost", "b0", [1, 2, 3])
        with pytest.raises(ServiceUnavailableError, match="404"):
            client.estimate("ghost")

    def test_missing_batch_id_is_400(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        with pytest.raises(ServiceUnavailableError, match="400"):
            client.call("POST", "/report", {"attribute": "age", "reports": [1]})

    def test_conflicting_reregistration_is_409(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)  # idempotent
        with pytest.raises(ServiceUnavailableError, match="409"):
            client.register_attribute("age", "GRR", k=8, epsilon=2.0)

    def test_duplicate_batches_are_dropped_exactly(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        reports = [1, 2, 3, 4]
        for _ in range(5):
            client.send_batch("age", "batch-0", reports)
        client.flush()
        stats = client.stats()["attributes"]["age"]
        assert stats["accepted_reports"] == 4
        assert stats["duplicate_batches"] == 4
        assert client.estimate("age")["n"] == 4

    def test_empty_window_estimate_is_no_data_not_error(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        estimate = client.estimate("age")
        assert estimate["n"] == 0
        assert estimate["estimates"] is None


class TestBackpressure:
    def test_paused_service_replies_429_and_client_retries(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        service.pause()
        with pytest.raises(ServiceUnavailableError, match="saturated"):
            client.send_batch("age", "b0", [1, 2, 3])
        assert client.backpressure_hits == FAST.max_retries + 1
        service.resume()
        assert client.send_batch("age", "b0", [1, 2, 3])["status"] == "queued"

    def test_retry_after_hint_floors_client_sleep(self, service):
        sleeps: list[float] = []
        client = CollectionClient(
            service.url,
            retry_policy=RetryPolicy(
                max_retries=2, base_delay=1e-4, max_delay=1e-4, jitter=0.0
            ),
            sleep=sleeps.append,
        )
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        service.pause()
        with pytest.raises(ServiceUnavailableError):
            client.send_batch("age", "b0", [1])
        service.resume()
        # every backoff sleep was floored by the server's Retry-After hint,
        # which exceeds the policy's tiny base delay
        assert sleeps and all(s >= service.retry_after for s in sleeps)

    def test_full_queue_is_backpressure_not_crash(self):
        svc = CollectionService(queue_size=1)
        svc.start()
        try:
            client = client_for(svc)
            client.register_attribute("age", "GRR", k=8, epsilon=1.0)
            svc.pause()  # the applier keeps draining; pause forces rejection
            with pytest.raises(ServiceUnavailableError):
                client.send_batch("age", "b0", [1])
            assert svc.stats()["rejected_batches"] > 0
        finally:
            svc.stop()

    def test_rejected_batches_never_reach_a_collector(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        service.pause()
        with pytest.raises(ServiceUnavailableError):
            client.send_batch("age", "b0", [1, 2])
        service.resume()
        client.flush()
        assert client.stats()["attributes"]["age"]["accepted_reports"] == 0


class TestInjectedClock:
    def test_tumbling_window_over_http_with_explicit_timestamps(self):
        # event time comes from the request's ``t``; the window drops the
        # old pane when a new-edge report arrives
        svc = CollectionService(window="tumbling:10")
        svc.start()
        try:
            client = client_for(svc)
            client.register_attribute("age", "GRR", k=8, epsilon=1.0)
            client.send_batch("age", "b0", [1, 2, 3], t=1.0)
            client.flush()
            assert client.estimate("age")["n"] == 3
            client.send_batch("age", "b1", [4], t=10.0)  # exactly on the edge
            client.flush()
            assert client.estimate("age")["n"] == 1
            # a late batch for the expired pane is dropped and counted
            client.send_batch("age", "b2", [5, 6], t=3.0)
            client.flush()
            stats = client.stats()["attributes"]["age"]
            assert stats["late_dropped_reports"] == 2
            assert client.estimate("age")["n"] == 1
        finally:
            svc.stop()

    def test_ingest_local_matches_http_path(self):
        svc = CollectionService()
        svc.registry.register("age", "GRR", k=8, epsilon=1.0, rng=0)
        assert svc.ingest_local("age", "b0", [1, 2, 3], now=0.0) == "accepted"
        assert svc.ingest_local("age", "b0", [1, 2, 3], now=0.0) == "duplicate"
        with pytest.raises(InvalidParameterError):
            svc.ingest_local("ghost", "b0", [1])


class TestLoadGenerator:
    def test_deterministic_under_seed(self):
        a = LoadGenerator("GRR", k=8, epsilon=1.0, users=100, batch_size=30, rng=5)
        b = LoadGenerator("GRR", k=8, epsilon=1.0, users=100, batch_size=30, rng=5)
        for (id_a, rep_a, dup_a), (id_b, rep_b, dup_b) in zip(a.batches(), b.batches()):
            assert id_a == id_b and dup_a == dup_b
            assert np.array_equal(np.asarray(rep_a), np.asarray(rep_b))

    def test_duplicates_reuse_the_same_reports(self):
        gen = LoadGenerator(
            "GRR", k=8, epsilon=1.0, users=100, batch_size=25, duplicate_every=1, rng=5
        )
        batches = list(gen.batches())
        originals = {i: r for i, r, dup in batches if not dup}
        for batch_id, reports, dup in batches:
            if dup:
                assert np.array_equal(np.asarray(reports), np.asarray(originals[batch_id]))

    def test_emits_exactly_users_unique_reports(self):
        gen = LoadGenerator(
            "GRR", k=8, epsilon=1.0, users=103, batch_size=25, duplicate_every=2, rng=5
        )
        unique = sum(
            len(np.atleast_1d(r)) for _, r, dup in gen.batches() if not dup
        )
        assert unique == 103

    def test_validates_parameters(self):
        for kwargs in (
            {"users": 0},
            {"users": 10, "batch_size": 0},
            {"users": 10, "churn": 1.5},
            {"users": 10, "duplicate_every": -1},
        ):
            with pytest.raises(InvalidParameterError):
                LoadGenerator("GRR", k=8, epsilon=1.0, **kwargs)


class TestMalformedIngest:
    """REVIEW regressions: bad batches must be 400s or counted failures —
    never a dead applier thread, a deadlocked /flush, or a dropped socket."""

    def test_applier_survives_a_poison_batch(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        collector = service.registry.get("age")
        # bypass the decode() edge validation, as a buggy in-process caller
        # (or a future transport) might: the applier must not die
        assert service.enqueue(collector, "poison", np.asarray([-1]), 0.0)
        client.flush()  # deadlocks forever if the applier thread died
        assert client.stats()["failed_batches"] == 1
        client.send_batch("age", "b0", [1, 2, 3])
        client.flush()
        assert client.stats()["attributes"]["age"]["accepted_reports"] == 3
        assert client.estimate("age")["n"] == 3

    def test_invalid_report_values_are_400(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        client.register_attribute("city", "OLH", k=8, epsilon=1.0)
        for attribute, bad in (
            ("age", [-1]),            # negative GRR value
            ("age", [8]),             # GRR value >= k
            ("city", [[1, 2], [3, 4]]),  # wrong-width OLH matrix
        ):
            with pytest.raises(ServiceUnavailableError, match="400"):
                client.send_batch(attribute, "b0", bad)
        client.flush()
        assert client.stats()["failed_batches"] == 0  # rejected at the edge

    def test_non_numeric_json_fields_are_400_not_connection_drop(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        report = {"attribute": "age", "batch_id": "b0", "reports": [1]}
        for bad_t in ("noon", [1.0]):
            with pytest.raises(ServiceUnavailableError, match="400"):
                client.call("POST", "/report", dict(report, t=bad_t))
        for bad_config in (
            {"attribute": "x", "protocol": "GRR", "k": "many", "epsilon": 1.0},
            {"attribute": "x", "protocol": "GRR", "k": 8, "epsilon": [1.0]},
        ):
            with pytest.raises(ServiceUnavailableError, match="400"):
                client.call("POST", "/attributes", bad_config)


class TestRetryAfterWireFormat:
    def test_header_is_integral_delta_seconds_body_keeps_float(self, service):
        client = client_for(service)
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        service.pause()
        conn = http.client.HTTPConnection(client.host, client.port, timeout=5)
        try:
            body = json.dumps({"attribute": "age", "batch_id": "b0", "reports": [1]})
            conn.request("POST", "/report", body, {"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
            service.resume()
        assert response.status == 429
        header = response.getheader("Retry-After")
        assert header is not None and header.isdigit()  # RFC 9110 delta-seconds
        assert int(header) == math.ceil(service.retry_after)
        assert json.loads(raw)["retry_after"] == pytest.approx(service.retry_after)

    def test_client_prefers_the_precise_body_hint(self, service):
        sleeps: list[float] = []
        client = CollectionClient(
            service.url,
            retry_policy=RetryPolicy(
                max_retries=1, base_delay=1e-6, max_delay=1e-6, jitter=0.0
            ),
            sleep=sleeps.append,
        )
        client.register_attribute("age", "GRR", k=8, epsilon=1.0)
        service.pause()
        with pytest.raises(ServiceUnavailableError):
            client.send_batch("age", "b0", [1])
        service.resume()
        # the ceiled header would round 0.05 up to 1; the client must pace on
        # the body's exact float instead
        assert sleeps == [pytest.approx(service.retry_after)]


class TestDedupRetention:
    def test_windowed_dedup_state_is_evicted_with_the_window(self):
        registry = CollectorRegistry(window="tumbling:10")
        c = registry.register("age", "GRR", k=8, epsilon=1.0, rng=0)
        assert c.apply("b0", c.decode([1, 2]), 1.0) == "accepted"
        assert c.apply("b0", c.decode([1, 2]), 1.0) == "duplicate"
        assert c.stats()["tracked_batch_ids"] == 1
        assert c.apply("b1", c.decode([3]), 25.0) == "accepted"
        assert c.stats()["tracked_batch_ids"] == 1  # b0's bucket evicted
        # a re-delivery of the forgotten batch is outside the retention: it
        # is dropped as late, so forgetting its id cannot double count
        assert c.apply("b0", c.decode([1, 2]), 1.0) == "late"
        stats = c.stats()
        assert stats["accepted_reports"] == 3
        assert stats["late_dropped_reports"] == 2
        assert stats["duplicate_batches"] == 1

    def test_cumulative_dedup_is_exact_and_retained(self):
        registry = CollectorRegistry()
        c = registry.register("age", "GRR", k=8, epsilon=1.0, rng=0)
        for i in range(5):
            assert c.apply(f"b{i}", c.decode([i]), float(i)) == "accepted"
        assert c.stats()["tracked_batch_ids"] == 5
        assert c.apply("b0", c.decode([0]), 99.0) == "duplicate"
