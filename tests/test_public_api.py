"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_main_classes_exposed(self):
        assert repro.GRR and repro.OLH and repro.SubsetSelection
        assert repro.SUE and repro.OUE
        assert repro.SPL and repro.SMP and repro.RSFD and repro.RSRFD

    def test_make_protocol_shortcut(self):
        oracle = repro.make_protocol("OUE", k=5, epsilon=1.0, rng=0)
        assert oracle.name == "OUE"


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.protocols",
            "repro.multidim",
            "repro.attacks",
            "repro.privacy",
            "repro.ml",
            "repro.datasets",
            "repro.metrics",
            "repro.experiments",
        ],
    )
    def test_all_exports_resolve(self, module):
        imported = importlib.import_module(module)
        assert hasattr(imported, "__all__")
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name}"
