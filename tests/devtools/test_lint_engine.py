"""Tests of the reprolint engine: rules, suppressions, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import lint
from repro.devtools.checkers import RULES, rule_catalogue
from repro.devtools.lint import (
    PARSE_ERROR_RULE,
    apply_baseline,
    iter_source_files,
    lint_file,
    load_baseline,
    main,
    suppressed_codes,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_codes(name: str) -> list[str]:
    """Rule codes firing on a fixture, linted under a tests-neutral path.

    The fixtures physically live under ``tests/``, where several rules are
    deliberately lenient — linting them under their bare file name exercises
    the rules as they apply to library code.
    """
    return [v.rule for v in lint_file(FIXTURES / name, display_path=name)]


# --------------------------------------------------------------------------- #
# rule coverage: each rule's good and bad fixtures
# --------------------------------------------------------------------------- #
def test_rule_catalogue_is_complete() -> None:
    codes = [rule.code for rule in RULES]
    assert codes == sorted(codes), "rules should be registered in code order"
    assert len(set(codes)) == len(codes)
    catalogue = rule_catalogue()
    assert set(catalogue) == set(codes)
    assert all(description for description in catalogue.values())


def test_rng_bad_fixture() -> None:
    codes = fixture_codes("rng_bad.py")
    assert codes.count("REPRO101") == 1
    assert codes.count("REPRO102") == 2
    assert codes.count("REPRO103") == 2  # the random import + the time seed
    assert not set(codes) - {"REPRO101", "REPRO102", "REPRO103"}


def test_rng_good_fixture_is_clean() -> None:
    assert fixture_codes("rng_good.py") == []


def test_rng_rules_relax_inside_tests() -> None:
    # the same source under a tests/ path: only the global-seed rule remains
    codes = [
        v.rule
        for v in lint_file(FIXTURES / "rng_bad.py", display_path="tests/rng_bad.py")
    ]
    assert codes == ["REPRO101"]


def test_oracle_bad_fixture() -> None:
    codes = fixture_codes("oracle_bad.py")
    assert codes.count("REPRO201") == 3  # support_counts, attack_many, accumulator
    # OverridingOracle misses both kernels, KernelLessOracle misses both
    assert codes.count("REPRO202") == 4
    assert not set(codes) - {"REPRO201", "REPRO202"}


def test_oracle_good_fixture_is_clean() -> None:
    assert fixture_codes("oracle_good.py") == []


def test_oracle_kernel_rule_relaxes_inside_tests_but_final_rule_does_not() -> None:
    codes = [
        v.rule
        for v in lint_file(
            FIXTURES / "oracle_bad.py", display_path="tests/test_oracle_bad.py"
        )
    ]
    assert codes == ["REPRO201", "REPRO201", "REPRO201"]


def test_cellparams_bad_fixture() -> None:
    violations = lint_file(FIXTURES / "cellparams_bad.py", display_path="cellparams_bad.py")
    assert [v.rule for v in violations] == ["REPRO301", "REPRO301"]
    messages = " ".join(v.message for v in violations)
    assert "chunk_size" in messages and "amortize_nk" in messages


def test_cellparams_good_fixture_is_clean() -> None:
    assert fixture_codes("cellparams_good.py") == []


def test_seam_bad_fixture() -> None:
    codes = fixture_codes("seam_bad.py")
    assert codes.count("REPRO401") == 2  # GridCache(...) and SQLiteCellStore(...)
    assert codes.count("REPRO402") == 1
    assert codes.count("REPRO501") == 1
    assert not set(codes) - {"REPRO401", "REPRO402", "REPRO501"}


def test_seam_good_fixture_is_clean() -> None:
    assert fixture_codes("seam_good.py") == []


def test_silent_bad_fixture() -> None:
    violations = lint_file(FIXTURES / "silent_bad.py", display_path="silent_bad.py")
    codes = [v.rule for v in violations]
    assert codes == ["REPRO502"] * 4
    messages = " ".join(v.message for v in violations)
    assert "bare except" in messages
    assert "silently discards" in messages


def test_silent_good_fixture_is_clean() -> None:
    assert fixture_codes("silent_good.py") == []


def test_kernelimport_bad_fixture() -> None:
    violations = lint_file(
        FIXTURES / "kernelimport_bad.py", display_path="kernelimport_bad.py"
    )
    codes = [v.rule for v in violations]
    assert codes == ["REPRO601"] * 3
    messages = " ".join(v.message for v in violations)
    assert "get_backend()" in messages


def test_kernelimport_good_fixture_is_clean() -> None:
    assert fixture_codes("kernelimport_good.py") == []


def test_kernelimport_rule_exempts_tests_and_registry() -> None:
    for display_path in (
        "tests/test_kernelimport_bad.py",
        "src/repro/kernels/__init__.py",
    ):
        codes = [
            v.rule
            for v in lint_file(FIXTURES / "kernelimport_bad.py", display_path=display_path)
        ]
        assert codes == []


def test_kernelimport_rule_catches_relative_forms(tmp_path: Path) -> None:
    source = (
        "from ..kernels import numba_backend\n"
        "from ..kernels.numpy_backend import histogram_product\n"
        "from repro.kernels import get_backend\n"
    )
    path = tmp_path / "tree.py"
    path.write_text(source)
    codes = [v.rule for v in lint_file(path, display_path="src/repro/ml/tree.py")]
    assert codes == ["REPRO601"] * 2


def test_silent_rule_applies_inside_tests_too() -> None:
    codes = [
        v.rule
        for v in lint_file(
            FIXTURES / "silent_bad.py", display_path="tests/test_silent_bad.py"
        )
    ]
    assert codes == ["REPRO502"] * 4


def test_violations_carry_location_and_content() -> None:
    violations = lint_file(FIXTURES / "seam_bad.py", display_path="seam_bad.py")
    v = next(v for v in violations if v.rule == "REPRO402")
    assert v.path == "seam_bad.py"
    assert v.line > 0 and v.col > 0
    assert "json.dumps(config)" in v.content


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #
def test_suppression_comment_parsing() -> None:
    assert suppressed_codes("x = 1") is None
    assert suppressed_codes("x = f()  # reprolint: disable") == set()
    assert suppressed_codes("x = f()  # reprolint: disable=REPRO102") == {"REPRO102"}
    assert suppressed_codes("x  # reprolint: disable=REPRO101, REPRO102") == {
        "REPRO101",
        "REPRO102",
    }


def test_suppressed_fixture() -> None:
    violations = lint_file(FIXTURES / "suppressed.py", display_path="suppressed.py")
    # the matching-code and blanket suppressions silence their lines; the
    # wrong-code suppression does not
    assert [v.rule for v in violations] == ["REPRO102"]
    assert "wrong_code" not in violations[0].content  # anchored on the call line


# --------------------------------------------------------------------------- #
# baseline round-trip
# --------------------------------------------------------------------------- #
def test_baseline_round_trip(tmp_path: Path) -> None:
    violations = lint_file(FIXTURES / "rng_bad.py", display_path="rng_bad.py")
    assert violations
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, violations)

    baseline = load_baseline(baseline_path)
    fresh, matched = apply_baseline(violations, baseline)
    assert fresh == []
    assert matched == len(violations)


def test_baseline_absorbs_each_entry_once(tmp_path: Path) -> None:
    violations = lint_file(FIXTURES / "rng_bad.py", display_path="rng_bad.py")
    one = [violations[0]]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, one)
    # a second identical occurrence is NOT grandfathered
    fresh, matched = apply_baseline(one + one, load_baseline(baseline_path))
    assert matched == 1
    assert fresh == one


def test_missing_baseline_is_empty(tmp_path: Path) -> None:
    assert load_baseline(tmp_path / "nope.json") == {}


def test_malformed_baseline_raises(tmp_path: Path) -> None:
    path = tmp_path / "bad.json"
    path.write_text("[]", encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(path)


# --------------------------------------------------------------------------- #
# discovery
# --------------------------------------------------------------------------- #
def test_directory_walk_skips_fixture_dirs(tmp_path: Path) -> None:
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "fixtures").mkdir()
    (tmp_path / "pkg" / "fixtures" / "bad.py").write_text("x = 2\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "c.py").write_text("x = 3\n", encoding="utf-8")
    found = [p.name for p in iter_source_files([tmp_path])]
    assert found == ["ok.py"]


def test_explicit_file_argument_is_always_linted(tmp_path: Path) -> None:
    fixture = tmp_path / "fixtures" / "direct.py"
    fixture.parent.mkdir()
    fixture.write_text("x = 1\n", encoding="utf-8")
    assert list(iter_source_files([fixture])) == [fixture]


def test_syntax_error_reports_parse_rule(tmp_path: Path) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    violations = lint_file(broken)
    assert [v.rule for v in violations] == [PARSE_ERROR_RULE]


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_clean_tree_exits_zero(capsys: pytest.CaptureFixture) -> None:
    code = main(["--no-baseline", str(REPO_ROOT / "src")])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "reprolint: clean" in out


def test_cli_violations_exit_one_with_rule_and_location(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = tmp_path / "naked.py"
    bad.write_text(
        "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )
    code = main(["--no-baseline", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "REPRO102" in out
    assert f"{bad}:5:" in out  # file:line of the violation


def test_cli_json_format_schema(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    bad = tmp_path / "naked.py"
    bad.write_text(
        "import numpy as np\nrng = np.random.default_rng()\n", encoding="utf-8"
    )
    code = main(["--no-baseline", "--format", "json", str(bad)])
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["version"] == lint.REPORT_VERSION
    assert report["files_checked"] == 1
    assert report["counts"] == {"REPRO102": 1}
    assert set(report["rules"]) == {rule.code for rule in RULES}
    (violation,) = report["violations"]
    assert set(violation) == {"path", "line", "col", "rule", "name", "message"}
    assert violation["rule"] == "REPRO102"
    assert violation["line"] == 2


def test_cli_write_baseline_then_clean(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = tmp_path / "naked.py"
    bad.write_text(
        "import numpy as np\nrng = np.random.default_rng()\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--write-baseline", str(bad)]) == 0
    capsys.readouterr()
    # grandfathered: the same tree now lints clean against the baseline
    assert main(["--baseline", str(baseline), str(bad)]) == 0
    # a second violation is fresh and still fails
    bad.write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
        "rng2 = np.random.default_rng()\n",
        encoding="utf-8",
    )
    capsys.readouterr()
    assert main(["--baseline", str(baseline), str(bad)]) == 1


def test_cli_usage_errors_exit_two(capsys: pytest.CaptureFixture) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["definitely/not/a/path.py"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["--no-baseline", "--write-baseline"])
    assert excinfo.value.code == 2


def test_cli_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.code in out
