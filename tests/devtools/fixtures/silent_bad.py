"""Fixture: broad exception handlers that silently swallow failures."""


def swallow_everything(fn):
    try:
        return fn()
    except Exception:  # REPRO502: silent broad handler
        pass


def bare_handler(fn):
    try:
        return fn()
    except:  # noqa: E722 — REPRO502: bare except is flagged even when it acts
        return None


def tuple_of_types(fn):
    try:
        return fn()
    except (ValueError, Exception):  # REPRO502: Exception hides in the tuple
        ...


def base_exception(fn):
    try:
        return fn()
    except BaseException:  # REPRO502: docstring-only body is still silent
        """swallowed"""
