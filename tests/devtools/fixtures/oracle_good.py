"""Fixture: FrequencyOracle subclasses honouring the dispatch contract."""

import abc
from typing import Any

import numpy as np

from repro.protocols.base import FrequencyOracle


class WellBehavedOracle(FrequencyOracle):
    """Implements the protected dense kernels, never the final dispatch."""

    name = "WELL"

    @property
    def p(self) -> float:
        return 0.75

    @property
    def q(self) -> float:
        return 0.25

    def randomize(self, value: int) -> int:
        return value

    def attack(self, report: Any) -> int:
        return int(report)

    def expected_attack_accuracy(self) -> float:
        return 0.75

    def _support_counts_dense(self, reports: Any) -> np.ndarray:
        return np.bincount(np.asarray(reports), minlength=self.k).astype(float)

    def _attack_dense(self, reports: Any) -> np.ndarray:
        return np.asarray(reports, dtype=np.int64)


class AbstractIntermediate(FrequencyOracle):
    """Abstract intermediates may defer the kernels to their subclasses."""

    @abc.abstractmethod
    def matrix_shape(self) -> tuple[int, int]:
        """Subclass-specific report-matrix shape."""
