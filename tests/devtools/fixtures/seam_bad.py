"""Fixture: seam-hygiene violations (store construction, non-canonical JSON)."""

import hashlib
import json

from repro.experiments.cellstore import SQLiteCellStore
from repro.experiments.grid import GridCache


def build_json_cache(directory: str) -> GridCache:
    return GridCache(directory)  # REPRO401


def build_sqlite_store(path: str) -> SQLiteCellStore:
    return SQLiteCellStore(path)  # REPRO401


def config_hash(config: dict) -> str:
    payload = json.dumps(config)  # REPRO402: unsorted keys feed the hash
    return hashlib.sha256(payload.encode()).hexdigest()


def shared_state(acc=[]):  # REPRO501
    return acc
