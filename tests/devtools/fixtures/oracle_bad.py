"""Fixture: FrequencyOracle subclasses breaking the final-dispatch contract."""

from typing import Any

import numpy as np

from repro.protocols.base import FrequencyOracle


class OverridingOracle(FrequencyOracle):
    """Overrides every final dispatch method (3x REPRO201, 2x REPRO202)."""

    def support_counts(self, reports: Any) -> np.ndarray:  # REPRO201
        return np.zeros(self.k)

    def attack_many(self, reports: Any) -> np.ndarray:  # REPRO201
        return np.zeros(len(reports), dtype=np.int64)

    def accumulator(self) -> Any:  # REPRO201
        return None


class KernelLessOracle(FrequencyOracle):
    """Concrete subclass missing both dense kernels (2x REPRO202)."""

    name = "KERNELLESS"
