"""Fixture: plan_* functions dropping fidelity kwargs from cell params."""

from typing import Any


def plan_dropped_chunk_size(n: int, chunk_size: int | None = None) -> list[dict]:
    # chunk_size never reaches the params dict -> REPRO301
    return [{"figure": "figX", "params": {"n": n}}]


def plan_dropped_two(
    n: int, packed: bool = False, amortize_nk: bool = True
) -> list[dict]:
    params: dict[str, Any] = {"n": n, "packed": packed}
    # amortize_nk accepted but never stored -> REPRO301
    return [{"figure": "figX", "params": params}]
