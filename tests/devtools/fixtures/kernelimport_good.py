"""Fixture: kernel dispatch through the registry (no REPRO601)."""

from repro.kernels import active_backend_name, get_backend


def hot_histogram(weights_t, features):
    return get_backend().histogram_product(weights_t, features)


def record_backend(metadata: dict) -> dict:
    metadata["kernel_backend"] = active_backend_name()
    return metadata
