"""Fixture: RNG usage that follows the repro.core.rng discipline."""

import numpy as np

from repro.core.rng import RngLike, derive_rng, ensure_rng


def seeded_generator(rng: RngLike = None) -> np.random.Generator:
    return ensure_rng(rng)


def explicit_seed() -> np.random.Generator:
    return np.random.default_rng(7)  # seeded: fine


def cell_stream(master_seed: int, key: str) -> np.random.Generator:
    return derive_rng(master_seed, "grid-cell", key)
