"""Fixture: exception handlers that narrow the type or act on the failure."""

import warnings


def narrow_best_effort(fn):
    try:
        return fn()
    except OSError:
        pass  # a narrow degrade seam is the documented idiom


def broad_but_handled(fn):
    try:
        return fn()
    except Exception as exc:
        warnings.warn(f"degraded: {exc}", RuntimeWarning)
        return None


def broad_reraise(fn):
    try:
        return fn()
    except BaseException:
        raise


def documented_seam(fn):
    try:
        return fn()
    except Exception:  # reprolint: disable=REPRO502
        pass
