"""Fixture: direct kernel-backend imports that bypass the registry."""

import repro.kernels.numba_backend  # REPRO601

from repro.kernels import numpy_backend  # REPRO601
from repro.kernels.numpy_backend import histogram_product  # REPRO601


def hot_histogram(weights_t, features):
    numba = repro.kernels.numba_backend
    return numba.histogram_product(weights_t, features)


def pinned_histogram(weights_t, features):
    return numpy_backend.histogram_product(weights_t, features)


def imported_kernel(weights_t, features):
    return histogram_product(weights_t, features)
