"""Fixture: seam-respecting store construction and canonical hashing."""

import hashlib
import json

from repro.experiments.grid import CellStore


def build_cache(directory: str | None):
    return CellStore.from_options(directory, cache_backend="json")


def build_store(directory: str | None):
    from repro.experiments.cellstore import SQLiteCellStore

    return SQLiteCellStore.for_directory(directory)  # factory classmethod: fine


def config_hash(config: dict) -> str:
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def artifact_dump(rows: list) -> str:
    # json.dumps outside any hashing function needs no sort_keys
    return json.dumps(rows)
