"""Fixture: plan_* functions threading every fidelity kwarg into params."""

from typing import Any


def plan_literal_key(n: int, redraw_attributes: bool = False) -> list[dict]:
    # dict-literal key style (reident_smp.py idiom)
    return [{"params": {"n": n, "redraw_attributes": redraw_attributes}}]


def plan_subscript_key(n: int, chunk_size: int | None = None) -> list[dict]:
    # conditional subscript-store style (utility_rsrfd.py idiom)
    params: dict[str, Any] = {"n": n}
    if chunk_size is not None:
        params["chunk_size"] = chunk_size
    return [{"params": params}]


def plan_no_fidelity_kwargs(n: int, epsilon: float) -> list[dict]:
    # no fidelity kwargs accepted: nothing to thread
    return [{"params": {"n": n, "epsilon": epsilon}}]
