"""Fixture: inline suppression comments."""

import numpy as np


def blessed_entropy() -> np.random.Generator:
    # the bootstrap generator deliberately draws OS entropy
    return np.random.default_rng()  # reprolint: disable=REPRO102


def blanket() -> None:
    np.random.seed(0)  # reprolint: disable


def wrong_code() -> np.random.Generator:
    # suppressing a different rule does NOT silence REPRO102
    return np.random.default_rng()  # reprolint: disable=REPRO101
