"""Fixture: every RNG-discipline violation reprolint must catch."""

import random
import time

import numpy as np
from numpy.random import default_rng

from repro.core.rng import derive_rng


def global_seed() -> None:
    np.random.seed(42)  # REPRO101


def naked_generator() -> np.random.Generator:
    return np.random.default_rng()  # REPRO102


def naked_generator_from_import() -> np.random.Generator:
    return default_rng()  # REPRO102


def stdlib_random() -> float:
    return random.random()  # REPRO103 (the import line is flagged)


def time_seeded() -> np.random.Generator:
    return derive_rng(int(time.time()), "cell")  # REPRO103
