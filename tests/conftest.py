"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.domain import Domain


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain() -> Domain:
    """A 3-attribute domain with small sizes."""
    return Domain.from_sizes([4, 6, 3], names=["a", "b", "c"])


@pytest.fixture
def small_dataset(small_domain, rng) -> TabularDataset:
    """A skewed 3-attribute dataset with 600 users."""
    n = 600
    columns = []
    for attribute in small_domain:
        weights = np.arange(attribute.size, 0, -1, dtype=float) ** 1.5
        weights /= weights.sum()
        columns.append(rng.choice(attribute.size, size=n, p=weights))
    return TabularDataset.from_columns(columns, small_domain, name="small")


@pytest.fixture
def tiny_dataset(small_domain, rng) -> TabularDataset:
    """A very small dataset for fast attack tests."""
    n = 120
    columns = [rng.integers(0, attr.size, size=n) for attr in small_domain]
    return TabularDataset.from_columns(columns, small_domain, name="tiny")
