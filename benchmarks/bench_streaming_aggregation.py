"""Benchmark — streaming (chunked) vs one-shot server-side aggregation.

Measures, for the server-side hot path of the three protocols the streaming
subsystem rewrites:

* **OLH** — dense one-shot aggregation materializes an ``(n, k)`` candidate
  matrix (int64 hashes + bool supports); the chunked
  :class:`~repro.protocols.streaming.CountAccumulator` path caps it at
  ``chunk_size × k`` with O(k) state.  Estimates must be byte-identical.
* **OUE** — dense ``(n, k)`` uint8 reports vs bit-packed
  :class:`~repro.protocols.streaming.PackedBits` storage (k/8 bytes per
  user); packing the same reports must aggregate byte-identically.
* **ω-SS** — the vectorized ``randomize_many`` (sampling-key trick) vs the
  scalar per-user reference loop.

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_streaming_aggregation.py --quick

``--quick`` shrinks the workload for CI smoke runs; the default sizes are
the acceptance-criteria scale (n = 1e6, k = 100).  Exits non-zero if any
chunked/packed parity check fails.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc

import numpy as np

from repro.protocols.olh import OLH
from repro.protocols.ss import SubsetSelection
from repro.protocols.streaming import PackedBits
from repro.protocols.ue import OUE

EPSILON = 1.0


def _traced(fn):
    """Run ``fn`` returning ``(result, seconds, peak_bytes)``."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def _mib(nbytes: float) -> str:
    return f"{nbytes / 2**20:8.1f} MiB"


def bench_olh(n: int, k: int, chunk_size: int, one_shot: bool) -> list[str]:
    """OLH support-counting: dense (n, k) candidate matrix vs chunked O(k)."""
    rng_values = np.random.default_rng(0).integers(0, k, size=n)
    # chunk_size >= n forces the dense one-shot kernel (chunking is the default)
    dense_oracle = OLH(k=k, epsilon=EPSILON, rng=1, chunk_size=n)
    reports = dense_oracle.randomize_many(rng_values)
    lines = [f"OLH aggregation  (n={n:,}, k={k}, g={dense_oracle.g})"]

    chunked_oracle = OLH(k=k, epsilon=EPSILON, rng=1, chunk_size=chunk_size)

    def run_chunked():
        accumulator = chunked_oracle.accumulator()
        for start in range(0, n, chunk_size):
            accumulator.add(reports[start : start + chunk_size])
        return accumulator.finalize()

    est_chunked, t_chunked, mem_chunked = _traced(run_chunked)
    lines.append(
        f"  chunked (chunk_size={chunk_size}): {t_chunked:7.2f} s  "
        f"peak {_mib(mem_chunked)}  throughput {n / t_chunked:,.0f} reports/s"
    )

    if one_shot:
        est_dense, t_dense, mem_dense = _traced(lambda: dense_oracle.aggregate(reports))
        lines.append(
            f"  one-shot dense:             {t_dense:7.2f} s  "
            f"peak {_mib(mem_dense)}  throughput {n / t_dense:,.0f} reports/s"
        )
        if est_dense.estimates.tobytes() != est_chunked.estimates.tobytes():
            raise AssertionError("OLH chunked aggregation is not byte-identical")
        lines.append(
            f"  parity: byte-identical; dense peak is "
            f"{mem_dense / max(mem_chunked, 1):,.0f}x the chunked bound"
        )
    else:
        lines.append("  one-shot dense:             skipped (--no-dense)")
    return lines


def bench_ue_packed(n: int, k: int) -> list[str]:
    """OUE reports: dense (n, k) uint8 vs bit-packed storage, end to end."""
    values = np.random.default_rng(0).integers(0, k, size=n)
    dense_oracle = OUE(k=k, epsilon=EPSILON, rng=2)
    reports, t_dense_gen, _ = _traced(lambda: dense_oracle.randomize_many(values))

    packed_oracle = OUE(k=k, epsilon=EPSILON, rng=2, packed=True)
    packed_reports, t_packed_gen, mem_packed_gen = _traced(
        lambda: packed_oracle.randomize_many(values)
    )

    est_dense = dense_oracle.aggregate(reports)
    # pack the *same* dense reports: aggregation must be byte-identical
    est_packed_same = dense_oracle.aggregate(PackedBits.pack(reports))
    if est_dense.estimates.tobytes() != est_packed_same.estimates.tobytes():
        raise AssertionError("packed UE aggregation is not byte-identical")
    guesses = packed_oracle.attack_many(packed_reports)
    if guesses.shape != (n,):
        raise AssertionError("packed UE attack_many returned the wrong shape")

    ratio = reports.nbytes / packed_reports.nbytes
    return [
        f"OUE report storage  (n={n:,}, k={k})",
        f"  dense  reports: {_mib(reports.nbytes)}  (randomize_many {t_dense_gen:5.2f} s)",
        f"  packed reports: {_mib(packed_reports.nbytes)}  "
        f"(randomize_many {t_packed_gen:5.2f} s, gen peak {_mib(mem_packed_gen)})",
        f"  reduction: {ratio:.1f}x; packed aggregation byte-identical, attack OK",
    ]


def bench_ss_vectorized(n: int, k: int) -> list[str]:
    """ω-SS randomize_many: vectorized sampling-key trick vs per-user loop."""
    values = np.random.default_rng(0).integers(0, k, size=n)
    vec_oracle = SubsetSelection(k=k, epsilon=EPSILON, rng=3)
    _, t_vec, _ = _traced(lambda: vec_oracle.randomize_many(values))
    loop_n = min(n, 20_000)  # the loop is too slow for the full n
    loop_oracle = SubsetSelection(k=k, epsilon=EPSILON, rng=3)
    _, t_loop, _ = _traced(lambda: loop_oracle._randomize_many_loop(values[:loop_n]))
    per_user_loop = t_loop / loop_n
    per_user_vec = t_vec / n
    return [
        f"SS randomize_many  (n={n:,}, k={k}, omega={vec_oracle.omega})",
        f"  vectorized: {t_vec:7.2f} s  ({n / t_vec:,.0f} users/s)",
        f"  loop ({loop_n:,} users): {t_loop:7.2f} s  ({loop_n / t_loop:,.0f} users/s)",
        f"  speedup: {per_user_loop / per_user_vec:,.0f}x per user",
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workload (seconds, not minutes)"
    )
    parser.add_argument("--n", type=int, default=None, help="number of users")
    parser.add_argument("--k", type=int, default=None, help="domain size")
    parser.add_argument("--chunk-size", type=int, default=8192)
    parser.add_argument(
        "--no-dense",
        action="store_true",
        help="skip the one-shot dense OLH path (for machines where n*k does not fit)",
    )
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (100_000 if args.quick else 1_000_000)
    k = args.k if args.k is not None else (64 if args.quick else 100)

    sections = [
        bench_olh(n, k, args.chunk_size, one_shot=not args.no_dense),
        bench_ue_packed(min(n, 200_000) if args.quick else min(n, 500_000), k),
        bench_ss_vectorized(n, k),
    ]
    print()
    for section in sections:
        print("\n".join(section))
        print()
    print("all parity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
