"""Ablation A3 — single-attribute utility of the five frequency oracles.

Verifies the substrate the whole paper rests on: every frequency oracle is
an unbiased estimator, OUE/OLH have lower variance than SUE at the same
budget, and the plausible-deniability attack accuracy tracks the analytical
expectation.
"""

import numpy as np
from bench_helpers import run_figure

from repro.datasets import load_dataset
from repro.protocols import available_protocols, make_protocol

N_USERS = 20000
EPSILON = 1.0


def test_ablation_frequency_oracles(benchmark):
    def run():
        dataset = load_dataset("adult", n=N_USERS, rng=3)
        attribute = dataset.domain.index_of("education")
        values = dataset.column(attribute)
        truth = dataset.frequencies(attribute)
        k = dataset.domain.size_of(attribute)
        rows = []
        for name in available_protocols():
            oracle = make_protocol(name, k=k, epsilon=EPSILON, rng=7)
            reports = oracle.randomize_many(values)
            estimate = oracle.aggregate(reports)
            guesses = oracle.attack_many(reports)
            rows.append(
                {
                    "protocol": name,
                    "mse": float(np.mean((estimate.estimates - truth) ** 2)),
                    "attack_acc_pct": 100 * float(np.mean(guesses == values)),
                    "expected_acc_pct": 100 * oracle.expected_attack_accuracy(),
                }
            )
        return rows

    rows = run_figure(benchmark, run, "Ablation - frequency-oracle utility and attack accuracy")
    by_protocol = {row["protocol"]: row for row in rows}
    # estimation error is small for every oracle
    assert all(row["mse"] < 1e-3 for row in rows)
    # OUE has lower error than SUE (the optimization it was designed for)
    assert by_protocol["OUE"]["mse"] < by_protocol["SUE"]["mse"] * 1.5
    # the empirical attack accuracy tracks the closed form for GRR / SUE / OUE
    for name in ("GRR", "SUE", "OUE"):
        row = by_protocol[name]
        assert abs(row["attack_acc_pct"] - row["expected_acc_pct"]) < 3.0
