"""Benchmark E6 — Fig. 6: attribute inference against the RS+RFD countermeasure."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.attribute_inference_rsfd import run_attribute_inference_rsfd
from repro.experiments.attribute_inference_rsrfd import run_attribute_inference_rsrfd

N_USERS = 600
EPSILONS = (2.0, 8.0)


# The paper builds "correct" priors on the full 10,336-user population with a
# total central-DP budget of 0.1; this scaled-down run uses N_USERS users, so
# the budget is scaled up proportionally to keep the prior quality unchanged.
PRIOR_EPSILON = 0.1 * 10336 / N_USERS


def test_fig06_attribute_inference_rsrfd_acs(benchmark):
    def run():
        rsrfd_rows = run_attribute_inference_rsrfd(
            dataset_name="acs_employment",
            n=N_USERS,
            protocols=("GRR", "SUE-r", "OUE-r"),
            epsilons=EPSILONS,
            models=("NK", "PK", "HM"),
            nk_factors=(1.0,),
            pk_fractions=(0.3,),
            prior_kind="correct",
            prior_epsilon=PRIOR_EPSILON,
            seed=1,
            **grid_kwargs(),
        )
        # reference: the corresponding RS+FD protocols (Fig. 3 counterpart)
        rsfd_rows = run_attribute_inference_rsfd(
            dataset_name="acs_employment",
            n=N_USERS,
            protocols=("SUE-z",),
            epsilons=EPSILONS,
            models=("NK",),
            nk_factors=(1.0,),
            pk_fractions=(0.3,),
            seed=1,
            **grid_kwargs(),
        )
        return rsrfd_rows + rsfd_rows

    rows = run_figure(
        benchmark, run, "Fig. 6 - AIF-ACC, RS+RFD (Correct priors) vs RS+FD[SUE-z]"
    )
    rsrfd_max = max(r["aif_acc_pct"] for r in rows if r["protocol"].startswith("RS+RFD"))
    rsfd_suez = max(r["aif_acc_pct"] for r in rows if r["protocol"] == "RS+FD[SUE-z]")
    # the countermeasure keeps the attack far below the leaky RS+FD[SUE-z]
    assert rsrfd_max < rsfd_suez
