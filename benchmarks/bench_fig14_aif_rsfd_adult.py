"""Benchmark E12 — Fig. 14: attribute inference against RS+FD on Adult."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.attribute_inference_rsfd import run_attribute_inference_rsfd

N_USERS = 800
EPSILONS = (2.0, 8.0)
PROTOCOLS = ("GRR", "SUE-z", "OUE-r")


def test_fig14_attribute_inference_rsfd_adult(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_attribute_inference_rsfd(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            epsilons=EPSILONS,
            models=("NK", "PK"),
            nk_factors=(1.0,),
            pk_fractions=(0.3,),
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 14 - AIF-ACC, Adult, RS+FD protocols",
    )
    baseline = rows[0]["baseline_pct"]
    suez = max(r["aif_acc_pct"] for r in rows if r["protocol"] == "RS+FD[SUE-z]")
    # Adult: roughly a 1.3-10x lift over the baseline, with SUE-z near the top
    assert suez > 3 * baseline
