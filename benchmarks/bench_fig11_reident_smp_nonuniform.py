"""Benchmark E9 — Fig. 11: SMP re-identification with the non-uniform privacy metric."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.reident_smp import run_reidentification_smp

N_USERS = 1500
EPSILONS = (8.0,)
PROTOCOLS = ("GRR", "SUE")


def test_fig11_reidentification_smp_non_uniform(benchmark):
    def run():
        rows = []
        for metric in ("uniform", "non-uniform"):
            rows.extend(
                run_reidentification_smp(
                    dataset_name="adult",
                    n=N_USERS,
                    protocols=PROTOCOLS,
                    epsilons=EPSILONS,
                    num_surveys=5,
                    top_ks=(10,),
                    knowledge="FK-RI",
                    metric=metric,
                    seed=1,
                    **grid_kwargs(),
                )
            )
        return rows

    rows = run_figure(
        benchmark, run, "Fig. 11 - RID-ACC, Adult, uniform vs non-uniform privacy metric"
    )
    final = {
        (r["metric"], r["protocol"]): r["rid_acc_pct"] for r in rows if r["surveys"] == 5
    }
    # sampling with replacement (memoization) bounds the re-identification risk
    assert final[("non-uniform", "GRR")] < final[("uniform", "GRR")]
    assert final[("non-uniform", "SUE")] < final[("uniform", "SUE")]
