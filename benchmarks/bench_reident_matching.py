"""Benchmark — incremental re-identification engine vs the reference path.

Seven of the paper's figures (2, 4, 9-13) are RID-ACC-vs-#surveys curves,
so ``ReidentificationAttack.evaluate_profiling`` is the attacker-side
wall-clock bottleneck once GBDT training is fast (PR 3).  This benchmark

* times the incremental block-outer/snapshot-inner engine
  (:class:`repro.attacks.reidentification.ReidentificationAttack`) against
  the original per-snapshot full-recompute engine
  (:class:`repro.attacks.reidentification_reference.ReferenceReidentificationAttack`)
  on the *same* delta-backed profiling result at fig-2 scale;
* measures each engine's peak memory with ``tracemalloc`` and compares the
  delta storage of :class:`~repro.attacks.profile.ProfilingResult` against
  the ``S`` dense snapshot copies it replaced;
* checks accuracy equivalence: the engines agree exactly on tie-free cells
  and are distributionally identical under ties, so their RID-ACC values per
  (#surveys, top-k) must agree within binomial noise;
* writes everything to a JSON artifact so CI can track the trajectory.

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_reident_matching.py --quick

``--quick`` shrinks the workload for CI smoke runs and skips the speedup
gate (machine-dependent); the default full run enforces the acceptance
threshold of a >= 5x ``evaluate_profiling`` speedup at fig-2 scale.  Exits
non-zero on any failed gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.attacks import (
    ReferenceReidentificationAttack,
    ReidentificationAttack,
    build_profiles_smp,
    plan_surveys,
)
from repro.datasets.loaders import load_dataset
from repro.exceptions import InvalidParameterError
from repro.kernels import (
    KERNEL_BACKEND_CHOICES,
    active_backend_name,
    get_backend,
    numba_available,
    set_backend,
)

#: Maximum |RID-ACC difference| (percentage points) tolerated between the
#: two engines for any (#surveys, top-k) point.  Tie-free decisions agree
#: exactly; tied decisions are independent draws of identical per-user hit
#: probabilities, so the gap is binomial noise — the gates below sit at
#: >= 5 sigma for the corresponding quick/full user counts.
QUICK_ACCURACY_GATE_PCT = 5.0
FULL_ACCURACY_GATE_PCT = 1.5


def warm_kernels() -> None:
    """Trigger JIT compilation of the distance kernels before any timing.

    A no-op for the NumPy backend; for numba this compiles the int16/int32
    specializations outside the timed region so the one-time compile cost
    does not pollute the backend comparison.
    """
    backend = get_backend()
    rows = np.zeros((2, 3), dtype=np.int64)
    background = np.zeros((2, 3), dtype=np.int64)
    attributes = np.arange(3, dtype=np.int64)
    for dtype in (np.int16, np.int32):
        out = np.zeros((2, 2), dtype=dtype)
        backend.distance_block(rows, background, attributes, -1, out)
        backend.distance_update(
            out,
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.ones(1, dtype=np.int64),
            background[:, 0],
            -1,
        )


def timed(fn):
    """``(result, seconds, peak_bytes)`` of one call, traced by tracemalloc."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def run_engine(attack_cls, dataset, profiling, top_ks: tuple[int, ...]) -> dict:
    """One engine's full fig-2 workload: every top-k curve of one cell."""
    attack = attack_cls(dataset, rng=2)

    def workload():
        return {
            top_k: attack.evaluate_profiling(profiling, top_k=top_k, model="FK-RI")
            for top_k in top_ks
        }

    results, seconds, peak = timed(workload)
    return {
        "engine": attack_cls.__name__,
        "seconds": seconds,
        "peak_bytes": peak,
        "rid_acc_pct": {
            str(top_k): {
                str(surveys): 100.0 * result.accuracy
                for surveys, result in sorted(per_k.items())
            }
            for top_k, per_k in results.items()
        },
    }


def snapshot_storage(profiling) -> dict:
    """Delta storage vs the S dense snapshot copies it replaced."""
    n, d = profiling.shape
    dense_bytes = len(profiling.deltas) * n * d * 8
    delta_bytes = sum(
        delta.rows.nbytes + delta.attributes.nbytes + delta.values.nbytes
        for delta in profiling.deltas
    )
    return {
        "surveys": len(profiling.deltas),
        "dense_snapshot_bytes": dense_bytes,
        "delta_bytes": delta_bytes,
        "compression": dense_bytes / delta_bytes if delta_bytes else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workload (seconds, not minutes)"
    )
    parser.add_argument("--n", type=int, default=None, help="number of users")
    parser.add_argument("--surveys", type=int, default=None, help="number of surveys")
    parser.add_argument("--epsilon", type=float, default=4.0, help="LDP budget")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the full-scale evaluate_profiling speedup reaches "
        "this factor (ignored with --quick)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_CHOICES,
        default=None,
        help="repro.kernels backend for the timed engines "
        "(default: REPRO_KERNEL_BACKEND, else auto)",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=3.0,
        help="with the numba backend active, fail unless the full-scale "
        "numba-over-numpy kernel speedup reaches this factor (ignored with "
        "--quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("bench_reident_matching.json"),
        help="path of the JSON artifact",
    )
    args = parser.parse_args(argv)
    try:
        set_backend(args.kernel_backend)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    warm_kernels()

    if args.quick:
        n, num_surveys = 4000, 5
    else:
        # fig-2 scale: the full Adult collection, a long survey horizon
        n, num_surveys = None, 10
    n = args.n if args.n is not None else n
    num_surveys = args.surveys if args.surveys is not None else num_surveys
    top_ks = (1, 10)

    dataset = load_dataset("adult", n=n, rng=7)
    surveys = plan_surveys(dataset.d, num_surveys, rng=1)
    profiling = build_profiles_smp(
        dataset, surveys, protocol="GRR", epsilon=args.epsilon, metric="uniform", rng=3
    )
    storage = snapshot_storage(profiling)
    print(
        f"fig-2 workload  (n={dataset.n:,}, d={dataset.d}, surveys={num_surveys}, "
        f"epsilon={args.epsilon}, top_ks={top_ks}, "
        f"kernel backend={active_backend_name()})"
    )
    print(
        f"  profiling storage: deltas {storage['delta_bytes'] / 1e6:.1f} MB vs "
        f"{storage['surveys']} dense snapshots {storage['dense_snapshot_bytes'] / 1e6:.1f} MB "
        f"({storage['compression']:.1f}x smaller)"
    )

    new = run_engine(ReidentificationAttack, dataset, profiling, top_ks)
    old = run_engine(ReferenceReidentificationAttack, dataset, profiling, top_ks)
    speedup = old["seconds"] / new["seconds"]
    memory_ratio = old["peak_bytes"] / max(1, new["peak_bytes"])
    print(
        f"  incremental {new['seconds']:7.2f} s   reference {old['seconds']:7.2f} s   "
        f"speedup {speedup:.1f}x"
    )
    print(
        f"  peak memory: incremental {new['peak_bytes'] / 1e6:.1f} MB   "
        f"reference {old['peak_bytes'] / 1e6:.1f} MB   ({memory_ratio:.1f}x less)"
    )

    max_diff_pct = 0.0
    for top_k in top_ks:
        for surveys_done, new_pct in new["rid_acc_pct"][str(top_k)].items():
            old_pct = old["rid_acc_pct"][str(top_k)][surveys_done]
            max_diff_pct = max(max_diff_pct, abs(new_pct - old_pct))
            print(
                f"    top-{top_k:<2} surveys={surveys_done}: "
                f"incremental {new_pct:6.2f}%  reference {old_pct:6.2f}%"
            )
    print(f"  max |RID-ACC difference| {max_diff_pct:.3f} pct points")

    # numba-vs-numpy kernel comparison: the incremental engine's RNG stream
    # and integer distance state are backend-independent, so RID-ACC must
    # match exactly; the speedup is what the numba backend is for.
    kernel = {"backend": active_backend_name()}
    if active_backend_name() == "numba":
        set_backend("numpy")
        warm_kernels()
        numpy_run = run_engine(ReidentificationAttack, dataset, profiling, top_ks)
        set_backend("numba")
        kernel_speedup = numpy_run["seconds"] / new["seconds"]
        kernel.update(
            {
                "numpy_seconds": numpy_run["seconds"],
                "numba_seconds": new["seconds"],
                "kernel_speedup": kernel_speedup,
                "rid_acc_exact_match": numpy_run["rid_acc_pct"] == new["rid_acc_pct"],
            }
        )
        print(
            f"  kernel backends: numba {new['seconds']:7.2f} s   "
            f"numpy {numpy_run['seconds']:7.2f} s   "
            f"speedup {kernel_speedup:.1f}x   "
            f"exact RID-ACC match: {kernel['rid_acc_exact_match']}"
        )
    elif numba_available():
        print("  (numba available but not selected; no kernel comparison)")

    artifact = {
        "benchmark": "bench_reident_matching",
        "quick": args.quick,
        "config": {
            "n": dataset.n,
            "d": dataset.d,
            "num_surveys": num_surveys,
            "epsilon": args.epsilon,
            "top_ks": list(top_ks),
        },
        "storage": storage,
        "kernel": kernel,
        "incremental": new,
        "reference": old,
        "speedup": speedup,
        "peak_memory_ratio": memory_ratio,
        "max_rid_acc_diff_pct": max_diff_pct,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {args.out}")

    failed = False
    accuracy_gate = QUICK_ACCURACY_GATE_PCT if args.quick else FULL_ACCURACY_GATE_PCT
    if max_diff_pct > accuracy_gate:
        print(
            f"FAIL: RID-ACC gap {max_diff_pct:.3f} pct points > {accuracy_gate} "
            "(engines are no longer distributionally equivalent)"
        )
        failed = True
    if not args.quick and speedup < args.min_speedup:
        print(
            f"FAIL: evaluate_profiling speedup {speedup:.1f}x "
            f"< required {args.min_speedup:.1f}x"
        )
        failed = True
    if "kernel_speedup" in kernel:
        if not kernel["rid_acc_exact_match"]:
            print("FAIL: numba and numpy kernel backends disagree on RID-ACC")
            failed = True
        if not args.quick and kernel["kernel_speedup"] < args.min_kernel_speedup:
            print(
                f"FAIL: numba kernel speedup {kernel['kernel_speedup']:.1f}x "
                f"< required {args.min_kernel_speedup:.1f}x"
            )
            failed = True
    if failed:
        return 1
    print("all equivalence/speedup gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
