"""Benchmark E3 — Fig. 3: attribute inference against RS+FD on ACSEmployment."""

from repro.experiments.attribute_inference_rsfd import run_attribute_inference_rsfd

from bench_helpers import grid_kwargs, run_figure

N_USERS = 600
EPSILONS = (2.0, 8.0)
PROTOCOLS = ("GRR", "SUE-z", "OUE-z", "SUE-r", "OUE-r")


def test_fig03_attribute_inference_rsfd_acs(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_attribute_inference_rsfd(
            dataset_name="acs_employment",
            n=N_USERS,
            protocols=PROTOCOLS,
            epsilons=EPSILONS,
            models=("NK", "PK", "HM"),
            nk_factors=(1.0,),
            pk_fractions=(0.3,),
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 3 - AIF-ACC, ACSEmployment, RS+FD protocols, NK/PK/HM",
    )
    nk = {
        (r["protocol"], r["epsilon"]): r["aif_acc_pct"]
        for r in rows
        if r["model"] == "NK"
    }
    baseline = rows[0]["baseline_pct"]
    # zero-vector fake data leaks the most; the attack beats the baseline
    assert nk[("RS+FD[SUE-z]", 8.0)] > nk[("RS+FD[OUE-r]", 8.0)]
    assert nk[("RS+FD[SUE-z]", 8.0)] > 3 * baseline
