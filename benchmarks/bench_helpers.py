"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows behind one figure of the paper at a
scaled-down size (see DESIGN.md, "Per-experiment index").  The functions are
expensive end-to-end pipelines, so each benchmark runs exactly one round and
the resulting rows are printed so the series can be compared against the
paper (qualitative shape, not absolute values).
"""

from __future__ import annotations

from repro.experiments.reporting import format_table


def run_figure(benchmark, func, label: str, columns=None):
    """Run ``func`` once under pytest-benchmark and print its rows."""
    rows = benchmark.pedantic(func, rounds=1, iterations=1)
    print(f"\n=== {label} ===")
    print(format_table(rows, columns=columns))
    return rows
