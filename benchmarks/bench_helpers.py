"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows behind one figure of the paper at a
scaled-down size (see DESIGN.md, "Per-experiment index").  The functions are
expensive end-to-end pipelines, so each benchmark runs exactly one round and
the resulting rows are printed so the series can be compared against the
paper (qualitative shape, not absolute values).
"""

from __future__ import annotations

import os

from repro.experiments.reporting import format_table


def run_figure(benchmark, func, label: str, columns=None):
    """Run ``func`` once under pytest-benchmark and print its rows."""
    rows = benchmark.pedantic(func, rounds=1, iterations=1)
    print(f"\n=== {label} ===")
    print(format_table(rows, columns=columns))
    return rows


def grid_kwargs() -> dict:
    """Grid-engine knobs for the benchmarks, taken from the environment.

    ``REPRO_BENCH_WORKERS`` sets the process-pool size (default 1, i.e. the
    sequential in-process path, so timings stay comparable by default) and
    ``REPRO_BENCH_CACHE`` points at an on-disk cell-cache directory (unset =
    no caching, every benchmark run recomputes its cells).

    ``REPRO_BENCH_SHARDS`` (> 1) routes each figure through the sharded
    executor instead — one subprocess shard worker per shard, each running
    ``REPRO_BENCH_WORKERS`` pool workers — with partial artifacts under
    ``REPRO_BENCH_SHARD_DIR`` (a persistent directory makes interrupted
    benchmark sweeps resumable; unset uses a temporary directory).  Rows are
    byte-identical to the in-process paths.

    ``REPRO_BENCH_CACHE_BACKEND`` (``json``, the default, or ``sqlite``)
    selects the cell-store layout for both the cache and the shard
    journal/artifact layer.

    ``REPRO_BENCH_REMOTE_WORKERS`` (> 0) routes each figure through the
    lease-based remote executor instead — a local HTTP coordinator plus
    that many worker subprocesses (``REPRO_BENCH_SHARDS`` takes precedence
    when both are set).  Rows are byte-identical to the in-process paths;
    ``REPRO_CHAOS`` fault-injection directives apply to the workers as
    usual, so recovery costs can be benchmarked too.

    ``REPRO_BENCH_KERNEL_BACKEND`` (``numpy``, ``numba`` or ``auto``)
    selects the process-wide :mod:`repro.kernels` backend before the
    benchmark runs; unset leaves the library's own resolution
    (``REPRO_KERNEL_BACKEND``, else ``auto``) in charge.
    """
    kwargs: dict = {}
    kernel_backend = os.environ.get("REPRO_BENCH_KERNEL_BACKEND")
    if kernel_backend:
        from repro.kernels import set_backend

        set_backend(kernel_backend)
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    if workers > 1:
        kwargs["workers"] = workers
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    backend = os.environ.get("REPRO_BENCH_CACHE_BACKEND", "json")
    if cache_dir:
        from repro.experiments.grid import CellStore

        kwargs["cache"] = CellStore.from_options(cache_dir, cache_backend=backend)
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "0"))
    remote_workers = int(os.environ.get("REPRO_BENCH_REMOTE_WORKERS", "0"))
    if shards > 1:
        from repro.experiments.sharding import ShardedExecutor

        kwargs["executor"] = ShardedExecutor(
            shards,
            workers=max(workers, 1),
            directory=os.environ.get("REPRO_BENCH_SHARD_DIR"),
            cache_dir=cache_dir or None,
            cache_backend=backend,
        )
    elif remote_workers > 0:
        from repro.experiments.remote import RemoteExecutor

        kwargs["executor"] = RemoteExecutor(workers=remote_workers)
    return kwargs
