"""Benchmark E11 — Fig. 13: SMP re-identification under the PIE model (non-uniform)."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.reident_smp import run_reidentification_smp

N_USERS = 1500
BETAS = (0.95, 0.65, 0.5)
PROTOCOLS = ("GRR", "OUE")


def test_fig13_reidentification_smp_pie_non_uniform(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            pie_betas=BETAS,
            num_surveys=4,
            top_ks=(10,),
            knowledge="FK-RI",
            metric="non-uniform",
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 13 - RID-ACC, Adult, PIE privacy metric (non-uniform)",
    )
    assert all(row["privacy_axis"] == "beta" for row in rows)
    grr = {
        r["privacy_level"]: r["rid_acc_pct"]
        for r in rows
        if r["protocol"] == "GRR" and r["surveys"] == 4
    }
    assert grr[0.5] >= grr[0.95]
