"""Benchmark E2 — Fig. 2: SMP re-identification risk on Adult (FK-RI, uniform)."""

from repro.experiments.reident_smp import run_reidentification_smp

from bench_helpers import grid_kwargs, run_figure

N_USERS = 2000
EPSILONS = (1.0, 4.0, 8.0)
PROTOCOLS = ("GRR", "SS", "SUE", "OLH", "OUE")


def test_fig02_reidentification_smp_adult(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            epsilons=EPSILONS,
            num_surveys=5,
            top_ks=(1, 10),
            knowledge="FK-RI",
            metric="uniform",
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 2 - RID-ACC, Adult, SMP, FK-RI, uniform metric",
    )
    final = {
        (r["protocol"], r["top_k"]): r["rid_acc_pct"]
        for r in rows
        if r["privacy_level"] == 8.0 and r["surveys"] == 5
    }
    # GRR and SUE are far riskier than OLH and OUE (paper: ~10x gap)
    assert final[("GRR", 10)] > 2 * final[("OUE", 10)]
    assert final[("SUE", 10)] > final[("OLH", 10)]
