"""Benchmark E4 — Fig. 4: re-identification risk of the RS+FD[GRR] solution."""

from repro.experiments.reident_rsfd import run_reidentification_rsfd
from repro.experiments.reident_smp import run_reidentification_smp

from bench_helpers import grid_kwargs, run_figure

N_USERS = 800
EPSILONS = (4.0, 8.0)


def test_fig04_reidentification_rsfd_adult(benchmark):
    def run():
        rsfd_rows = run_reidentification_rsfd(
            dataset_name="adult",
            n=N_USERS,
            epsilons=EPSILONS,
            num_surveys=4,
            top_ks=(1, 10),
            seed=1,
            **grid_kwargs(),
        )
        # reference: the same attack against SMP with GRR (Fig. 2 counterpart)
        smp_rows = run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=("GRR",),
            epsilons=EPSILONS,
            num_surveys=4,
            top_ks=(1, 10),
            seed=1,
            **grid_kwargs(),
        )
        for row in smp_rows:
            row["protocol"] = "SMP[GRR]"
        return rsfd_rows + smp_rows

    rows = run_figure(benchmark, run, "Fig. 4 - RID-ACC, Adult, RS+FD[GRR] vs SMP[GRR]")
    rsfd = max(
        r["rid_acc_pct"] for r in rows if r["protocol"] == "grr" and r["top_k"] == 10
    )
    smp = max(
        r["rid_acc_pct"] for r in rows if r["protocol"] == "SMP[GRR]" and r["top_k"] == 10
    )
    # the paper's headline: RS+FD drastically reduces re-identification vs SMP
    assert rsfd < smp
