"""Benchmark E13 — Fig. 15: attribute inference on Nursery (uniform-like data)."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.attribute_inference_rsfd import run_attribute_inference_rsfd

N_USERS = 800
EPSILONS = (8.0,)


def test_fig15_attribute_inference_rsfd_nursery(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_attribute_inference_rsfd(
            dataset_name="nursery",
            n=N_USERS,
            protocols=("GRR", "OUE-r", "SUE-z"),
            epsilons=EPSILONS,
            models=("NK",),
            nk_factors=(1.0,),
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 15 - AIF-ACC, Nursery (uniform-like attributes)",
    )
    baseline = rows[0]["baseline_pct"]
    values = {r["protocol"]: r["aif_acc_pct"] for r in rows}
    # uniform-like attributes defeat the attack for GRR / UE-r fake data ...
    assert values["RS+FD[GRR]"] < 2.5 * baseline
    assert values["RS+FD[OUE-r]"] < 2.5 * baseline
    # ... but zero-vector fake data still leaks the sampled attribute
    assert values["RS+FD[SUE-z]"] > 3 * baseline
