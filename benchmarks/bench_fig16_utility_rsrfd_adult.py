"""Benchmark E14 — Fig. 16: analytical + empirical utility on Adult, all priors."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.utility_rsrfd import run_utility_rsrfd

N_USERS = 6000
EPSILONS = (0.6931471805599453, 1.3862943611198906, 1.9459101090932196)  # ln2, ln4, ln7


def test_fig16_utility_rsrfd_adult_all_priors(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_utility_rsrfd(
            dataset_name="adult",
            n=N_USERS,
            protocols=("GRR", "OUE-r"),
            epsilons=EPSILONS,
            prior_kinds=("correct", "dir", "zipf", "exp"),
            include_analytical=True,
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 16 - MSE_avg and analytical variance, Adult, Correct/DIR/ZIPF/EXP priors",
    )
    assert all(row["analytical_variance"] > 0 for row in rows)
    # empirical error decreases with epsilon for every (solution, protocol, prior)
    from repro.experiments.reporting import pivot_series

    series = pivot_series(rows, x="epsilon", y="mse_avg", series=["solution", "protocol", "prior"])
    for key, points in series.items():
        values = [y for _, y in points]
        assert values[-1] <= values[0] * 1.5, key
    # empirical error and analytical variance agree in order of magnitude
    for row in rows:
        assert row["mse_avg"] < 50 * row["analytical_variance"] + 1e-3
