"""Benchmark E1 — Fig. 1: analytical attacker accuracy (Eqs. 4 and 5)."""

from repro.experiments.analytical_acc import run_analytical_acc

from bench_helpers import grid_kwargs, run_figure


def test_fig01_analytical_attacker_accuracy(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_analytical_acc(**grid_kwargs()),
        "Fig. 1 - expected profiling accuracy, d=3, k=[74, 7, 16]",
    )
    values = {(r["metric"], r["protocol"], r["epsilon"]): r["expected_acc_pct"] for r in rows}
    # qualitative shape: GRR/SS/SUE dominate OLH/OUE, uniform >= non-uniform
    assert values[("uniform", "GRR", 10.0)] > values[("uniform", "OUE", 10.0)]
    assert values[("uniform", "GRR", 10.0)] >= values[("non-uniform", "GRR", 10.0)]
