"""Benchmark — lease-based remote executor vs the serial engine.

PR 8 adds :class:`repro.experiments.RemoteExecutor`: a coordinator that
leases cells to worker subprocesses over stdlib HTTP, with heartbeats, lease
expiry and work stealing.  This benchmark measures what that machinery costs
(and buys) on a real figure grid:

* **serial** — the in-process baseline (:class:`SerialExecutor`);
* **remote-1** — coordinator + one local worker subprocess: the pure
  orchestration overhead (HTTP round-trips, heartbeats, JSON marshalling)
  with zero parallelism;
* **remote-N** — coordinator + N workers: the speedup once cells run
  concurrently;
* **remote-N-chaos** — the same N workers, but worker 0 is killed by
  ``kill_after:1`` fault injection mid-run: the cost of recovery
  (lease expiry + re-grant) with the artifact still byte-identical.

Byte-identical rows across all four runs are the acceptance gate — a remote
run that drifts from the serial artifact exits non-zero, timings attached.

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_remote_executor.py --quick --out out.json

``--workers`` sets N (default 3); ``--figure`` picks the grid (default
``fig1``, whose quick plan is 10 independent cells).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import RemoteExecutor, SerialExecutor
from repro.experiments.grid import run_grid
from repro.experiments.remote import CHAOS_ENV
from repro.experiments.runner import figure_spec


def time_run(cells, executor=None) -> tuple[float, list[dict]]:
    """Wall-clock one uncached grid execution; returns (seconds, rows)."""
    start = time.perf_counter()
    result = run_grid(cells, executor=executor)
    return time.perf_counter() - start, result.rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--figure", default="fig1", help="figure grid to run")
    parser.add_argument("--workers", type=int, default=3, metavar="N")
    parser.add_argument(
        "--quick", action="store_true", help="quick-config plan (the CI size)"
    )
    parser.add_argument("--lease-timeout", type=float, default=5.0, metavar="S")
    parser.add_argument("--out", default=None, metavar="FILE")
    args = parser.parse_args(argv)

    cells = figure_spec(args.figure, quick=args.quick).plan(None)
    report: dict = {
        "figure": args.figure,
        "quick": args.quick,
        "cells": len(cells),
        "workers": args.workers,
    }

    serial_s, serial_rows = time_run(cells, SerialExecutor())
    report["serial_s"] = round(serial_s, 4)

    def remote(workers: int) -> RemoteExecutor:
        return RemoteExecutor(workers=workers, lease_timeout=args.lease_timeout)

    remote1_s, remote1_rows = time_run(cells, remote(1))
    report["remote_1_s"] = round(remote1_s, 4)
    report["overhead_1_s"] = round(remote1_s - serial_s, 4)

    remote_n_s, remote_n_rows = time_run(cells, remote(args.workers))
    report[f"remote_{args.workers}_s"] = round(remote_n_s, 4)
    report["speedup_n"] = round(serial_s / remote_n_s, 3) if remote_n_s else None

    # chaos leg: worker 0 dies holding its 2nd lease; survivors recover it
    os.environ[CHAOS_ENV] = "kill_after:1@0"
    try:
        chaos_s, chaos_rows = time_run(cells, remote(args.workers))
    finally:
        del os.environ[CHAOS_ENV]
    report["remote_chaos_s"] = round(chaos_s, 4)
    report["recovery_cost_s"] = round(chaos_s - remote_n_s, 4)

    blob = json.dumps(serial_rows, sort_keys=True)
    report["byte_identical"] = all(
        json.dumps(rows, sort_keys=True) == blob
        for rows in (remote1_rows, remote_n_rows, chaos_rows)
    )

    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    if not report["byte_identical"]:
        print("FAIL: remote artifacts drifted from the serial baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
