"""Benchmark E15 — Fig. 17: attribute inference vs RS+RFD with Incorrect priors."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.attribute_inference_rsrfd import run_attribute_inference_rsrfd

N_USERS = 600
EPSILONS = (2.0, 8.0)


def test_fig17_attribute_inference_rsrfd_incorrect_priors(benchmark):
    def run():
        rows = []
        for prior_kind in ("dir", "zipf", "exp"):
            rows.extend(
                run_attribute_inference_rsrfd(
                    dataset_name="acs_employment",
                    n=N_USERS,
                    protocols=("GRR", "OUE-r"),
                    epsilons=EPSILONS,
                    models=("NK",),
                    nk_factors=(1.0,),
                    prior_kind=prior_kind,
                    seed=1,
                    **grid_kwargs(),
                )
            )
        return rows

    rows = run_figure(
        benchmark, run, "Fig. 17 - AIF-ACC, RS+RFD with Incorrect (DIR/ZIPF/EXP) priors"
    )
    baseline = rows[0]["baseline_pct"]
    values = {
        (r["prior"], r["protocol"], r["epsilon"]): r["aif_acc_pct"] for r in rows
    }
    for prior_kind in ("dir", "zipf", "exp"):
        # the UE encoding noise keeps OUE-r below GRR, as in the paper
        assert (
            values[(prior_kind, "RS+RFD[OUE-r]", 8.0)]
            <= values[(prior_kind, "RS+RFD[GRR]", 8.0)] * 1.2
        )
        # in the high-privacy regime the attack stays close to the baseline
        # (the zipf prior on the synthetic surrogate sits a little above the
        # paper's gap, hence the 5x margin)
        assert values[(prior_kind, "RS+RFD[OUE-r]", 2.0)] < 5 * baseline
    # NOTE: at epsilon = 8 the synthetic surrogate leaks more through
    # mis-specified priors than the paper's real data (see EXPERIMENTS.md),
    # so no upper bound is asserted for the GRR variant there.
