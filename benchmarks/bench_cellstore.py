"""Benchmark — SQLite cell store vs the file-per-cell JSON cache.

PR 6 moves the grid engine's persistence (cached cells, shard completion
journals, the run ledger) into one WAL-mode SQLite database
(:class:`repro.experiments.SQLiteCellStore`).  This benchmark measures the
four operations that dominate production-scale grids (1e4-1e5 entries) on
*both* backends over identical synthetic cells:

* **put** — persisting freshly computed cells;
* **get** — reading cells back (each hit also refreshes LRU state:
  ``os.utime`` on JSON, an indexed ``UPDATE`` on SQLite);
* **evict** — opening the filled store with ``max_entries = n/2`` and
  putting once, which forces half the entries out (a full directory scan +
  per-file unlink on JSON; one indexed ``DELETE`` on SQLite);
* **resume-scan** — recovering a shard's completed-cell set (replaying the
  JSONL journal line by line vs one ``shard_journal`` query).

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_cellstore.py --quick --out out.json

``--quick`` uses 1e4 entries (the CI size), the default full run 1e5.  The
acceptance gate — SQLite at least 5x faster than JSON on the combined
resume-scan + eviction time — is enforced at both sizes; exits non-zero
when it fails.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import GridCache, GridCell, SQLiteCellStore
from repro.experiments.sharding import _journal_path, _load_journal, shard_artifact_path

#: Combined resume-scan + eviction speedup the SQLite backend must reach.
SPEEDUP_GATE = 5.0


def make_cells(n: int) -> list[GridCell]:
    """``n`` distinct synthetic cells (no runner execution involved)."""
    return [
        GridCell(figure="bench", runner="bench_cellstore", params={"i": i})
        for i in range(n)
    ]


def rows_for(i: int) -> list[dict]:
    """One cell's synthetic result rows (small, like an aggregate row)."""
    return [{"i": i, "value": i * 0.5, "metric": "bench"}]


def timed(fn) -> "tuple[object, float]":
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_backend(backend: str, cells: list[GridCell], root: Path) -> dict:
    """Time put / get / evict / resume-scan for one backend."""
    n = len(cells)
    cache_dir = root / backend / "cache"
    shard_dir = root / backend / "shards"
    shard_dir.mkdir(parents=True, exist_ok=True)

    def open_store(max_entries=None):
        if backend == "sqlite":
            return SQLiteCellStore.for_directory(cache_dir, max_entries=max_entries)
        return GridCache(cache_dir, max_entries=max_entries)

    store = open_store()
    _, put_s = timed(
        lambda: [store.put(cell, rows_for(i), 0.0) for i, cell in enumerate(cells)]
    )
    hits, get_s = timed(lambda: sum(store.get(cell) is not None for cell in cells))
    assert hits == n, f"{backend}: {hits}/{n} gets hit"

    # resume-scan: the state a re-invoked shard reads before computing.
    fingerprint = "f" * 64
    entries = [
        {"config_hash": cell.config_hash, "rows": rows_for(i), "elapsed": 0.0}
        for i, cell in enumerate(cells)
    ]
    if backend == "sqlite":
        journal_store = SQLiteCellStore(shard_dir / "shards.sqlite")
        _, append_s = timed(
            lambda: [journal_store.journal_append(fingerprint, 0, e) for e in entries]
        )
        recovered, scan_s = timed(lambda: journal_store.journal_entries(fingerprint))
        journal_store.close()
    else:
        journal = _journal_path(shard_artifact_path(shard_dir, 1, 0))

        def append_all():
            with open(journal, "a", encoding="utf-8") as handle:
                for entry in entries:
                    handle.write(
                        json.dumps({"plan_hash": fingerprint, "entry": entry}) + "\n"
                    )

        _, append_s = timed(append_all)
        recovered, scan_s = timed(lambda: _load_journal(journal, fingerprint))
    assert len(recovered) == n, f"{backend}: resume-scan recovered {len(recovered)}/{n}"

    # eviction: reopen bounded at n/2 and put once -> half the store must go
    if backend == "sqlite":
        store.close()
    bounded = open_store(max_entries=n // 2)
    extra = GridCell(figure="bench", runner="bench_cellstore", params={"i": n})
    _, evict_s = timed(lambda: bounded.put(extra, rows_for(n), 0.0))
    remaining = len(bounded)
    assert remaining <= n // 2, f"{backend}: {remaining} entries survived the bound"
    if backend == "sqlite":
        bounded.close()

    return {
        "backend": backend,
        "entries": n,
        "put_seconds": put_s,
        "get_seconds": get_s,
        "journal_append_seconds": append_s,
        "resume_scan_seconds": scan_s,
        "evict_seconds": evict_s,
        "remaining_after_eviction": remaining,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="1e4 entries (CI size) instead of 1e5"
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the JSON artifact to FILE"
    )
    args = parser.parse_args(argv)
    n = 10_000 if args.quick else 100_000

    root = Path(tempfile.mkdtemp(prefix="bench-cellstore-"))
    try:
        cells = make_cells(n)
        results = {
            backend: bench_backend(backend, cells, root)
            for backend in ("json", "sqlite")
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)

    combined_json = (
        results["json"]["resume_scan_seconds"] + results["json"]["evict_seconds"]
    )
    combined_sqlite = (
        results["sqlite"]["resume_scan_seconds"] + results["sqlite"]["evict_seconds"]
    )
    speedup = combined_json / combined_sqlite if combined_sqlite > 0 else float("inf")
    artifact = {
        "benchmark": "cellstore",
        "entries": n,
        "quick": args.quick,
        "backends": results,
        "resume_plus_evict_speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
    }

    print(json.dumps(artifact, indent=1))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(artifact, indent=1), encoding="utf-8")

    if speedup < SPEEDUP_GATE:
        print(
            f"GATE FAILED: resume-scan+eviction speedup {speedup:.1f}x "
            f"< {SPEEDUP_GATE:.0f}x at {n} entries",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate passed: sqlite {speedup:.1f}x faster on resume-scan+eviction "
        f"at {n} entries (gate {SPEEDUP_GATE:.0f}x)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
