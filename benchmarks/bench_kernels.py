"""Micro-benchmark — the three ``repro.kernels`` hot kernels, per backend.

The pluggable kernel layer (PR 10) dispatches the re-identification
distance kernels, the GBDT histogram product and the OLH support/attack
kernels through :func:`repro.kernels.get_backend`.  This benchmark times
each kernel in isolation on every requested backend and cross-checks the
backends against each other:

* ``distance_block`` / ``distance_update`` — profile/record mismatch
  counting, the inner loop of ``ReidentificationAttack``;
* ``histogram_product`` — the level-wise ``W^T X`` product behind GBDT
  training;
* ``olh_support`` / ``olh_attack_counts`` / ``olh_attack_select`` — the
  OLH hash-enumeration kernels behind frequency estimation and the
  per-report attack.

Integer-valued kernels must agree bitwise across backends; the float64
``histogram_product`` may differ in summation order only (allclose at
1e-12).  Each kernel is warmed once before timing so numba's one-time JIT
compile never lands in a measurement.

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick

``--backend`` may be repeated to pin the backend set (default: every
importable backend).  Exits 2 on an unavailable backend, 1 on any parity
failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.kernels import available_backends, get_backend, set_backend
from repro.protocols.olh import HASH_PRIME


def make_workloads(quick: bool) -> dict:
    """Fixed-seed inputs for every kernel, shared by all backends."""
    rng = np.random.default_rng(0)
    if quick:
        block, m, d = 256, 2_000, 12
        slots, hist_n, hist_f = 64, 4_000, 64
        reports_m, k, g = 4_000, 64, 8
    else:
        block, m, d = 1_024, 20_000, 14
        slots, hist_n, hist_f = 256, 30_000, 200
        reports_m, k, g = 50_000, 128, 16
    # distance kernels: -1 is the unknown sentinel, values in [0, 8)
    rows = rng.integers(-1, 8, size=(block, d)).astype(np.int64)
    background = rng.integers(0, 8, size=(m, d)).astype(np.int64)
    attributes = np.arange(d, dtype=np.int64)
    update_rows = np.arange(block, dtype=np.int64)
    old_values = rows[:, 0].copy()
    new_values = rng.integers(-1, 8, size=block).astype(np.int64)
    # histogram kernel: mostly-zero scattered weights, binary indicators
    weights_t = rng.random((slots, hist_n)) * (rng.random((slots, hist_n)) < 0.2)
    features = rng.integers(0, 2, size=(hist_n, hist_f)).astype(np.float64)
    # OLH kernels: (a, b, y) report triples plus rank-indexed selection
    a = rng.integers(1, HASH_PRIME, size=reports_m, dtype=np.int64)
    b = rng.integers(0, HASH_PRIME, size=reports_m, dtype=np.int64)
    y = rng.integers(0, g, size=reports_m, dtype=np.int64)
    reports = np.column_stack([a, b, y])
    domain = np.arange(k, dtype=np.int64)
    hashed_all = ((a[:, None] * domain[None, :] + b[:, None]) % HASH_PRIME) % g
    counts = (hashed_all == y[:, None]).sum(axis=1).astype(np.int64)
    select_rows = np.flatnonzero(counts > 0).astype(np.int64)
    ranks = counts[select_rows] // 2
    return {
        "distance": (rows, background, attributes, update_rows, old_values, new_values),
        "histogram": (weights_t, features),
        "olh": (reports, k, g, select_rows, ranks),
    }


def bench_backend(name: str, workloads: dict, repeats: int) -> dict:
    """Per-kernel best-of-``repeats`` seconds plus outputs for parity."""
    set_backend(name)
    backend = get_backend()
    rows, background, attributes, update_rows, old_values, new_values = workloads[
        "distance"
    ]
    weights_t, features = workloads["histogram"]
    reports, k, g, select_rows, ranks = workloads["olh"]

    def run_distance_block():
        out = np.zeros((rows.shape[0], background.shape[0]), dtype=np.int32)
        return backend.distance_block(rows, background, attributes, -1, out)

    base_distances = run_distance_block()

    def run_distance_update():
        distances = base_distances.copy()
        backend.distance_update(
            distances, update_rows, old_values, new_values, background[:, 0], -1
        )
        return distances

    calls = {
        "distance_block": run_distance_block,
        "distance_update": run_distance_update,
        "histogram_product": lambda: backend.histogram_product(weights_t, features),
        "olh_support": lambda: backend.olh_support(reports, k, g, HASH_PRIME),
        "olh_attack_counts": lambda: backend.olh_attack_counts(
            reports, k, g, HASH_PRIME
        ),
        "olh_attack_select": lambda: backend.olh_attack_select(
            reports, k, g, HASH_PRIME, select_rows, ranks
        ),
    }
    seconds: dict[str, float] = {}
    outputs: dict[str, np.ndarray] = {}
    for kernel, call in calls.items():
        outputs[kernel] = call()  # warm-up (JIT compile) + parity output
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            call()
            best = min(best, time.perf_counter() - start)
        seconds[kernel] = best
    return {"seconds": seconds, "outputs": outputs}


#: Kernels whose outputs must agree bitwise across backends.
EXACT_KERNELS = (
    "distance_block",
    "distance_update",
    "olh_support",
    "olh_attack_counts",
    "olh_attack_select",
)


def check_parity(runs: dict[str, dict], reference: str) -> tuple[list[str], dict]:
    """Cross-backend parity failures plus the histogram max-diff record."""
    failures: list[str] = []
    histogram = {}
    for name, run in runs.items():
        if name == reference:
            continue
        for kernel in EXACT_KERNELS:
            if not np.array_equal(
                run["outputs"][kernel], runs[reference]["outputs"][kernel]
            ):
                failures.append(f"{kernel}: {name} != {reference}")
        diff = float(
            np.abs(
                run["outputs"]["histogram_product"]
                - runs[reference]["outputs"]["histogram_product"]
            ).max()
        )
        histogram[name] = diff
        if not np.allclose(
            run["outputs"]["histogram_product"],
            runs[reference]["outputs"]["histogram_product"],
            rtol=1e-12,
            atol=1e-12,
        ):
            failures.append(
                f"histogram_product: {name} vs {reference} max diff {diff:.2e}"
            )
    return failures, histogram


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=("numpy", "numba"),
        default=None,
        help="backend to benchmark (repeatable; default: every importable one)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repetitions per kernel"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("bench_kernels.json"),
        help="path of the JSON artifact",
    )
    args = parser.parse_args(argv)
    backends = args.backend or list(available_backends())
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)

    workloads = make_workloads(args.quick)
    runs: dict[str, dict] = {}
    print(f"kernel micro-benchmark  (backends={backends}, repeats={repeats})")
    try:
        for name in backends:
            runs[name] = bench_backend(name, workloads, repeats)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        set_backend("numpy")

    kernels = list(runs[backends[0]]["seconds"])
    for kernel in kernels:
        parts = [
            f"{name} {runs[name]['seconds'][kernel] * 1e3:8.3f} ms"
            for name in backends
        ]
        line = f"  {kernel:<18} " + "   ".join(parts)
        if len(backends) > 1:
            base, other = backends[0], backends[1]
            ratio = runs[base]["seconds"][kernel] / runs[other]["seconds"][kernel]
            line += f"   ({other} {ratio:.1f}x vs {base})"
        print(line)

    failures: list[str] = []
    histogram_diffs: dict[str, float] = {}
    if len(runs) > 1:
        failures, histogram_diffs = check_parity(runs, backends[0])
        if histogram_diffs:
            worst = max(histogram_diffs.values())
            print(f"  histogram_product max cross-backend diff {worst:.2e}")

    artifact = {
        "benchmark": "bench_kernels",
        "quick": args.quick,
        "repeats": repeats,
        "backends": backends,
        "seconds": {name: runs[name]["seconds"] for name in runs},
        "histogram_max_diff": histogram_diffs,
        "parity_failures": failures,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: cross-backend parity: {failure}")
        return 1
    print("all cross-backend parity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
