"""Benchmark — live collection service throughput and estimate parity.

Drives the :mod:`repro.service` collection pipeline with synthetic
million-user load shaped like a real deployment: a churning user population,
a non-stationary (drifting hot item) value distribution, duplicate batch
deliveries, and one deliberately forced backpressure (429) episode.  Two
paths are measured at ``k = 100``:

* **in-process ingest** — batches flow through the same dedup + windowed
  accumulator path as HTTP traffic (``CollectionService.ingest_local``),
  isolating the server-side fold from transport cost; this is the
  sustained-throughput acceptance gate (>= 1e5 reports/second);
* **HTTP loopback** — the full wire path (JSON over a loopback socket,
  bounded queue, applier thread) with duplicates and a forced 429, as CI
  runs it.

Both paths end with the parity gate: the service's snapshot estimate must be
**byte-identical** to a one-shot ``aggregate`` over the de-duplicated report
stream (support counts are integer-valued float64s, so no accumulation order
can change a bit — duplicates or backpressure changing even one bit means a
dedup or window bug).

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_collection_service.py --quick

``--quick`` shrinks the workload for CI smoke runs; the default is 1e6 users
(pass ``--users 100000000`` for the 1e8 stress scale).  Exits non-zero if a
parity or throughput gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.retry import RetryPolicy
from repro.service.client import (
    CollectionClient,
    LoadGenerator,
    ServiceUnavailableError,
)
from repro.service.server import CollectionService

K = 100
EPSILON = 1.0
PROTOCOL = "GRR"
THROUGHPUT_FLOOR = 1e5  # reports/second, acceptance criterion

#: Load shape shared by both phases (and by the parity reference).
LOAD = {"churn": 0.1, "drift": 3, "duplicate_every": 5, "rng": 7}


def _generator(users: int, batch_size: int) -> LoadGenerator:
    return LoadGenerator(
        PROTOCOL, k=K, epsilon=EPSILON, users=users, batch_size=batch_size, **LOAD
    )


def _reference_estimate(users: int, batch_size: int):
    """One-shot aggregate over the de-duplicated stream (fresh generator)."""
    reference = _generator(users, batch_size)
    unique = (r for _, r, dup in reference.batches() if not dup)
    return reference.oracle.aggregate(unique, n=users)


def bench_in_process(users: int, batch_size: int) -> dict:
    """Dedup + windowed-fold throughput without transport cost."""
    service = CollectionService(window="cumulative")
    service.registry.register("bench", PROTOCOL, k=K, epsilon=EPSILON)
    generator = _generator(users, batch_size)
    ingest_seconds = 0.0
    batches = duplicates = 0
    wall_start = time.perf_counter()
    for batch_id, reports, is_duplicate in generator.batches():
        start = time.perf_counter()
        verdict = service.ingest_local("bench", batch_id, reports, now=0.0)
        ingest_seconds += time.perf_counter() - start
        batches += 1
        duplicates += int(verdict == "duplicate")
    wall = time.perf_counter() - wall_start

    snapshot = service.registry.get("bench").snapshot()
    one_shot = _reference_estimate(users, batch_size)
    assert snapshot["n"] == one_shot.n == users, (
        f"in-process dedup failed: served n={snapshot['n']}, expected {users}"
    )
    served = np.asarray(snapshot["estimates"], dtype=float)
    assert served.tobytes() == one_shot.estimates.tobytes(), (
        "in-process snapshot is not byte-identical to one-shot aggregate"
    )
    ingest_rate = users / ingest_seconds
    assert ingest_rate >= THROUGHPUT_FLOOR, (
        f"sustained ingest {ingest_rate:,.0f} reports/s below the "
        f"{THROUGHPUT_FLOOR:,.0f} floor at k={K}"
    )
    print(
        f"in-process  n={users:>12,}  batches={batches:>7,} "
        f"(dups={duplicates:,})  ingest {ingest_rate:>12,.0f} reports/s  "
        f"end-to-end {users / wall:>12,.0f} reports/s  parity OK"
    )
    return {
        "users": users,
        "batches": batches,
        "duplicate_batches": duplicates,
        "ingest_reports_per_second": ingest_rate,
        "end_to_end_reports_per_second": users / wall,
        "parity": "byte-identical",
    }


def bench_http(users: int, batch_size: int) -> dict:
    """Full wire path: JSON loopback, bounded queue, duplicates, forced 429."""
    service = CollectionService(window="cumulative", queue_size=128)
    service.start()
    try:
        client = CollectionClient(
            service.url,
            retry_policy=RetryPolicy(
                max_retries=8, base_delay=0.01, max_delay=0.1, jitter=0.0
            ),
        )
        client.register_attribute("bench", PROTOCOL, k=K, epsilon=EPSILON)

        # forced backpressure episode: a paused service must 429 (and the
        # un-retried batch must not corrupt the stream)
        service.pause()
        impatient = CollectionClient(
            service.url,
            retry_policy=RetryPolicy(
                max_retries=0, base_delay=1e-3, max_delay=1e-3, jitter=0.0
            ),
        )
        try:
            impatient.send_batch("bench", "forced-429", [0] * 8)
        except ServiceUnavailableError:
            pass
        else:
            raise AssertionError("paused service did not reply 429")
        assert impatient.backpressure_hits == 1
        service.resume()

        generator = _generator(users, batch_size)
        start = time.perf_counter()
        sent = generator.drive(client, "bench")
        client.flush()
        elapsed = time.perf_counter() - start

        estimate = client.estimate("bench")
        one_shot = _reference_estimate(users, batch_size)
        assert estimate["n"] == one_shot.n == users
        served = np.asarray(estimate["estimates"], dtype=float)
        assert served.tobytes() == one_shot.estimates.tobytes(), (
            "HTTP snapshot is not byte-identical to one-shot aggregate"
        )
        stats = client.stats()
        attr = stats["attributes"]["bench"]
        assert attr["duplicate_batches"] == sent["duplicate_batches_sent"]
        assert stats["rejected_batches"] >= 1  # the forced 429
        print(
            f"HTTP        n={users:>12,}  batches={sent['batches_sent']:>7,} "
            f"(dups={sent['duplicate_batches_sent']:,})  "
            f"wire {users / elapsed:>12,.0f} reports/s  "
            f"forced-429s={stats['rejected_batches']:,}  parity OK"
        )
        return {
            "users": users,
            "batches": sent["batches_sent"],
            "duplicate_batches": sent["duplicate_batches_sent"],
            "wire_reports_per_second": users / elapsed,
            "forced_429s": stats["rejected_batches"],
            "parity": "byte-identical",
        }
    finally:
        service.stop()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (5e4 users)"
    )
    parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="synthetic users for the in-process phase (default 1e6; "
        "1e8 is the stress scale)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=8192, help="reports per batch"
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the JSON artifact to FILE"
    )
    args = parser.parse_args(argv)
    users = args.users if args.users is not None else (50_000 if args.quick else 1_000_000)
    http_users = min(users, 50_000 if args.quick else 200_000)

    print(
        f"collection service bench: k={K}, protocol={PROTOCOL}, "
        f"epsilon={EPSILON}, churn={LOAD['churn']}, drift={LOAD['drift']}, "
        f"duplicate_every={LOAD['duplicate_every']}"
    )
    try:
        artifact = {
            "config": {
                "k": K,
                "protocol": PROTOCOL,
                "epsilon": EPSILON,
                "batch_size": args.batch_size,
                "throughput_floor": THROUGHPUT_FLOOR,
                **LOAD,
            },
            "in_process": bench_in_process(users, args.batch_size),
            "http": bench_http(http_users, args.batch_size),
        }
    except AssertionError as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(artifact, indent=1), encoding="utf-8")
    print("all parity and throughput gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
