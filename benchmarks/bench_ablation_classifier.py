"""Ablation A2 — classifier choice for the attribute-inference attack.

The paper uses XGBoost; this repository substitutes a from-scratch gradient
boosting classifier.  This ablation verifies that the substitution is sound:
both the GBDT and a simple Naive Bayes pick up the RS+FD[SUE-z] leakage, with
the GBDT at least matching the simpler baseline.
"""

import time

from bench_helpers import run_figure

from repro.attacks import AttributeInferenceAttack
from repro.datasets import load_dataset
from repro.ml import BernoulliNaiveBayes, GradientBoostingClassifier
from repro.multidim import RSFD

N_USERS = 700
EPSILON = 8.0


def test_ablation_classifier_choice(benchmark):
    def run():
        dataset = load_dataset("acs_employment", n=N_USERS, rng=3)
        solution = RSFD(dataset.domain, EPSILON, variant="ue-z", ue_kind="SUE", rng=5)
        reports = solution.collect(dataset)
        rows = []
        for label, factory in (
            ("GBDT (XGBoost stand-in)", lambda: GradientBoostingClassifier(n_estimators=20, rng=0)),
            ("Bernoulli Naive Bayes", BernoulliNaiveBayes),
        ):
            start = time.perf_counter()
            attack = AttributeInferenceAttack(solution, classifier_factory=factory, rng=6)
            result = attack.no_knowledge(reports, synthetic_factor=1.0)
            rows.append(
                {
                    "classifier": label,
                    "aif_acc_pct": 100 * result.accuracy,
                    "baseline_pct": 100 * result.baseline,
                    "seconds": time.perf_counter() - start,
                }
            )
        return rows

    rows = run_figure(benchmark, run, "Ablation - classifier choice (RS+FD[SUE-z])")
    values = {row["classifier"]: row["aif_acc_pct"] for row in rows}
    baseline = rows[0]["baseline_pct"]
    assert values["GBDT (XGBoost stand-in)"] > 3 * baseline
    assert values["Bernoulli Naive Bayes"] > 3 * baseline
