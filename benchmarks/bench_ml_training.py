"""Benchmark — level-wise histogram GBDT vs the recursive reference builder.

The attribute-inference figures (3, 6, 14, 15, 17) train the from-scratch
gradient-boosted classifier once per grid cell, so GBDT training time is the
wall-clock bottleneck of the attacker side of the paper.  This benchmark

* times the level-wise lockstep implementation
  (:class:`repro.ml.tree.BinaryFeatureRegressionTree` via
  :func:`repro.ml.tree.grow_forest`) against the original recursive builder
  (:class:`repro.ml.tree_reference.RecursiveBinaryFeatureRegressionTree`)
  at fig-3 scale (n ≈ 30k, F ≈ 200, 4 classes) inside the *same* boosting
  loop, so only the tree substrate differs;
* checks fixed-seed parity: both ensembles must agree on (essentially) every
  prediction — the implementations choose identical splits whenever gains
  are untied, so disagreement beyond gain ties fails the run;
* sweeps train/predict time of the new implementation across n, F and the
  number of classes;
* writes everything to a JSON artifact so CI can track the trajectory.

Run directly (this file is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_ml_training.py --quick

``--quick`` shrinks the workload for CI smoke runs and skips the speedup
gate (machine-dependent); the default full run enforces the acceptance
threshold of a >= 10x training speedup.  Exits non-zero on any failed gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.kernels import (
    KERNEL_BACKEND_CHOICES,
    active_backend_name,
    get_backend,
    numba_available,
    set_backend,
)
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.tree_reference import RecursiveBinaryFeatureRegressionTree

#: Minimum fraction of identical predictions between the two implementations
#: (fixed seed) at the full fig-3 scale, where agreement is 1.0 in practice.
AGREEMENT_GATE = 0.999

#: Maximum training-accuracy difference tolerated in --quick mode.  At small
#: scales boosting round 0 has piecewise-constant gradients, so two features
#: with identical contingency counts have *mathematically equal* gains; the
#: two implementations round those ties differently (each by its own ulp
#: noise), one early flip changes later rounds' gradients, and per-row
#: agreement decays even though both ensembles are equally good.  The
#: statistical-equivalence gate is the meaningful check there.
QUICK_ACCURACY_GATE = 0.02


def warm_kernels() -> None:
    """Trigger JIT compilation of the histogram kernel before any timing.

    A no-op for the NumPy backend; for numba this compiles the float64
    ``histogram_product`` specialization outside the timed region so the
    one-time compile cost does not pollute the backend comparison.
    """
    weights_t = np.zeros((2, 4), dtype=np.float64)
    features = np.zeros((4, 3), dtype=np.float64)
    get_backend().histogram_product(weights_t, features)


def make_problem(n: int, n_features: int, n_classes: int, seed: int = 0):
    """Random binary features with a planted class signal (fig-3-like)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n)
    features = rng.integers(0, 2, size=(n, n_features)).astype(np.float32)
    for c in range(n_classes):
        mask = labels == c
        features[mask, 3 * c] = (rng.random(int(mask.sum())) < 0.8).astype(np.float32)
        features[~mask, 3 * c] = (rng.random(int((~mask).sum())) < 0.2).astype(
            np.float32
        )
    return features, labels


def timed(fn):
    """``(result, seconds)`` of one call."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_classifier(n_estimators: int, tree_class=None) -> GradientBoostingClassifier:
    """The benchmark model: the attack's GBDT configuration, fixed seed."""
    return GradientBoostingClassifier(
        n_estimators=n_estimators,
        max_depth=4,
        min_samples_leaf=20,
        rng=0,
        tree_class=tree_class,
    )


def run_comparison(n: int, n_features: int, n_classes: int, n_estimators: int) -> dict:
    """Old-vs-new fit/predict timing plus fixed-seed prediction parity."""
    features, labels = make_problem(n, n_features, n_classes)
    new_model, new_fit_s = timed(lambda: make_classifier(n_estimators).fit(features, labels))
    old_model, old_fit_s = timed(
        lambda: make_classifier(
            n_estimators, tree_class=RecursiveBinaryFeatureRegressionTree
        ).fit(features, labels)
    )
    new_pred, new_predict_s = timed(lambda: new_model.predict(features))
    old_pred, old_predict_s = timed(lambda: old_model.predict(features))
    agreement = float(np.mean(new_pred == old_pred))
    new_accuracy = float(np.mean(new_pred == labels))
    old_accuracy = float(np.mean(old_pred == labels))
    max_proba_diff = float(
        np.abs(new_model.predict_proba(features) - old_model.predict_proba(features)).max()
    )
    return {
        "n": n,
        "n_features": n_features,
        "n_classes": n_classes,
        "n_estimators": n_estimators,
        "new_fit_seconds": new_fit_s,
        "old_fit_seconds": old_fit_s,
        "fit_speedup": old_fit_s / new_fit_s,
        "new_predict_seconds": new_predict_s,
        "old_predict_seconds": old_predict_s,
        "prediction_agreement": agreement,
        "new_train_accuracy": new_accuracy,
        "old_train_accuracy": old_accuracy,
        "max_proba_diff": max_proba_diff,
    }


def run_sweep(configs) -> list[dict]:
    """Train/predict timings of the new implementation across scales."""
    rows = []
    for n, n_features, n_classes in configs:
        features, labels = make_problem(n, n_features, n_classes)
        model, fit_s = timed(lambda: make_classifier(15).fit(features, labels))
        _, predict_s = timed(lambda: model.predict(features))
        rows.append(
            {
                "n": n,
                "n_features": n_features,
                "n_classes": n_classes,
                "fit_seconds": fit_s,
                "predict_seconds": predict_s,
                "fit_rows_per_second": n / fit_s,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workload (seconds, not minutes)"
    )
    parser.add_argument("--n", type=int, default=None, help="number of rows")
    parser.add_argument("--features", type=int, default=None, help="number of binary features")
    parser.add_argument("--classes", type=int, default=None, help="number of classes")
    parser.add_argument("--estimators", type=int, default=None, help="boosting rounds")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="fail unless the full-scale fit speedup reaches this factor "
        "(ignored with --quick)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_CHOICES,
        default=None,
        help="repro.kernels backend for the timed fits "
        "(default: REPRO_KERNEL_BACKEND, else auto)",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=3.0,
        help="with the numba backend active, fail unless the full-scale "
        "numba-over-numpy fit speedup reaches this factor (ignored with "
        "--quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("bench_ml_training.json"),
        help="path of the JSON artifact",
    )
    args = parser.parse_args(argv)
    try:
        set_backend(args.kernel_backend)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    warm_kernels()

    if args.quick:
        n, n_features, n_classes, n_estimators = 4000, 64, 3, 8
        sweep_configs = [(2000, 32, 2), (4000, 64, 3), (8000, 64, 4)]
    else:
        # fig-3 scale: ACSEmployment-sized collection, one-hot report block
        n, n_features, n_classes, n_estimators = 30_000, 200, 4, 25
        sweep_configs = [
            (10_000, 100, 2),
            (30_000, 100, 4),
            (30_000, 200, 4),
            (30_000, 400, 4),
            (100_000, 200, 4),
            (30_000, 200, 8),
        ]
    n = args.n if args.n is not None else n
    n_features = args.features if args.features is not None else n_features
    n_classes = args.classes if args.classes is not None else n_classes
    n_estimators = args.estimators if args.estimators is not None else n_estimators

    print(
        f"old-vs-new GBDT comparison  (n={n:,}, F={n_features}, "
        f"classes={n_classes}, estimators={n_estimators}, "
        f"kernel backend={active_backend_name()})"
    )
    comparison = run_comparison(n, n_features, n_classes, n_estimators)
    print(
        f"  new fit {comparison['new_fit_seconds']:7.2f} s   "
        f"old fit {comparison['old_fit_seconds']:7.2f} s   "
        f"speedup {comparison['fit_speedup']:.1f}x"
    )
    print(
        f"  new predict {comparison['new_predict_seconds']:.3f} s   "
        f"old predict {comparison['old_predict_seconds']:.3f} s"
    )
    print(
        f"  fixed-seed prediction agreement {comparison['prediction_agreement']:.6f}, "
        f"max |proba diff| {comparison['max_proba_diff']:.2e}"
    )
    print(
        f"  train accuracy new {comparison['new_train_accuracy']:.4f}  "
        f"old {comparison['old_train_accuracy']:.4f}"
    )

    print("\nnew-implementation scale sweep")
    sweep = run_sweep(sweep_configs)
    for row in sweep:
        print(
            f"  n={row['n']:>7,}  F={row['n_features']:>3}  "
            f"classes={row['n_classes']}  fit {row['fit_seconds']:6.2f} s  "
            f"predict {row['predict_seconds']:5.2f} s"
        )

    # numba-vs-numpy kernel comparison on the level-wise implementation only.
    # The histogram product is float64, so the two backends may sum partial
    # products in different orders; that can flip mathematically tied splits,
    # hence the parity gate is statistical (agreement / accuracy gap), not
    # byte equality.
    kernel = {"backend": active_backend_name()}
    if active_backend_name() == "numba":
        features, labels = make_problem(n, n_features, n_classes)
        numba_model, numba_fit_s = timed(
            lambda: make_classifier(n_estimators).fit(features, labels)
        )
        numba_pred = numba_model.predict(features)
        set_backend("numpy")
        warm_kernels()
        numpy_model, numpy_fit_s = timed(
            lambda: make_classifier(n_estimators).fit(features, labels)
        )
        numpy_pred = numpy_model.predict(features)
        set_backend("numba")
        kernel.update(
            {
                "numpy_fit_seconds": numpy_fit_s,
                "numba_fit_seconds": numba_fit_s,
                "kernel_speedup": numpy_fit_s / numba_fit_s,
                "prediction_agreement": float(np.mean(numba_pred == numpy_pred)),
                "accuracy_gap": abs(
                    float(np.mean(numba_pred == labels))
                    - float(np.mean(numpy_pred == labels))
                ),
            }
        )
        print(
            f"\nkernel backends: numba fit {numba_fit_s:7.2f} s   "
            f"numpy fit {numpy_fit_s:7.2f} s   "
            f"speedup {kernel['kernel_speedup']:.1f}x   "
            f"agreement {kernel['prediction_agreement']:.6f}"
        )
    elif numba_available():
        print("\n(numba available but not selected; no kernel comparison)")

    artifact = {
        "benchmark": "bench_ml_training",
        "quick": args.quick,
        "config": {
            "n": n,
            "n_features": n_features,
            "n_classes": n_classes,
            "n_estimators": n_estimators,
        },
        "comparison": comparison,
        "kernel": kernel,
        "sweep": sweep,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {args.out}")

    failed = False
    accuracy_gap = abs(
        comparison["new_train_accuracy"] - comparison["old_train_accuracy"]
    )
    if args.quick:
        if accuracy_gap > QUICK_ACCURACY_GATE:
            print(
                f"FAIL: train-accuracy gap {accuracy_gap:.4f} > {QUICK_ACCURACY_GATE}"
            )
            failed = True
    else:
        if comparison["prediction_agreement"] < AGREEMENT_GATE:
            print(
                f"FAIL: prediction agreement {comparison['prediction_agreement']:.6f} "
                f"< {AGREEMENT_GATE}"
            )
            failed = True
        if comparison["fit_speedup"] < args.min_speedup:
            print(
                f"FAIL: fit speedup {comparison['fit_speedup']:.1f}x "
                f"< required {args.min_speedup:.1f}x"
            )
            failed = True
    if "kernel_speedup" in kernel:
        if args.quick:
            if kernel["accuracy_gap"] > QUICK_ACCURACY_GATE:
                print(
                    f"FAIL: kernel-backend train-accuracy gap "
                    f"{kernel['accuracy_gap']:.4f} > {QUICK_ACCURACY_GATE}"
                )
                failed = True
        else:
            if kernel["prediction_agreement"] < AGREEMENT_GATE:
                print(
                    f"FAIL: kernel-backend prediction agreement "
                    f"{kernel['prediction_agreement']:.6f} < {AGREEMENT_GATE}"
                )
                failed = True
            if kernel["kernel_speedup"] < args.min_kernel_speedup:
                print(
                    f"FAIL: numba kernel speedup {kernel['kernel_speedup']:.1f}x "
                    f"< required {args.min_kernel_speedup:.1f}x"
                )
                failed = True
    if failed:
        return 1
    print("all parity/speedup gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
