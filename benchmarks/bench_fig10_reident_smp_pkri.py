"""Benchmark E8 — Fig. 10: SMP re-identification with partial background knowledge."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.reident_smp import run_reidentification_smp

N_USERS = 1500
EPSILONS = (8.0,)
PROTOCOLS = ("GRR", "OUE")


def test_fig10_reidentification_smp_pk_ri(benchmark):
    def run():
        pk_rows = run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            epsilons=EPSILONS,
            num_surveys=4,
            top_ks=(10,),
            knowledge="PK-RI",
            metric="uniform",
            seed=1,
            **grid_kwargs(),
        )
        fk_rows = run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            epsilons=EPSILONS,
            num_surveys=4,
            top_ks=(10,),
            knowledge="FK-RI",
            metric="uniform",
            seed=1,
            **grid_kwargs(),
        )
        return pk_rows + fk_rows

    rows = run_figure(benchmark, run, "Fig. 10 - RID-ACC, Adult, PK-RI vs FK-RI")
    final = {
        (r["knowledge"], r["protocol"]): r["rid_acc_pct"]
        for r in rows
        if r["surveys"] == 4
    }
    # partial background knowledge lowers the re-identification rate
    assert final[("PK-RI", "GRR")] <= final[("FK-RI", "GRR")] * 1.05
