"""Benchmark E10 — Fig. 12: SMP re-identification under the PIE model (uniform)."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.reident_smp import run_reidentification_smp

N_USERS = 1500
BETAS = (0.95, 0.8, 0.65, 0.5)
PROTOCOLS = ("GRR", "OUE")


def test_fig12_reidentification_smp_pie_uniform(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_reidentification_smp(
            dataset_name="adult",
            n=N_USERS,
            protocols=PROTOCOLS,
            pie_betas=BETAS,
            num_surveys=4,
            top_ks=(10,),
            knowledge="FK-RI",
            metric="uniform",
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 12 - RID-ACC, Adult, PIE privacy metric (uniform)",
    )
    grr = {
        r["privacy_level"]: r["rid_acc_pct"]
        for r in rows
        if r["protocol"] == "GRR" and r["surveys"] == 4
    }
    # a lower target Bayes error (weaker privacy) yields a higher RID-ACC
    assert grr[0.5] >= grr[0.95]
    # under PIE, small-domain attributes are reported in the clear, so even
    # "strong" settings carry substantial risk (the appendix's main message)
    assert grr[0.95] > 0.0
