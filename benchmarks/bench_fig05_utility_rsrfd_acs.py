"""Benchmark E5 — Fig. 5: utility of RS+RFD vs RS+FD on ACSEmployment."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.utility_rsrfd import run_utility_rsrfd

N_USERS = 6000


def test_fig05_utility_rsrfd_acs(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_utility_rsrfd(
            dataset_name="acs_employment",
            n=N_USERS,
            protocols=("GRR", "SUE-r", "OUE-r"),
            prior_kinds=("correct", "dir"),
            runs=2,
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 5 - MSE_avg, RS+RFD vs RS+FD, Correct and Dirichlet priors",
    )
    assert all(row["mse_avg"] > 0 for row in rows)
    grr = {
        (r["solution"], r["prior"], r["epsilon"]): r["mse_avg"]
        for r in rows
        if "GRR" in r["protocol"]
    }
    # with correct priors the countermeasure does not hurt utility (paper: it helps)
    correct_eps = sorted({eps for (_, prior, eps) in grr if prior == "correct"})
    rsfd_total = sum(grr[("RS+FD", "correct", eps)] for eps in correct_eps)
    rsrfd_total = sum(grr[("RS+RFD", "correct", eps)] for eps in correct_eps)
    assert rsrfd_total < rsfd_total * 1.2
