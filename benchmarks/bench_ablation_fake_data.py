"""Ablation A1 — fake-data generation strategy (Sec. 6 discussion).

Fixes the dataset and privacy budget and varies only how the non-sampled
attributes are filled: perturbed zero vectors (UE-z), uniform random one-hot
(UE-r), uniform random values (GRR) and realistic prior samples (RS+RFD).
The attacker's AIF-ACC quantifies how much each strategy gives away.
"""

from bench_helpers import run_figure

from repro.attacks import AttributeInferenceAttack
from repro.datasets import load_dataset
from repro.multidim import RSFD, RSRFD
from repro.privacy import make_priors

N_USERS = 700
EPSILON = 8.0


def test_ablation_fake_data_strategy(benchmark):
    def run():
        dataset = load_dataset("acs_employment", n=N_USERS, rng=3)
        # idealized realistic priors (the paper's Census statistics); the
        # Laplace-noisy variant is exercised by bench_fig06 / bench_fig17
        priors = make_priors("exact", dataset, rng=4)
        configurations = [
            ("UE-z (zero vectors)", RSFD(dataset.domain, EPSILON, variant="ue-z", ue_kind="SUE", rng=5)),
            ("UE-r (uniform one-hot)", RSFD(dataset.domain, EPSILON, variant="ue-r", ue_kind="SUE", rng=5)),
            ("GRR (uniform values)", RSFD(dataset.domain, EPSILON, variant="grr", rng=5)),
            ("RFD (realistic values)", RSRFD(dataset.domain, EPSILON, priors, variant="grr", rng=5)),
        ]
        rows = []
        for label, solution in configurations:
            reports = solution.collect(dataset)
            result = AttributeInferenceAttack(solution, rng=6).no_knowledge(
                reports, synthetic_factor=1.0
            )
            rows.append(
                {
                    "fake_data": label,
                    "aif_acc_pct": 100 * result.accuracy,
                    "baseline_pct": 100 * result.baseline,
                }
            )
        return rows

    rows = run_figure(benchmark, run, "Ablation - fake-data generation strategy")
    values = {row["fake_data"]: row["aif_acc_pct"] for row in rows}
    assert values["UE-z (zero vectors)"] > values["GRR (uniform values)"]
    assert values["RFD (realistic values)"] <= values["GRR (uniform values)"] * 1.2
