"""Benchmark E7 — Fig. 9: SMP re-identification risk on ACSEmployment."""

from bench_helpers import grid_kwargs, run_figure

from repro.experiments.reident_smp import run_reidentification_smp

N_USERS = 1500
EPSILONS = (1.0, 8.0)


def test_fig09_reidentification_smp_acs(benchmark):
    rows = run_figure(
        benchmark,
        lambda: run_reidentification_smp(
            dataset_name="acs_employment",
            n=N_USERS,
            protocols=("GRR", "SS", "SUE", "OLH", "OUE"),
            epsilons=EPSILONS,
            num_surveys=5,
            top_ks=(1, 10),
            knowledge="FK-RI",
            metric="uniform",
            seed=1,
            **grid_kwargs(),
        ),
        "Fig. 9 - RID-ACC, ACSEmployment, SMP, FK-RI, uniform metric",
    )
    final = {
        (r["protocol"], r["top_k"]): r["rid_acc_pct"]
        for r in rows
        if r["privacy_level"] == 8.0 and r["surveys"] == 5
    }
    # same pattern as on Adult: GRR/SS/SUE dominate OLH/OUE
    assert final[("GRR", 10)] > final[("OUE", 10)]
    assert final[("SS", 10)] > final[("OLH", 10)]
