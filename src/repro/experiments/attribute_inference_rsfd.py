"""Experiments E3, E12, E13 — uncovering the sampled attribute of RS+FD.

Covers Fig. 3 (ACSEmployment), Fig. 14 (Adult) and Fig. 15 (Nursery): for
every RS+FD protocol (GRR, SUE-z, OUE-z, SUE-r, OUE-r), every attack model
(NK, PK, HM) and every privacy budget, measure the attacker's AIF-ACC against
the ``1/d`` random-guess baseline.

The grid decomposition is one cell per (repetition, protocol, epsilon); the
three attack models reuse the same collection inside the cell, exactly as in
the sequential formulation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..attacks.attribute_inference import AttributeInferenceAttack, ClassifierFactory
from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.accuracy import as_percentage
from ..ml.naive_bayes import BernoulliNaiveBayes
from ..multidim.rsfd import RSFD
from .config import PAPER_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan
from .reporting import mean_rows

#: RS+FD protocol labels evaluated in Figs. 3 / 14 / 15.
RSFD_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-z", "OUE-z", "SUE-r", "OUE-r")

#: NK synthetic-profile factors (multiples of n) from Sec. 4.3.
NK_FACTORS: tuple[float, ...] = (1.0, 3.0, 5.0)

#: PK compromised fractions from Sec. 4.3.
PK_FRACTIONS: tuple[float, ...] = (0.1, 0.3, 0.5)

# --------------------------------------------------------------------------- #
# classifier registry — grid cells are JSON-keyed, so the attack classifier
# is referenced by name instead of by callable
# --------------------------------------------------------------------------- #
_CLASSIFIERS: dict[str, ClassifierFactory | None] = {
    "gbdt": None,  # AttributeInferenceAttack's default (from-scratch GBDT)
    "naive_bayes": BernoulliNaiveBayes,
}


def register_classifier_factory(name: str, factory: ClassifierFactory) -> None:
    """Register a classifier factory usable by name in grid cells."""
    _CLASSIFIERS[str(name)] = factory


def resolve_classifier_factory(name: str | None) -> ClassifierFactory | None:
    """Map a registered classifier name back to its factory."""
    if name is None:
        return None
    if name not in _CLASSIFIERS:
        raise InvalidParameterError(
            f"unknown classifier {name!r}; registered: {sorted(_CLASSIFIERS)}"
        )
    return _CLASSIFIERS[name]


def classifier_name(factory: ClassifierFactory | None) -> str | None:
    """Map a classifier factory to its registered name (for cell params)."""
    if factory is None:
        return None
    for name, registered in _CLASSIFIERS.items():
        if registered is factory:
            return name
    raise InvalidParameterError(
        "classifier_factory is not registered with the grid engine; call "
        "repro.experiments.register_classifier_factory(name, factory) first "
        f"(registered: {sorted(_CLASSIFIERS)})"
    )


def parse_rsfd_protocol(label: str) -> tuple[str, str]:
    """Map a paper-style label (``"OUE-z"``) to ``(variant, ue_kind)``."""
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if "-" in label:
        kind, suffix = label.split("-", 1)
        if kind in ("SUE", "OUE") and suffix.lower() in ("z", "r"):
            return f"ue-{suffix.lower()}", kind
    raise InvalidParameterError(
        f"unknown RS+FD protocol label {label!r}; expected GRR, SUE-z, OUE-z, SUE-r or OUE-r"
    )


def attack_model_settings(
    model: str,
    nk_factors: Sequence[float],
    pk_fractions: Sequence[float],
) -> list[dict]:
    """Parameter grid of one attack model, following Sec. 4.3."""
    model = model.upper()
    if model == "NK":
        return [{"synthetic_factor": float(s)} for s in nk_factors]
    if model == "PK":
        return [{"compromised_fraction": float(f)} for f in pk_fractions]
    if model == "HM":
        return [
            {"synthetic_factor": float(s), "compromised_fraction": float(f)}
            for s, f in zip(nk_factors, pk_fractions)
        ]
    raise InvalidParameterError(f"unknown attack model {model!r}")


@cell_runner("attribute_inference_rsfd")
def _attribute_inference_rsfd_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One (repetition, protocol, epsilon) cell of Figs. 3 / 14 / 15."""
    dataset = load_dataset(
        params["dataset"], n=params["n"], rng=int(params["dataset_seed"])
    )
    label = params["protocol"]
    variant, ue_kind = parse_rsfd_protocol(label)
    epsilon = float(params["epsilon"])
    solution = RSFD(dataset.domain, epsilon, variant=variant, ue_kind=ue_kind, rng=rng)
    reports = solution.collect(dataset)
    estimates = solution.estimate(reports)
    attack = AttributeInferenceAttack(
        solution,
        classifier_factory=resolve_classifier_factory(params["classifier"]),
        rng=rng,
    )
    rows: list[dict] = []
    for model in params["models"]:
        model = model.upper()
        for setting in attack_model_settings(
            model, params["nk_factors"], params["pk_fractions"]
        ):
            if model in ("NK", "HM"):
                setting = {**setting, "estimates": estimates}
            result = attack.run(model, reports, **setting)
            rows.append(
                {
                    "dataset": params["dataset"],
                    "protocol": f"RS+FD[{label}]",
                    "epsilon": epsilon,
                    "model": model,
                    "s": float(setting.get("synthetic_factor", 0.0)),
                    "n_pk": float(setting.get("compromised_fraction", 0.0)),
                    "aif_acc_pct": as_percentage(result.accuracy),
                    "baseline_pct": as_percentage(result.baseline),
                }
            )
    return rows


def plan_attribute_inference_rsfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
    figure: str = "attribute_inference_rsfd",
) -> list[GridCell]:
    """Express the RS+FD attribute-inference grid as independent cells."""
    classifier = classifier_name(classifier_factory)
    cells = []
    for run_index in range(runs):
        for label in protocols:
            parse_rsfd_protocol(label)  # fail fast on bad labels
            for epsilon in epsilons:
                cells.append(
                    GridCell(
                        figure=figure,
                        runner="attribute_inference_rsfd",
                        params={
                            "dataset": dataset_name,
                            "n": n,
                            "dataset_seed": seed,
                            "run": run_index,
                            "protocol": label,
                            "epsilon": float(epsilon),
                            "models": [m.upper() for m in models],
                            "nk_factors": [float(s) for s in nk_factors],
                            "pk_fractions": [float(f) for f in pk_fractions],
                            "classifier": classifier,
                        },
                        master_seed=seed,
                    )
                )
    return cells


def postprocess_attribute_inference_rsfd(rows: list[dict]) -> list[dict]:
    """Average raw cell rows over repetitions (the figure's final rows)."""
    group_by = ["dataset", "protocol", "epsilon", "model", "s", "n_pk"]
    return mean_rows(rows, group_by, ["aif_acc_pct", "baseline_pct"])


def run_attribute_inference_rsfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
    figure: str = "attribute_inference_rsfd",
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Measure the attacker's AIF-ACC against RS+FD collections.

    The parameter grids of the three attack models follow Sec. 4.3: NK varies
    the number of synthetic profiles ``s``, PK the compromised fraction
    ``n_pk`` and HM pairs them index-wise (``(1n, 0.1n), (3n, 0.3n), ...``).
    """
    cells = plan_attribute_inference_rsfd(
        dataset_name=dataset_name,
        n=n,
        protocols=protocols,
        epsilons=epsilons,
        models=models,
        nk_factors=nk_factors,
        pk_fractions=pk_fractions,
        classifier_factory=classifier_factory,
        runs=runs,
        seed=seed,
        figure=figure,
    )
    return execute_plan(
        cells,
        postprocess_attribute_inference_rsfd,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
