"""Experiments E3, E12, E13 — uncovering the sampled attribute of RS+FD.

Covers Fig. 3 (ACSEmployment), Fig. 14 (Adult) and Fig. 15 (Nursery): for
every RS+FD protocol (GRR, SUE-z, OUE-z, SUE-r, OUE-r), every attack model
(NK, PK, HM) and every privacy budget, measure the attacker's AIF-ACC against
the ``1/d`` random-guess baseline.
"""

from __future__ import annotations

from typing import Sequence

from ..attacks.attribute_inference import AttributeInferenceAttack, ClassifierFactory
from ..core.rng import ensure_rng
from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.accuracy import as_percentage
from ..multidim.rsfd import RSFD
from .config import PAPER_EPSILONS
from .reporting import mean_rows

#: RS+FD protocol labels evaluated in Figs. 3 / 14 / 15.
RSFD_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-z", "OUE-z", "SUE-r", "OUE-r")

#: NK synthetic-profile factors (multiples of n) from Sec. 4.3.
NK_FACTORS: tuple[float, ...] = (1.0, 3.0, 5.0)

#: PK compromised fractions from Sec. 4.3.
PK_FRACTIONS: tuple[float, ...] = (0.1, 0.3, 0.5)


def parse_rsfd_protocol(label: str) -> tuple[str, str]:
    """Map a paper-style label (``"OUE-z"``) to ``(variant, ue_kind)``."""
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if "-" in label:
        kind, suffix = label.split("-", 1)
        if kind in ("SUE", "OUE") and suffix.lower() in ("z", "r"):
            return f"ue-{suffix.lower()}", kind
    raise InvalidParameterError(
        f"unknown RS+FD protocol label {label!r}; expected GRR, SUE-z, OUE-z, SUE-r or OUE-r"
    )


def run_attribute_inference_rsfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
) -> list[dict]:
    """Measure the attacker's AIF-ACC against RS+FD collections.

    The parameter grids of the three attack models follow Sec. 4.3: NK varies
    the number of synthetic profiles ``s``, PK the compromised fraction
    ``n_pk`` and HM pairs them index-wise (``(1n, 0.1n), (3n, 0.3n), ...``).
    """
    all_rows: list[dict] = []
    for run_index in range(runs):
        rng = ensure_rng(seed + run_index)
        dataset = load_dataset(dataset_name, n=n, rng=seed)
        for label in protocols:
            variant, ue_kind = parse_rsfd_protocol(label)
            for epsilon in epsilons:
                solution = RSFD(
                    dataset.domain, float(epsilon), variant=variant, ue_kind=ue_kind, rng=rng
                )
                reports = solution.collect(dataset)
                estimates = solution.estimate(reports)
                attack = AttributeInferenceAttack(
                    solution, classifier_factory=classifier_factory, rng=rng
                )
                for model in models:
                    model = model.upper()
                    if model == "NK":
                        settings = [{"synthetic_factor": s} for s in nk_factors]
                    elif model == "PK":
                        settings = [{"compromised_fraction": f} for f in pk_fractions]
                    elif model == "HM":
                        settings = [
                            {"synthetic_factor": s, "compromised_fraction": f}
                            for s, f in zip(nk_factors, pk_fractions)
                        ]
                    else:
                        raise InvalidParameterError(f"unknown attack model {model!r}")
                    for setting in settings:
                        if model in ("NK", "HM"):
                            setting = {**setting, "estimates": estimates}
                        result = attack.run(model, reports, **setting)
                        all_rows.append(
                            {
                                "dataset": dataset_name,
                                "protocol": f"RS+FD[{label}]",
                                "epsilon": float(epsilon),
                                "model": model,
                                "s": float(setting.get("synthetic_factor", 0.0)),
                                "n_pk": float(setting.get("compromised_fraction", 0.0)),
                                "aif_acc_pct": as_percentage(result.accuracy),
                                "baseline_pct": as_percentage(result.baseline),
                            }
                        )
    group_by = ["dataset", "protocol", "epsilon", "model", "s", "n_pk"]
    return mean_rows(all_rows, group_by, ["aif_acc_pct", "baseline_pct"])
