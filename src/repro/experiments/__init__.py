"""Experiment harness regenerating every figure of the paper's evaluation.

Every figure is expressed as a grid of independent cells and executed by the
:mod:`repro.experiments.grid` engine (parallel workers, deterministic
per-cell seeding, on-disk result cache).  Importing this package registers
the cell runners of all seven experiment modules.
"""

from .analytical_acc import (
    FIG1_PROTOCOLS,
    FIG1_SIZES,
    plan_analytical_acc,
    postprocess_analytical_acc,
    run_analytical_acc,
)
from .attribute_inference_rsfd import (
    NK_FACTORS,
    PK_FRACTIONS,
    RSFD_PROTOCOLS,
    classifier_name,
    parse_rsfd_protocol,
    plan_attribute_inference_rsfd,
    postprocess_attribute_inference_rsfd,
    register_classifier_factory,
    resolve_classifier_factory,
    run_attribute_inference_rsfd,
)
from .attribute_inference_rsrfd import (
    RSRFD_PROTOCOLS,
    plan_attribute_inference_rsrfd,
    postprocess_attribute_inference_rsrfd,
    run_attribute_inference_rsrfd,
)
from .cellstore import CELLSTORE_SCHEMA_VERSION, SQLiteCellStore
from .config import FULL, PAPER_EPSILONS, PIE_BETAS, QUICK, SMOKE, UTILITY_EPSILONS, ExperimentConfig
from .grid import (
    CACHE_BACKENDS,
    GRID_SCHEMA_VERSION,
    CellOutcome,
    CellStore,
    Executor,
    GridCache,
    GridCell,
    GridResult,
    ProcessPoolExecutor,
    SerialExecutor,
    cell_runner,
    execute_plan,
    get_cell_runner,
    registered_cell_runners,
    resolve_executor,
    run_grid,
    validate_cache_backend,
)
from .reident_rsfd import (
    plan_reidentification_rsfd,
    postprocess_reidentification_rsfd,
    run_reidentification_rsfd,
)
from .reident_smp import (
    SMP_PROTOCOLS,
    plan_reidentification_smp,
    postprocess_reidentification_smp,
    run_reidentification_smp,
)
from .reporting import format_table, mean_rows, pivot_series, save_artifact
from .runner import FigureSpec, available_experiments, figure_spec, main, run_experiment
from .sharding import (
    SHARD_DB_NAME,
    MergedShards,
    ShardedExecutor,
    ShardRunResult,
    find_shard_artifacts,
    journal_artifacts,
    load_plan,
    load_shard_artifact,
    merge_artifacts,
    plan_fingerprint,
    run_shard,
    shard_artifact_path,
    shard_positions,
    workspace_store,
    write_plan,
)
from .utility_rsrfd import (
    UTILITY_PROTOCOLS,
    plan_utility_rsrfd,
    postprocess_utility_rsrfd,
    run_utility_rsrfd,
)

__all__ = [
    "ExperimentConfig",
    "QUICK",
    "SMOKE",
    "FULL",
    "PAPER_EPSILONS",
    "UTILITY_EPSILONS",
    "PIE_BETAS",
    # grid engine and cell stores
    "GRID_SCHEMA_VERSION",
    "CELLSTORE_SCHEMA_VERSION",
    "CACHE_BACKENDS",
    "validate_cache_backend",
    "GridCell",
    "CellStore",
    "GridCache",
    "SQLiteCellStore",
    "GridResult",
    "CellOutcome",
    "cell_runner",
    "get_cell_runner",
    "registered_cell_runners",
    "run_grid",
    "execute_plan",
    # executors and sharding
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "ShardedExecutor",
    "resolve_executor",
    "MergedShards",
    "ShardRunResult",
    "plan_fingerprint",
    "shard_positions",
    "shard_artifact_path",
    "find_shard_artifacts",
    "write_plan",
    "load_plan",
    "load_shard_artifact",
    "run_shard",
    "merge_artifacts",
    "journal_artifacts",
    "workspace_store",
    "SHARD_DB_NAME",
    "register_classifier_factory",
    "resolve_classifier_factory",
    "classifier_name",
    # figure experiments
    "run_analytical_acc",
    "plan_analytical_acc",
    "postprocess_analytical_acc",
    "FIG1_SIZES",
    "FIG1_PROTOCOLS",
    "run_reidentification_smp",
    "plan_reidentification_smp",
    "postprocess_reidentification_smp",
    "SMP_PROTOCOLS",
    "run_attribute_inference_rsfd",
    "plan_attribute_inference_rsfd",
    "postprocess_attribute_inference_rsfd",
    "RSFD_PROTOCOLS",
    "NK_FACTORS",
    "PK_FRACTIONS",
    "parse_rsfd_protocol",
    "run_reidentification_rsfd",
    "plan_reidentification_rsfd",
    "postprocess_reidentification_rsfd",
    "run_utility_rsrfd",
    "plan_utility_rsrfd",
    "postprocess_utility_rsrfd",
    "UTILITY_PROTOCOLS",
    "run_attribute_inference_rsrfd",
    "plan_attribute_inference_rsrfd",
    "postprocess_attribute_inference_rsrfd",
    "RSRFD_PROTOCOLS",
    # reporting
    "format_table",
    "pivot_series",
    "mean_rows",
    "save_artifact",
    "run_experiment",
    "available_experiments",
    "figure_spec",
    "FigureSpec",
    "main",
]
