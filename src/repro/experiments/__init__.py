"""Experiment harness regenerating every figure of the paper's evaluation."""

from .analytical_acc import FIG1_PROTOCOLS, FIG1_SIZES, run_analytical_acc
from .attribute_inference_rsfd import (
    NK_FACTORS,
    PK_FRACTIONS,
    RSFD_PROTOCOLS,
    parse_rsfd_protocol,
    run_attribute_inference_rsfd,
)
from .attribute_inference_rsrfd import RSRFD_PROTOCOLS, run_attribute_inference_rsrfd
from .config import FULL, PAPER_EPSILONS, PIE_BETAS, QUICK, SMOKE, UTILITY_EPSILONS, ExperimentConfig
from .reident_rsfd import run_reidentification_rsfd
from .reident_smp import SMP_PROTOCOLS, run_reidentification_smp
from .reporting import format_table, mean_rows, pivot_series
from .runner import available_experiments, main, run_experiment
from .utility_rsrfd import UTILITY_PROTOCOLS, run_utility_rsrfd

__all__ = [
    "ExperimentConfig",
    "QUICK",
    "SMOKE",
    "FULL",
    "PAPER_EPSILONS",
    "UTILITY_EPSILONS",
    "PIE_BETAS",
    "run_analytical_acc",
    "FIG1_SIZES",
    "FIG1_PROTOCOLS",
    "run_reidentification_smp",
    "SMP_PROTOCOLS",
    "run_attribute_inference_rsfd",
    "RSFD_PROTOCOLS",
    "NK_FACTORS",
    "PK_FRACTIONS",
    "parse_rsfd_protocol",
    "run_reidentification_rsfd",
    "run_utility_rsrfd",
    "UTILITY_PROTOCOLS",
    "run_attribute_inference_rsrfd",
    "RSRFD_PROTOCOLS",
    "format_table",
    "pivot_series",
    "mean_rows",
    "run_experiment",
    "available_experiments",
    "main",
]
