"""Experiment configuration presets.

The paper runs every experiment on the full datasets (up to 45k users) with
20 repetitions.  That is reproducible with this library, but the default
presets are scaled down so the whole benchmark suite completes on a laptop in
minutes while preserving the qualitative shape of every figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

#: ε grid used by the attack experiments (Sec. 4.2 / 4.3).
PAPER_EPSILONS: tuple[float, ...] = tuple(float(e) for e in range(1, 11))

#: ε grid used by the utility experiments (Sec. 5.2.2): ln(2) .. ln(7).
UTILITY_EPSILONS: tuple[float, ...] = tuple(math.log(c) for c in range(2, 8))

#: Bayes-error grid used by the PIE experiments (Appendix C).
PIE_BETAS: tuple[float, ...] = tuple(round(b, 2) for b in (0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55, 0.5))


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the experiment runners.

    Attributes
    ----------
    n:
        Number of users drawn from the synthetic dataset (``None`` = the
        paper's full size).
    runs:
        Number of repetitions to average over.
    epsilons:
        Privacy-budget grid.
    num_surveys:
        Number of data collections in the multi-survey experiments.
    top_ks:
        Candidate-set sizes for the re-identification attack.
    seed:
        Base seed; repetition ``r`` uses ``seed + r``.
    """

    n: int | None = None
    runs: int = 1
    epsilons: Sequence[float] = PAPER_EPSILONS
    num_surveys: int = 5
    top_ks: Sequence[int] = (1, 10)
    seed: int = 42


#: Quick preset used by the benchmark suite (minutes, preserves shapes).
QUICK = ExperimentConfig(n=2000, runs=1, epsilons=(1.0, 4.0, 7.0, 10.0))

#: Smoke-test preset used by the integration tests (seconds).
SMOKE = ExperimentConfig(n=400, runs=1, epsilons=(2.0, 8.0), num_surveys=3, top_ks=(1, 10))

#: Paper-scale preset (hours on a laptop, matches Sec. 4 settings).
FULL = ExperimentConfig(n=None, runs=20, epsilons=PAPER_EPSILONS)
