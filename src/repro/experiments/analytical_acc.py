"""Experiment E1 — analytical attacker accuracy (Fig. 1).

Reproduces the expected multi-collection profiling accuracy ``ACC^U`` (Eq. 4)
and ``ACC^NU`` (Eq. 5) of the five LDP protocols with the paper's parameters:
``d = 3`` attributes with domain sizes ``k = [74, 7, 16]`` (the first three
Adult attributes) over ``epsilon = 1..10``.

The figure is expressed as one grid cell per (metric, protocol) curve and
executed by the :mod:`repro.experiments.grid` engine.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..attacks.plausible_deniability import expected_profiling_accuracy
from ..metrics.accuracy import as_percentage
from .config import PAPER_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan

#: Domain sizes used by Fig. 1 (first three Adult attributes).
FIG1_SIZES: tuple[int, ...] = (74, 7, 16)

#: Protocols plotted in Fig. 1.
FIG1_PROTOCOLS: tuple[str, ...] = ("GRR", "OLH", "SS", "SUE", "OUE")


@cell_runner("analytical_acc")
def _analytical_acc_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One Fig. 1 curve: a (metric, protocol) pair over the ε grid."""
    metric, protocol = params["metric"], params["protocol"]
    rows = []
    for epsilon in params["epsilons"]:
        accuracy = expected_profiling_accuracy(protocol, epsilon, params["sizes"], metric)
        rows.append(
            {
                "figure": "fig1a" if metric == "uniform" else "fig1b",
                "metric": metric,
                "protocol": protocol,
                "epsilon": float(epsilon),
                "expected_acc_pct": as_percentage(accuracy),
            }
        )
    return rows


def plan_analytical_acc(
    epsilons: Sequence[float] = PAPER_EPSILONS,
    sizes: Sequence[int] = FIG1_SIZES,
    protocols: Sequence[str] = FIG1_PROTOCOLS,
    metrics: Sequence[str] = ("uniform", "non-uniform"),
    seed: int = 42,
    figure: str = "fig1",
) -> list[GridCell]:
    """Express the Fig. 1 computation as independent grid cells."""
    return [
        GridCell(
            figure=figure,
            runner="analytical_acc",
            params={
                "metric": metric,
                "protocol": protocol,
                "epsilons": [float(e) for e in epsilons],
                "sizes": [int(s) for s in sizes],
            },
            master_seed=seed,
        )
        for metric in metrics
        for protocol in protocols
    ]


def postprocess_analytical_acc(rows: list[dict]) -> list[dict]:
    """Fig. 1 rows are one-per-(metric, protocol, epsilon) already."""
    return rows


def run_analytical_acc(
    epsilons: Sequence[float] = PAPER_EPSILONS,
    sizes: Sequence[int] = FIG1_SIZES,
    protocols: Sequence[str] = FIG1_PROTOCOLS,
    metrics: Sequence[str] = ("uniform", "non-uniform"),
    seed: int = 42,
    figure: str = "fig1",
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Compute the Fig. 1 curves.

    Returns one row per (metric, protocol, epsilon) with the expected
    profiling accuracy in percent.
    """
    cells = plan_analytical_acc(
        epsilons=epsilons,
        sizes=sizes,
        protocols=protocols,
        metrics=metrics,
        seed=seed,
        figure=figure,
    )
    return execute_plan(
        cells,
        postprocess_analytical_acc,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
