"""Experiment E1 — analytical attacker accuracy (Fig. 1).

Reproduces the expected multi-collection profiling accuracy ``ACC^U`` (Eq. 4)
and ``ACC^NU`` (Eq. 5) of the five LDP protocols with the paper's parameters:
``d = 3`` attributes with domain sizes ``k = [74, 7, 16]`` (the first three
Adult attributes) over ``epsilon = 1..10``.
"""

from __future__ import annotations

from typing import Sequence

from ..attacks.plausible_deniability import expected_profiling_accuracy
from ..metrics.accuracy import as_percentage
from .config import PAPER_EPSILONS

#: Domain sizes used by Fig. 1 (first three Adult attributes).
FIG1_SIZES: tuple[int, ...] = (74, 7, 16)

#: Protocols plotted in Fig. 1.
FIG1_PROTOCOLS: tuple[str, ...] = ("GRR", "OLH", "SS", "SUE", "OUE")


def run_analytical_acc(
    epsilons: Sequence[float] = PAPER_EPSILONS,
    sizes: Sequence[int] = FIG1_SIZES,
    protocols: Sequence[str] = FIG1_PROTOCOLS,
    metrics: Sequence[str] = ("uniform", "non-uniform"),
) -> list[dict]:
    """Compute the Fig. 1 curves.

    Returns one row per (metric, protocol, epsilon) with the expected
    profiling accuracy in percent.
    """
    rows = []
    for metric in metrics:
        for protocol in protocols:
            for epsilon in epsilons:
                accuracy = expected_profiling_accuracy(protocol, epsilon, sizes, metric)
                rows.append(
                    {
                        "figure": "fig1a" if metric == "uniform" else "fig1b",
                        "metric": metric,
                        "protocol": protocol,
                        "epsilon": float(epsilon),
                        "expected_acc_pct": as_percentage(accuracy),
                    }
                )
    return rows
