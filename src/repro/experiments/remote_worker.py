"""``python -m repro.experiments.remote_worker`` — one lease-based worker.

The subprocess entrypoint spawned per local worker by
:class:`repro.experiments.remote.RemoteExecutor` (and launchable by hand on
any machine that can reach the coordinator): it registers, leases one cell at
a time, heartbeats while computing, reports rows back, and exits when the
coordinator announces shutdown.  Fault injection is read from the
``REPRO_CHAOS`` environment variable (scoped by ``REPRO_WORKER_INDEX``); a
one-line JSON summary (``completed`` / ``errors`` / ``killed``) is printed to
stdout on the way out.

Exit status: 0 on a clean run *or* a chaos-scheduled death (the schedule did
what it was told), 2 on configuration or protocol errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..core.retry import RetryPolicy
from ..exceptions import ReproError
from .remote import ChaosConfig, worker_loop


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of ``python -m repro.experiments.remote_worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.remote_worker",
        description="Lease grid cells from a remote coordinator and compute them.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8765",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable worker identity (default: coordinator-assigned)",
    )
    parser.add_argument(
        "--connect-retries",
        type=int,
        default=8,
        metavar="N",
        help="bounded retries per coordinator request (default: 8)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.connect_retries < 0:
            raise ReproError(
                f"--connect-retries must be >= 0, got {args.connect_retries}"
            )
        summary = worker_loop(
            args.coordinator,
            worker_id=args.worker_id,
            chaos=ChaosConfig.from_env(),
            retry_policy=RetryPolicy(max_retries=args.connect_retries),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach coordinator {args.coordinator}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(summary, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
