"""Experiments E2, E7-E11 — re-identification risk of the SMP solution.

Covers Fig. 2 (Adult, FK-RI, uniform), Fig. 9 (ACSEmployment), Fig. 10
(PK-RI), Fig. 11 (non-uniform privacy metric) and, through the ``pie_betas``
parameter, the PIE-based Figs. 12-13.

Workflow per repetition (Sec. 4.2): draw ``#surveys`` surveys with at least
``d/2`` random attributes each, let every user report one attribute per
survey with the SMP solution, build the attacker's inferred profile after
every survey and match it against the background knowledge for
``top-k ∈ {1, 10}``.

The grid decomposition is one cell per (repetition, protocol, privacy
level); the survey plan of a repetition is derived from the master seed and
the repetition index alone, so every cell of the same repetition attacks the
same surveys — exactly as in the sequential formulation — while remaining
independently executable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..attacks.profile import build_profiles_smp, plan_surveys
from ..attacks.reidentification import ReidentificationAttack
from ..core.rng import derive_rng
from ..datasets.loaders import load_dataset
from ..metrics.accuracy import as_percentage
from .config import PAPER_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan
from .reporting import mean_rows

#: Protocols plotted in Figs. 2 and 9-13.
SMP_PROTOCOLS: tuple[str, ...] = ("GRR", "SS", "SUE", "OLH", "OUE")

#: Row-grouping key shared by the SMP re-identification figures.
_GROUP_BY = (
    "dataset",
    "protocol",
    "privacy_axis",
    "privacy_level",
    "metric",
    "knowledge",
    "surveys",
    "top_k",
)


def _shared_surveys(params: Mapping) -> list:
    """Survey plan shared by every cell of the same repetition."""
    rng = derive_rng(int(params["seed"]), "reident_smp", "surveys", int(params["run"]))
    return plan_surveys(int(params["d"]), int(params["num_surveys"]), rng=rng)


@cell_runner("reident_smp")
def _reident_smp_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One (repetition, protocol, privacy level) cell of Figs. 2 / 9-13."""
    dataset = load_dataset(
        params["dataset"], n=params["n"], rng=int(params["dataset_seed"])
    )
    surveys = _shared_surveys({**params, "d": dataset.d})
    reident = ReidentificationAttack(dataset, rng=rng)
    axis_name = params["privacy_axis"]
    level = float(params["privacy_level"])
    profiling = build_profiles_smp(
        dataset,
        surveys,
        protocol=params["protocol"],
        epsilon=level if axis_name == "epsilon" else 1.0,
        metric=params["metric"],
        rng=rng,
        pie_beta=level if axis_name == "beta" else None,
    )
    rows: list[dict] = []
    for top_k in params["top_ks"]:
        results = reident.evaluate_profiling(
            profiling,
            top_k=int(top_k),
            model=params["knowledge"],
            min_surveys=int(params["min_surveys"]),
            redraw_attributes=bool(params.get("redraw_attributes", False)),
        )
        for surveys_done, result in results.items():
            rows.append(
                {
                    "dataset": params["dataset"],
                    "protocol": params["protocol"],
                    "privacy_axis": axis_name,
                    "privacy_level": level,
                    "metric": params["metric"],
                    "knowledge": params["knowledge"],
                    "surveys": surveys_done,
                    "top_k": int(top_k),
                    "rid_acc_pct": as_percentage(result.accuracy),
                    "baseline_pct": as_percentage(result.baseline),
                }
            )
    return rows


def plan_reidentification_smp(
    dataset_name: str = "adult",
    n: int | None = None,
    protocols: Sequence[str] = SMP_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    knowledge: str = "FK-RI",
    metric: str = "uniform",
    pie_betas: Sequence[float] | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
    figure: str = "reident_smp",
    redraw_attributes: bool = False,
) -> list[GridCell]:
    """Express the SMP re-identification grid as independent cells.

    ``redraw_attributes`` only matters for ``knowledge="PK-RI"`` (Fig. 10):
    by default one random attribute subset is drawn per evaluation, so the
    curve isolates profile growth; ``True`` restores the historical
    per-snapshot redraw (a different partial-knowledge adversary at every
    point).  The flag is part of the cell params, so caches never mix the
    two fidelities.
    """
    privacy_levels = (
        [("beta", float(b)) for b in pie_betas]
        if pie_betas is not None
        else [("epsilon", float(e)) for e in epsilons]
    )
    cells = []
    for run_index in range(runs):
        for protocol in protocols:
            for axis_name, level in privacy_levels:
                cells.append(
                    GridCell(
                        figure=figure,
                        runner="reident_smp",
                        params={
                            "dataset": dataset_name,
                            "n": n,
                            "dataset_seed": seed,
                            "seed": seed,
                            "run": run_index,
                            "protocol": protocol,
                            "privacy_axis": axis_name,
                            "privacy_level": level,
                            "num_surveys": num_surveys,
                            "top_ks": [int(k) for k in top_ks],
                            "knowledge": knowledge,
                            "metric": metric,
                            "min_surveys": min_surveys,
                            "redraw_attributes": bool(redraw_attributes),
                        },
                        master_seed=seed,
                    )
                )
    return cells


def postprocess_reidentification_smp(rows: list[dict]) -> list[dict]:
    """Average raw cell rows over repetitions (the figure's final rows)."""
    return mean_rows(rows, list(_GROUP_BY), ["rid_acc_pct", "baseline_pct"])


def run_reidentification_smp(
    dataset_name: str = "adult",
    n: int | None = None,
    protocols: Sequence[str] = SMP_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    knowledge: str = "FK-RI",
    metric: str = "uniform",
    pie_betas: Sequence[float] | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
    figure: str = "reident_smp",
    redraw_attributes: bool = False,
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Measure the attacker's RID-ACC for the SMP solution.

    When ``pie_betas`` is provided, the privacy axis is the Bayes-error
    parameter of the PIE model instead of ``epsilons`` (Appendix C).

    Returns one row per (protocol, privacy level, #surveys, top-k) with the
    RID-ACC in percent, averaged over ``runs`` repetitions.
    """
    cells = plan_reidentification_smp(
        dataset_name=dataset_name,
        n=n,
        protocols=protocols,
        epsilons=epsilons,
        num_surveys=num_surveys,
        top_ks=top_ks,
        knowledge=knowledge,
        metric=metric,
        pie_betas=pie_betas,
        min_surveys=min_surveys,
        runs=runs,
        seed=seed,
        figure=figure,
        redraw_attributes=redraw_attributes,
    )
    return execute_plan(
        cells,
        postprocess_reidentification_smp,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
