"""Experiments E2, E7-E11 — re-identification risk of the SMP solution.

Covers Fig. 2 (Adult, FK-RI, uniform), Fig. 9 (ACSEmployment), Fig. 10
(PK-RI), Fig. 11 (non-uniform privacy metric) and, through the ``pie_betas``
parameter, the PIE-based Figs. 12-13.

Workflow per repetition (Sec. 4.2): draw ``#surveys`` surveys with at least
``d/2`` random attributes each, let every user report one attribute per
survey with the SMP solution, build the attacker's inferred profile after
every survey and match it against the background knowledge for
``top-k ∈ {1, 10}``.
"""

from __future__ import annotations

from typing import Sequence

from ..attacks.profile import build_profiles_smp, plan_surveys
from ..attacks.reidentification import ReidentificationAttack
from ..core.rng import ensure_rng
from ..datasets.loaders import load_dataset
from ..metrics.accuracy import as_percentage
from .config import PAPER_EPSILONS
from .reporting import mean_rows

#: Protocols plotted in Figs. 2 and 9-13.
SMP_PROTOCOLS: tuple[str, ...] = ("GRR", "SS", "SUE", "OLH", "OUE")


def run_reidentification_smp(
    dataset_name: str = "adult",
    n: int | None = None,
    protocols: Sequence[str] = SMP_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    knowledge: str = "FK-RI",
    metric: str = "uniform",
    pie_betas: Sequence[float] | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
) -> list[dict]:
    """Measure the attacker's RID-ACC for the SMP solution.

    When ``pie_betas`` is provided, the privacy axis is the Bayes-error
    parameter of the PIE model instead of ``epsilons`` (Appendix C).

    Returns one row per (protocol, privacy level, #surveys, top-k) with the
    RID-ACC in percent, averaged over ``runs`` repetitions.
    """
    privacy_levels = (
        [("beta", float(b)) for b in pie_betas]
        if pie_betas is not None
        else [("epsilon", float(e)) for e in epsilons]
    )
    all_rows: list[dict] = []
    for run_index in range(runs):
        rng = ensure_rng(seed + run_index)
        dataset = load_dataset(dataset_name, n=n, rng=seed)
        surveys = plan_surveys(dataset.d, num_surveys, rng=rng)
        reident = ReidentificationAttack(dataset, rng=rng)
        for protocol in protocols:
            for axis_name, level in privacy_levels:
                profiling = build_profiles_smp(
                    dataset,
                    surveys,
                    protocol=protocol,
                    epsilon=level if axis_name == "epsilon" else 1.0,
                    metric=metric,
                    rng=rng,
                    pie_beta=level if axis_name == "beta" else None,
                )
                for top_k in top_ks:
                    results = reident.evaluate_profiling(
                        profiling,
                        top_k=top_k,
                        model=knowledge,
                        min_surveys=min_surveys,
                    )
                    for surveys_done, result in results.items():
                        all_rows.append(
                            {
                                "dataset": dataset_name,
                                "protocol": protocol,
                                "privacy_axis": axis_name,
                                "privacy_level": level,
                                "metric": metric,
                                "knowledge": knowledge,
                                "surveys": surveys_done,
                                "top_k": top_k,
                                "rid_acc_pct": as_percentage(result.accuracy),
                                "baseline_pct": as_percentage(result.baseline),
                            }
                        )
    group_by = [
        "dataset",
        "protocol",
        "privacy_axis",
        "privacy_level",
        "metric",
        "knowledge",
        "surveys",
        "top_k",
    ]
    return mean_rows(all_rows, group_by, ["rid_acc_pct", "baseline_pct"])
