"""``python -m repro.experiments.shard_worker`` — execute one grid shard.

The subprocess entrypoint launched once per shard by
:class:`repro.experiments.sharding.ShardedExecutor` (and launchable by any
external scheduler): it loads a serialized cell plan, executes the cells of
one shard — resuming from the shard's existing partial artifact when the
plan fingerprint matches — writes the partial artifact back and prints a
one-line JSON summary (``computed`` / ``resumed`` / ``from_cache`` counts)
to stdout.

Exit status: 0 on success, 2 on configuration errors (bad plan file, shard
index out of range, foreign partial artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from ..exceptions import ReproError
from .grid import CACHE_BACKENDS, CellStore
from .sharding import load_plan, run_shard


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of ``python -m repro.experiments.shard_worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.shard_worker",
        description="Execute one shard of a serialized experiment-grid plan.",
    )
    parser.add_argument(
        "--plan", required=True, metavar="FILE", help="plan file written by write_plan()"
    )
    parser.add_argument(
        "--shard-index",
        required=True,
        type=int,
        metavar="I",
        help="which shard of the plan to execute (0-based)",
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="directory for the partial artifact (default: the plan file's directory)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size for this shard's cells (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="optional on-disk cell cache shared with other invocations",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest cache entries beyond N files",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="B",
        help="evict oldest cache entries beyond B total bytes",
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default="json",
        metavar="BACKEND",
        help="cell-store layout: 'json' (file-per-cell cache + per-shard "
        "artifact files) or 'sqlite' (WAL-mode databases; shards journal "
        "into the workspace's shards.sqlite)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every cell even when the shard's partial artifact exists",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    args = build_parser().parse_args(argv)
    cache = None
    try:
        plan = load_plan(args.plan)
        directory = Path(args.dir) if args.dir is not None else Path(args.plan).parent
        cache = CellStore.from_options(
            args.cache_dir,
            max_entries=args.cache_max_entries,
            max_bytes=args.cache_max_bytes,
            cache_backend=args.cache_backend,
        )
        result = run_shard(
            plan["cells"],
            plan["shards"],
            args.shard_index,
            directory,
            workers=args.workers,
            cache=cache,
            resume=not args.no_resume,
            cache_backend=args.cache_backend,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if cache is not None and hasattr(cache, "close"):
            cache.close()
    print(json.dumps(result.summary()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
