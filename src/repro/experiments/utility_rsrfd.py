"""Experiments E5 and E14 — utility of RS+RFD vs RS+FD (Figs. 5 and 16).

For every protocol (GRR, SUE-r, OUE-r), every ``epsilon`` in
``[ln 2, ..., ln 7]`` and every prior kind (Correct, DIR, ZIPF, EXP), measure
the averaged MSE of multidimensional frequency estimation with the original
RS+FD solution (uniform fake data) and the proposed RS+RFD countermeasure
(realistic fake data), plus the corresponding analytical approximate
variances (Fig. 16's left-hand plots).
"""

from __future__ import annotations

from typing import Sequence

from ..core.rng import ensure_rng
from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.errors import mse_avg
from ..multidim.rsfd import RSFD
from ..multidim.rsrfd import RSRFD
from ..multidim.variance import averaged_analytical_variance
from ..privacy.priors import make_priors
from .config import UTILITY_EPSILONS
from .reporting import mean_rows

#: Protocols compared in Figs. 5 and 16.
UTILITY_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-r", "OUE-r")


def _parse_protocol(label: str) -> tuple[str, str]:
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if label in ("SUE-R", "OUE-R"):
        return "ue-r", label.split("-")[0]
    raise InvalidParameterError(
        f"unknown utility protocol {label!r}; expected GRR, SUE-r or OUE-r"
    )


def run_utility_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = UTILITY_PROTOCOLS,
    epsilons: Sequence[float] = UTILITY_EPSILONS,
    prior_kinds: Sequence[str] = ("correct", "dir"),
    prior_epsilon: float = 0.1,
    include_analytical: bool = False,
    runs: int = 1,
    seed: int = 42,
) -> list[dict]:
    """Compare RS+RFD against RS+FD on multidimensional frequency estimation.

    Returns one row per (solution, protocol, epsilon, prior kind) with the
    empirical ``MSE_avg`` and, when ``include_analytical`` is set, the
    analytical approximate variance averaged over attributes and values.
    ``prior_epsilon`` is the total central-DP budget for "correct" priors
    (see :func:`run_attribute_inference_rsrfd`).
    """
    all_rows: list[dict] = []
    for run_index in range(runs):
        rng = ensure_rng(seed + run_index)
        dataset = load_dataset(dataset_name, n=n, rng=seed)
        priors_by_kind = {
            kind: make_priors(kind, dataset, rng=rng, total_epsilon=prior_epsilon)
            for kind in prior_kinds
        }
        for label in protocols:
            variant, ue_kind = _parse_protocol(label)
            for epsilon in epsilons:
                epsilon = float(epsilon)
                # RS+FD reference (uniform fake data); prior-independent, but
                # repeated per prior kind so rows pair up naturally.
                rsfd = RSFD(dataset.domain, epsilon, variant=variant, ue_kind=ue_kind, rng=rng)
                _, rsfd_estimates = rsfd.collect_and_estimate(dataset)
                rsfd_error = mse_avg(rsfd_estimates, dataset)
                for kind in prior_kinds:
                    priors = priors_by_kind[kind]
                    rsrfd = RSRFD(
                        dataset.domain,
                        epsilon,
                        priors=priors,
                        variant="grr" if variant == "grr" else "ue-r",
                        ue_kind=ue_kind,
                        rng=rng,
                    )
                    _, rsrfd_estimates = rsrfd.collect_and_estimate(dataset)
                    rsrfd_error = mse_avg(rsrfd_estimates, dataset)
                    pair = [
                        ("RS+FD", f"RS+FD[{label}]", rsfd_error, "rsfd"),
                        ("RS+RFD", f"RS+RFD[{label}]", rsrfd_error, "rsrfd"),
                    ]
                    for solution, protocol_label, error, solution_key in pair:
                        row = {
                            "dataset": dataset_name,
                            "solution": solution,
                            "protocol": protocol_label,
                            "epsilon": epsilon,
                            "prior": kind,
                            "mse_avg": error,
                        }
                        if include_analytical:
                            row["analytical_variance"] = averaged_analytical_variance(
                                solution_key,
                                variant if solution_key == "rsfd" else ("grr" if variant == "grr" else "ue-r"),
                                epsilon,
                                dataset.sizes,
                                dataset.n,
                                priors=priors if solution_key == "rsrfd" else None,
                                ue_kind=ue_kind,
                            )
                        all_rows.append(row)
    group_by = ["dataset", "solution", "protocol", "epsilon", "prior"]
    value_columns = ["mse_avg"] + (["analytical_variance"] if include_analytical else [])
    return mean_rows(all_rows, group_by, value_columns)
