"""Experiments E5 and E14 — utility of RS+RFD vs RS+FD (Figs. 5 and 16).

For every protocol (GRR, SUE-r, OUE-r), every ``epsilon`` in
``[ln 2, ..., ln 7]`` and every prior kind (Correct, DIR, ZIPF, EXP), measure
the averaged MSE of multidimensional frequency estimation with the original
RS+FD solution (uniform fake data) and the proposed RS+RFD countermeasure
(realistic fake data), plus the corresponding analytical approximate
variances (Fig. 16's left-hand plots).

Grid decomposition: one cell per (repetition, protocol, epsilon) covering
all prior kinds, so the RS+FD reference collection is computed once per cell
and the rows pair up naturally.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.errors import mse_avg
from ..multidim.rsfd import RSFD
from ..multidim.rsrfd import RSRFD
from ..multidim.variance import averaged_analytical_variance
from ..protocols.streaming import validate_chunk_size
from .attribute_inference_rsrfd import shared_priors
from .config import UTILITY_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan
from .reporting import mean_rows

#: Protocols compared in Figs. 5 and 16.
UTILITY_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-r", "OUE-r")


def _parse_protocol(label: str) -> tuple[str, str]:
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if label in ("SUE-R", "OUE-R"):
        return "ue-r", label.split("-")[0]
    raise InvalidParameterError(
        f"unknown utility protocol {label!r}; expected GRR, SUE-r or OUE-r"
    )


@cell_runner("utility_rsrfd")
def _utility_rsrfd_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One (repetition, protocol, epsilon) cell of Figs. 5 / 16."""
    dataset = load_dataset(
        params["dataset"], n=params["n"], rng=int(params["dataset_seed"])
    )
    label = params["protocol"]
    variant, ue_kind = _parse_protocol(label)
    epsilon = float(params["epsilon"])
    include_analytical = bool(params["include_analytical"])

    # chunk_size streams users through the bounded-memory aggregation path
    # (reports are never retained); None/absent keeps the one-shot path
    chunk_size = validate_chunk_size(params.get("chunk_size"))

    # RS+FD reference (uniform fake data); prior-independent, but repeated
    # per prior kind so rows pair up naturally.
    rsfd = RSFD(dataset.domain, epsilon, variant=variant, ue_kind=ue_kind, rng=rng)
    if chunk_size is not None:
        rsfd_estimates = rsfd.stream_collect_and_estimate(dataset, chunk_size)
    else:
        _, rsfd_estimates = rsfd.collect_and_estimate(dataset)
    rsfd_error = mse_avg(rsfd_estimates, dataset)

    rows: list[dict] = []
    for kind in params["prior_kinds"]:
        priors = shared_priors(params, dataset, kind)
        rsrfd = RSRFD(
            dataset.domain,
            epsilon,
            priors=priors,
            variant="grr" if variant == "grr" else "ue-r",
            ue_kind=ue_kind,
            rng=rng,
        )
        if chunk_size is not None:
            rsrfd_estimates = rsrfd.stream_collect_and_estimate(dataset, chunk_size)
        else:
            _, rsrfd_estimates = rsrfd.collect_and_estimate(dataset)
        rsrfd_error = mse_avg(rsrfd_estimates, dataset)
        pair = [
            ("RS+FD", f"RS+FD[{label}]", rsfd_error, "rsfd"),
            ("RS+RFD", f"RS+RFD[{label}]", rsrfd_error, "rsrfd"),
        ]
        for solution, protocol_label, error, solution_key in pair:
            row = {
                "dataset": params["dataset"],
                "solution": solution,
                "protocol": protocol_label,
                "epsilon": epsilon,
                "prior": kind,
                "mse_avg": error,
            }
            if include_analytical:
                row["analytical_variance"] = averaged_analytical_variance(
                    solution_key,
                    variant if solution_key == "rsfd" else ("grr" if variant == "grr" else "ue-r"),
                    epsilon,
                    dataset.sizes,
                    dataset.n,
                    priors=priors if solution_key == "rsrfd" else None,
                    ue_kind=ue_kind,
                )
            rows.append(row)
    return rows


def plan_utility_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = UTILITY_PROTOCOLS,
    epsilons: Sequence[float] = UTILITY_EPSILONS,
    prior_kinds: Sequence[str] = ("correct", "dir"),
    prior_epsilon: float = 0.1,
    include_analytical: bool = False,
    runs: int = 1,
    seed: int = 42,
    figure: str = "utility_rsrfd",
    chunk_size: int | None = None,
) -> list[GridCell]:
    """Express the utility comparison grid as independent cells.

    ``chunk_size`` switches every cell onto the bounded-memory streaming
    aggregation path (users collected and counted ``chunk_size`` at a time);
    it is only added to the cell parameters when set, so existing cache
    entries for the one-shot path stay valid.
    """
    chunk_size = validate_chunk_size(chunk_size)
    cells = []
    for run_index in range(runs):
        for label in protocols:
            _parse_protocol(label)  # fail fast on bad labels
            for epsilon in epsilons:
                params = {
                    "dataset": dataset_name,
                    "n": n,
                    "dataset_seed": seed,
                    "run": run_index,
                    "protocol": label,
                    "epsilon": float(epsilon),
                    "prior_kinds": list(prior_kinds),
                    "prior_epsilon": float(prior_epsilon),
                    "include_analytical": bool(include_analytical),
                }
                if chunk_size is not None:
                    params["chunk_size"] = chunk_size
                cells.append(
                    GridCell(
                        figure=figure,
                        runner="utility_rsrfd",
                        params=params,
                        master_seed=seed,
                    )
                )
    return cells


def postprocess_utility_rsrfd(
    rows: list[dict], include_analytical: bool = False
) -> list[dict]:
    """Average raw cell rows over repetitions (the figure's final rows)."""
    group_by = ["dataset", "solution", "protocol", "epsilon", "prior"]
    value_columns = ["mse_avg"] + (["analytical_variance"] if include_analytical else [])
    return mean_rows(rows, group_by, value_columns)


def run_utility_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = UTILITY_PROTOCOLS,
    epsilons: Sequence[float] = UTILITY_EPSILONS,
    prior_kinds: Sequence[str] = ("correct", "dir"),
    prior_epsilon: float = 0.1,
    include_analytical: bool = False,
    runs: int = 1,
    seed: int = 42,
    figure: str = "utility_rsrfd",
    chunk_size: int | None = None,
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Compare RS+RFD against RS+FD on multidimensional frequency estimation.

    Returns one row per (solution, protocol, epsilon, prior kind) with the
    empirical ``MSE_avg`` and, when ``include_analytical`` is set, the
    analytical approximate variance averaged over attributes and values.
    ``prior_epsilon`` is the total central-DP budget for "correct" priors
    (see :func:`run_attribute_inference_rsrfd`).  ``chunk_size`` streams each
    cell through the bounded-memory aggregation path so million-user cells
    never materialize a full ``(n, k)`` report matrix.
    """
    cells = plan_utility_rsrfd(
        dataset_name=dataset_name,
        n=n,
        protocols=protocols,
        epsilons=epsilons,
        prior_kinds=prior_kinds,
        prior_epsilon=prior_epsilon,
        include_analytical=include_analytical,
        runs=runs,
        seed=seed,
        figure=figure,
        chunk_size=chunk_size,
    )
    return execute_plan(
        cells,
        lambda rows: postprocess_utility_rsrfd(rows, include_analytical),
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
