"""Sharded, resumable grid execution.

A figure's cell plan can be split into ``N`` deterministic shards that
execute in *separate invocations* — different processes, different machines
sharing a filesystem, or different points in time — and merge back into the
canonical figure artifact:

* :func:`shard_positions` assigns cells to shards round-robin over the plan
  order, so any ``(shards, shard_index)`` pair names the same subset on every
  invocation of the same plan;
* :func:`run_shard` executes one shard resumably: cells already present in
  the shard's partial artifact (same :func:`plan_fingerprint`) are *resumed*
  instead of recomputed, so an interrupted invocation picks up where it
  stopped;
* :func:`merge_artifacts` combines partial artifacts — in any order, from
  any shard count — into the full plan's rows, with completeness checking
  that names the missing cells instead of silently truncating;
* :class:`ShardedExecutor` plugs the whole cycle behind the
  :class:`repro.experiments.grid.Executor` seam, launching one
  ``python -m repro.experiments.shard_worker`` subprocess per shard (or
  running shards inline) and merging the partial artifacts back into the
  grid result.

Because every cell derives its random stream from the master seed and its
own key alone (independent of placement), sharded execution is byte-identical
to serial and process-pool execution; ``tests/experiments/test_executors.py``
enforces this.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:
    from .cellstore import SQLiteCellStore

from ..exceptions import GridExecutionError, InvalidParameterError, ShardMergeError
from .grid import (
    GRID_SCHEMA_VERSION,
    CellOutcome,
    CellStore,
    Executor,
    GridCell,
    RecordFn,
    _jsonable,
    _write_json_atomic,
    canonical_json,
    run_grid,
    validate_cache_backend,
)

#: File name of the serialized plan inside a shard directory.
PLAN_FILE = "plan.json"

#: Database file holding a workspace's shard completion journal when the
#: ``sqlite`` cache backend is selected: every shard invocation of a plan
#: appends its completed cells to this one WAL-mode database (no per-shard
#: artifact files, no merge of partials — the merge reads the journal back
#: with one query per plan fingerprint).
SHARD_DB_NAME = "shards.sqlite"


def workspace_store(directory: str | Path) -> "SQLiteCellStore":
    """Open (creating if needed) a workspace's shard-journal database.

    The journal is *not* a cell cache: it holds shard completion records
    keyed by plan fingerprint, lives at a fixed path inside the workspace,
    and has no bounds or backend choice — so ``CellStore.from_options``
    (which wires user-facing cache options) is deliberately not involved.
    """
    from .cellstore import SQLiteCellStore

    return SQLiteCellStore(  # reprolint: disable=REPRO401
        Path(directory) / SHARD_DB_NAME
    )


# --------------------------------------------------------------------------- #
# plan identity and shard assignment
# --------------------------------------------------------------------------- #
def plan_fingerprint(cells: Sequence[GridCell]) -> str:
    """Content hash identifying a cell plan (order-sensitive).

    Two invocations agree on shard membership and merge validity iff they
    agree on this fingerprint, which covers the grid schema version and every
    cell's full configuration in plan order.
    """
    payload = canonical_json(
        {
            "schema": GRID_SCHEMA_VERSION,
            "cells": [cell.payload() for cell in cells],
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def validate_shards(shards: int, shard_index: int | None = None) -> int:
    """Validate a shard count (and optionally an index into it)."""
    if int(shards) < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    shards = int(shards)
    if shard_index is not None and not 0 <= int(shard_index) < shards:
        raise InvalidParameterError(
            f"shard_index must be in [0, {shards}), got {shard_index}"
        )
    return shards


def shard_positions(n_cells: int, shards: int, shard_index: int) -> list[int]:
    """Plan positions assigned to ``shard_index`` (round-robin over order)."""
    shards = validate_shards(shards, shard_index)
    return list(range(int(shard_index), int(n_cells), shards))


def plan_workspace(root: str | Path, cells: Sequence[GridCell]) -> Path:
    """Per-plan shard workspace inside a shared ``root`` directory.

    Keyed by the plan fingerprint, so one persistent root serves many plans
    (figures, scales, seeds) without their partial artifacts colliding.
    Both the CLI shard paths and :class:`ShardedExecutor` resolve workspaces
    through this helper, so they agree on the layout.
    """
    return Path(root) / plan_fingerprint(cells)[:16]


# --------------------------------------------------------------------------- #
# plan and partial-artifact files
# --------------------------------------------------------------------------- #
def write_plan(directory: str | Path, cells: Sequence[GridCell], shards: int) -> Path:
    """Persist the plan file a shard worker needs to recreate the cells.

    Idempotent for the same plan; a *different* plan already occupying the
    directory is an operator error (mixing two runs' partial artifacts would
    poison the merge) and raises instead of silently overwriting.
    """
    shards = validate_shards(shards)
    fingerprint = plan_fingerprint(cells)
    path = Path(directory) / PLAN_FILE
    if path.exists():
        existing = load_plan(path)
        if existing["plan_hash"] != fingerprint or existing["shards"] != shards:
            raise InvalidParameterError(
                f"shard directory {directory} already holds a different plan "
                f"(hash {existing['plan_hash'][:12]}..., {existing['shards']} shards); "
                "use a fresh directory per (figure, scale, seed, shard count)"
            )
        return path
    return _write_json_atomic(
        path,
        {
            "schema": GRID_SCHEMA_VERSION,
            "plan_hash": fingerprint,
            "shards": shards,
            "cells": [cell.payload() for cell in cells],
        },
    )


def load_plan(path: str | Path) -> dict[str, Any]:
    """Load a plan file into ``{plan_hash, shards, cells: [GridCell, ...]}``."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise InvalidParameterError(f"cannot read plan file {path}: {exc}") from exc
    try:
        cells = [GridCell.from_payload(entry) for entry in payload["cells"]]
        plan = {
            "schema": int(payload["schema"]),
            "plan_hash": str(payload["plan_hash"]),
            "shards": validate_shards(payload["shards"]),
            "cells": cells,
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed plan file {path}: {exc}") from exc
    if plan["schema"] != GRID_SCHEMA_VERSION:
        raise InvalidParameterError(
            f"plan file {path} has grid schema {plan['schema']}, "
            f"this library uses {GRID_SCHEMA_VERSION}"
        )
    return plan


def shard_artifact_path(directory: str | Path, shards: int, shard_index: int) -> Path:
    """Canonical partial-artifact path of one shard."""
    validate_shards(shards, shard_index)
    return Path(directory) / f"shard-{int(shard_index):04d}-of-{int(shards):04d}.json"


def _journal_path(artifact_path: Path) -> Path:
    """Append-only completion journal backing one shard artifact."""
    return artifact_path.with_name(artifact_path.name + ".journal.jsonl")


def _load_journal(journal: Path, fingerprint: str) -> dict[str, dict[str, Any]]:
    """Entries recovered from a crashed invocation's journal (may be empty).

    Lines are self-contained ``{"plan_hash", "entry"}`` records; torn lines
    (a crash interrupted the write) and records of a different plan are
    skipped, never the valid records around them.
    """
    recovered: dict[str, dict[str, Any]] = {}
    try:
        with open(journal, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line from a crash mid-append
                if record.get("plan_hash") != fingerprint:
                    continue
                entry = record.get("entry") or {}
                if "config_hash" in entry:
                    recovered[str(entry["config_hash"])] = entry
    except OSError:
        pass
    return recovered


def find_shard_artifacts(directory: str | Path, shards: int) -> list[Path]:
    """Existing partial artifacts of an ``N``-shard split (sorted by index)."""
    shards = validate_shards(shards)
    return [
        path
        for index in range(shards)
        if (path := shard_artifact_path(directory, shards, index)).exists()
    ]


def load_shard_artifact(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate one partial artifact."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardMergeError(f"cannot read shard artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ShardMergeError(f"shard artifact {path} is not a JSON object")
    for field in ("plan_hash", "shards", "shard_index", "entries"):
        if field not in payload:
            raise ShardMergeError(f"shard artifact {path} lacks the {field!r} field")
    payload["path"] = str(path)
    return payload


def journal_artifacts(
    store: "SQLiteCellStore", fingerprint: str, shards: int
) -> list[dict[str, Any]]:
    """Reassemble per-shard in-memory artifacts from a journal database.

    The DB-backed counterpart of :func:`find_shard_artifacts` +
    :func:`load_shard_artifact`: one ``shard_journal`` query per plan
    fingerprint replaces reading ``N`` partial-artifact files, and the
    returned mappings feed straight into :func:`merge_artifacts` (which
    accepts in-memory artifacts as well as paths).
    """
    shards = validate_shards(shards)
    entries_by_shard: dict[int, list[dict[str, Any]]] = {
        index: [] for index in range(shards)
    }
    for shard_index, entry in store.journal_records(fingerprint):
        entries_by_shard.setdefault(shard_index, []).append(entry)
    return [
        {
            "schema": GRID_SCHEMA_VERSION,
            "plan_hash": fingerprint,
            "shards": shards,
            "shard_index": shard_index,
            "entries": entries,
            "path": f"{store.path}#shard-{shard_index}",
        }
        for shard_index, entries in sorted(entries_by_shard.items())
    ]


def _cell_descriptor(entry: Mapping[str, Any]) -> str:
    """Human-readable identity of a cell in error messages."""
    return f"{entry['runner']}:{canonical_json(entry.get('params', {}))}"


# --------------------------------------------------------------------------- #
# executing one shard (resumably)
# --------------------------------------------------------------------------- #
@dataclass
class ShardRunResult:
    """Outcome of one :func:`run_shard` invocation."""

    path: Path
    plan_hash: str
    shards: int
    shard_index: int
    cells: int
    computed: int
    resumed: int
    from_cache: int
    deduplicated: int
    backend: str = "json"

    def summary(self) -> dict[str, Any]:
        """JSON-serializable invocation summary (printed by the CLI)."""
        return {
            "shard_index": self.shard_index,
            "shards": self.shards,
            "plan_hash": self.plan_hash,
            "cells": self.cells,
            "computed": self.computed,
            "resumed": self.resumed,
            "from_cache": self.from_cache,
            "deduplicated": self.deduplicated,
            "artifact": str(self.path),
            "backend": self.backend,
        }


def run_shard(
    cells: Sequence[GridCell],
    shards: int,
    shard_index: int,
    directory: str | Path,
    *,
    workers: int = 1,
    cache: "CellStore | str | Path | None" = None,
    resume: bool = True,
    cache_backend: str = "json",
) -> ShardRunResult:
    """Execute one shard of a plan and persist its completed cells.

    Resumable: when the shard's artifact — or the append-only completion
    journal a killed invocation leaves behind — already holds cells for the
    *same* plan fingerprint, they are reused (``resumed``) and only the
    missing ones are recomputed, so re-invoking an interrupted shard
    finishes the remainder.  Each completed cell is appended to the journal
    (linear I/O); the canonical artifact is written once at the end, which
    removes the journal.  A partial artifact belonging to a different plan
    raises instead of being silently discarded.

    ``cache_backend="sqlite"`` replaces the per-shard JSON artifact and
    JSONL journal with the workspace's one :data:`SHARD_DB_NAME` database:
    every completed cell is journaled there as it finishes (concurrent
    shard invocations append to the same database — WAL mode plus
    ``busy_timeout`` serialize them), resume state is the single query
    ``journal_entries(fingerprint)``, and no artifact file is written —
    the merge reads the journal back.  Any entry of the plan already in
    the journal counts as resumable, whichever invocation computed it.
    """
    cells = list(cells)
    shards = validate_shards(shards, shard_index)
    validate_cache_backend(cache_backend)
    fingerprint = plan_fingerprint(cells)
    if isinstance(cache, (str, Path)):
        cache = CellStore.from_options(cache, cache_backend=cache_backend)

    store: "SQLiteCellStore | None" = None
    previous: dict[str, dict[str, Any]] = {}
    if cache_backend == "sqlite":
        path = Path(directory) / SHARD_DB_NAME
        journal = None
        store = workspace_store(directory)
        if not resume:
            # purge only THIS shard's journal rows: other shards' completed
            # work (possibly still being appended concurrently) stays valid
            store.journal_clear(fingerprint, shard_index=shard_index)
        else:
            previous = store.journal_entries(fingerprint)
    else:
        path = shard_artifact_path(directory, shards, shard_index)
        journal = _journal_path(path)

        if not resume:
            # a forced recompute must purge the old state: a crash
            # mid-recompute would otherwise let the next (resuming)
            # invocation restore exactly the stale entries this flag was
            # meant to discard
            path.unlink(missing_ok=True)
            journal.unlink(missing_ok=True)

        if path.exists():
            artifact = load_shard_artifact(path)
            if artifact["plan_hash"] != fingerprint:
                raise InvalidParameterError(
                    f"shard artifact {path} belongs to a different plan "
                    f"(hash {str(artifact['plan_hash'])[:12]}... != {fingerprint[:12]}...); "
                    "use a fresh shard directory per (figure, scale, seed)"
                )
            if resume:
                previous = {
                    str(entry["config_hash"]): entry for entry in artifact["entries"]
                }
        if journal.exists():
            if resume:
                for config_hash, entry in _load_journal(journal, fingerprint).items():
                    previous.setdefault(config_hash, entry)
            try:
                # a killed append may have left a torn, newline-less tail;
                # start this invocation's records on a fresh line so they
                # stay parseable
                content = journal.read_bytes()
                if content and not content.endswith(b"\n"):
                    with open(journal, "ab") as handle:
                        handle.write(b"\n")
            except OSError:
                pass

    def entry_from_outcome(outcome: CellOutcome) -> dict[str, Any]:
        return {
            "config_hash": outcome.cell.config_hash,
            "key": outcome.cell.key,
            "figure": outcome.cell.figure,
            "runner": outcome.cell.runner,
            "params": outcome.cell.payload()["params"],
            # same coercion GridCache.put applies, so runners returning
            # numpy scalars serialize on the sharded path too
            "rows": _jsonable(outcome.rows),
            "elapsed": outcome.elapsed,
            "source": outcome.source,
        }

    # duplicate work inside the shard gets one entry (first occurrence wins)
    entries_by_hash: dict[str, dict[str, Any]] = {}
    to_compute: dict[str, GridCell] = {}
    resumed = 0
    mine = 0
    duplicates = 0
    for position in shard_positions(len(cells), shards, shard_index):
        cell = cells[position]
        mine += 1
        config_hash = cell.config_hash
        if config_hash in entries_by_hash or config_hash in to_compute:
            duplicates += 1
            continue
        if config_hash in previous:
            entry = dict(previous[config_hash])
            entry["source"] = "resumed"
            entries_by_hash[config_hash] = entry
            resumed += 1
        else:
            to_compute[config_hash] = cell
    missing = list(to_compute.values())

    def artifact_payload() -> dict[str, Any]:
        return {
            "schema": GRID_SCHEMA_VERSION,
            "plan_hash": fingerprint,
            "shards": shards,
            "shard_index": shard_index,
            "entries": list(entries_by_hash.values()),
        }

    def persist_incrementally(outcome: CellOutcome) -> None:
        entry = entry_from_outcome(outcome)
        entries_by_hash[outcome.cell.config_hash] = entry
        if store is not None:
            store.journal_append(fingerprint, shard_index, entry)
            return
        assert journal is not None  # json mode always sets the journal path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(journal, "a", encoding="utf-8") as handle:
                handle.write(json.dumps({"plan_hash": fingerprint, "entry": entry}) + "\n")
        except OSError:
            pass  # the final artifact write below surfaces persistent failures

    try:
        result = (
            run_grid(
                missing, workers=workers, cache=cache, on_cell_complete=persist_incrementally
            )
            if missing
            else None
        )
        if result is not None:
            # cells served by the cache stage never hit the completion hook
            for outcome in result.outcomes:
                if outcome.cell.config_hash in entries_by_hash:
                    continue
                entry = entry_from_outcome(outcome)
                entries_by_hash[outcome.cell.config_hash] = entry
                if store is not None:
                    store.journal_append(fingerprint, shard_index, entry)

        if store is None:
            assert journal is not None  # json mode always sets the journal path
            _write_json_atomic(path, artifact_payload())
            try:
                journal.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - journal cleanup is best-effort
                pass
        # sqlite mode writes no artifact: the journal rows ARE the shard's
        # durable state, already committed per cell as each one finished
    finally:
        if store is not None:
            store.close()
    return ShardRunResult(
        path=path,
        plan_hash=fingerprint,
        shards=shards,
        shard_index=shard_index,
        cells=mine,
        computed=result.computed if result is not None else 0,
        resumed=resumed,
        from_cache=result.from_cache if result is not None else 0,
        deduplicated=duplicates + (result.deduplicated if result is not None else 0),
        backend=cache_backend,
    )


# --------------------------------------------------------------------------- #
# merging partial artifacts
# --------------------------------------------------------------------------- #
@dataclass
class MergedShards:
    """Full-plan rows reassembled from per-shard partial artifacts."""

    rows: list[dict[str, Any]]
    outcomes: list[CellOutcome]
    plan_hash: str
    artifacts: list[str]

    @property
    def n_cells(self) -> int:
        return len(self.outcomes)

    def summary(self) -> dict[str, Any]:
        """JSON-serializable merge summary (mirrors ``GridResult.summary``)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.source] = counts.get(outcome.source, 0) + 1
        return {
            "cells": self.n_cells,
            "computed": counts.get("computed", 0),
            "from_cache": counts.get("cache", 0),
            "deduplicated": counts.get("dedup", 0),
            "resumed": counts.get("resumed", 0),
            "missing": 0,  # merge_artifacts raises on incomplete plans
            "workers": 0,  # the merge itself executes nothing
            "executor": "merged-shards",
            "plan_hash": self.plan_hash,
            "artifacts": list(self.artifacts),
            # summed per-cell compute time — NOT wall clock (the shards ran
            # in other invocations), hence not named elapsed_seconds
            "cell_seconds_total": sum(outcome.elapsed for outcome in self.outcomes),
        }


def merge_artifacts(
    cells: Sequence[GridCell],
    artifacts: Sequence[str | Path | Mapping[str, Any]],
    *,
    expected_shards: int | None = None,
) -> MergedShards:
    """Merge per-shard partial artifacts into the plan's canonical rows.

    The merge is keyed by cell config hash and reassembles rows in *plan
    order*, so it is invariant to the order the artifacts are given in and
    to the shard count that produced them (merging a 2-way and a 3-way split
    of the same plan yields identical rows).  Safety properties:

    * every artifact must carry the plan's fingerprint (stale or foreign
      partials are rejected);
    * a cell appearing in several artifacts with *identical* rows is fine
      (re-merges and overlapping resumed runs are idempotent); differing rows
      raise :class:`ShardMergeError` naming the conflicting cells;
    * planned cells absent from every artifact raise :class:`ShardMergeError`
      naming the absent configs — never a bare ``KeyError``, never a silently
      truncated figure.
    """
    cells = list(cells)
    fingerprint = plan_fingerprint(cells)
    loaded = [
        artifact if isinstance(artifact, Mapping) else load_shard_artifact(artifact)
        for artifact in artifacts
    ]

    for artifact in loaded:
        if str(artifact["plan_hash"]) != fingerprint:
            raise ShardMergeError(
                f"shard artifact {artifact.get('path', '<in-memory>')} belongs to a "
                f"different plan (hash {str(artifact['plan_hash'])[:12]}... != "
                f"{fingerprint[:12]}...)"
            )

    by_hash: dict[str, dict[str, Any]] = {}
    conflicting: list[str] = []
    for artifact in loaded:
        for entry in artifact["entries"]:
            config_hash = str(entry["config_hash"])
            if config_hash in by_hash:
                ours = canonical_json(by_hash[config_hash]["rows"])
                theirs = canonical_json(entry["rows"])
                if ours != theirs:
                    conflicting.append(_cell_descriptor(entry))
                continue
            by_hash[config_hash] = dict(entry)
    if conflicting:
        raise ShardMergeError(
            f"{len(conflicting)} cells appear in several shard artifacts with "
            f"differing rows (e.g. {conflicting[0]}); the partials mix "
            "incompatible runs",
            conflicting=conflicting,
        )

    missing = [cell for cell in cells if cell.config_hash not in by_hash]
    if missing:
        descriptors = [
            _cell_descriptor({"runner": cell.runner, "params": cell.params})
            for cell in missing
        ]
        shown = "; ".join(descriptors[:5]) + ("; ..." if len(descriptors) > 5 else "")
        hint = (
            f" (expected {expected_shards} shard artifacts, loaded {len(loaded)})"
            if expected_shards is not None and len(loaded) != expected_shards
            else ""
        )
        raise ShardMergeError(
            f"{len(missing)} of {len(cells)} planned cells are absent from the "
            f"merged shard artifacts{hint}: {shown}",
            missing=descriptors,
        )

    outcomes = [
        CellOutcome(
            cell=cell,
            rows=list(by_hash[cell.config_hash]["rows"]),
            elapsed=float(by_hash[cell.config_hash].get("elapsed", 0.0)),
            source=str(by_hash[cell.config_hash].get("source", "computed")),
        )
        for cell in cells
    ]
    rows: list[dict[str, Any]] = []
    for outcome in outcomes:
        rows.extend(outcome.rows)
    return MergedShards(
        rows=rows,
        outcomes=outcomes,
        plan_hash=fingerprint,
        artifacts=[str(artifact.get("path", "<in-memory>")) for artifact in loaded],
    )


# --------------------------------------------------------------------------- #
# workspace garbage collection
# --------------------------------------------------------------------------- #
#: Default GC age threshold: workspaces untouched for a week are orphans.
DEFAULT_GC_MAX_AGE_SECONDS = 7 * 24 * 3600.0


def _newest_mtime(directory: Path) -> float:
    """Most recent modification time of a workspace or anything inside it.

    A concurrent invocation that still owns the workspace keeps appending to
    its journal / partial artifacts, so *any* fresh file (not just the old
    ``plan.json``) must protect the whole workspace from the sweep.
    """
    try:
        newest = directory.stat().st_mtime
    except OSError:
        return float("-inf")
    for child in directory.rglob("*"):
        try:
            newest = max(newest, child.stat().st_mtime)
        except OSError:
            continue
    return newest


def gc_shard_workspaces(
    root: str | Path,
    max_age_seconds: float = DEFAULT_GC_MAX_AGE_SECONDS,
    *,
    now: float | None = None,
) -> dict[str, Any]:
    """Sweep orphaned per-plan shard workspaces under a persistent root.

    Interrupted cached ``--shards N`` runs can leave per-pending-set
    workspaces behind (successful unbounded-cache runs prune their own).
    This sweep removes every workspace directory whose newest content is
    older than ``max_age_seconds`` and **never** touches younger ones — a
    workspace an active concurrent run owns is protected because that run
    keeps refreshing its journal and partial artifacts.  Returns a JSON-able
    summary naming the removed and kept workspaces.
    """
    if float(max_age_seconds) < 0:
        raise InvalidParameterError(
            f"max_age_seconds must be >= 0, got {max_age_seconds}"
        )
    root = Path(root)
    reference = time.time() if now is None else float(now)
    removed: list[str] = []
    kept: list[str] = []
    if root.is_dir():
        for entry in sorted(root.iterdir()):
            if not entry.is_dir():
                continue  # stray files are not workspaces; leave them alone
            age = reference - _newest_mtime(entry)
            if age > float(max_age_seconds):
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
            else:
                kept.append(entry.name)
    return {
        "root": str(root),
        "max_age_seconds": float(max_age_seconds),
        "removed": removed,
        "kept": kept,
    }


# --------------------------------------------------------------------------- #
# the sharded executor
# --------------------------------------------------------------------------- #
def _worker_env() -> dict[str, str]:
    """Environment for shard-worker subprocesses (repro importable)."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


class ShardedExecutor(Executor):
    """Execute a grid as ``N`` shard invocations and merge their artifacts.

    Each shard runs as a separate ``python -m repro.experiments.shard_worker``
    subprocess (``launch="subprocess"``, the default — the same entrypoint a
    cluster scheduler would launch per machine) or inline in this process
    (``launch="inline"``, no interpreter startup cost).  Partial artifacts
    land under ``directory``, in a per-plan subdirectory named after the
    plan fingerprint — so one persistent directory can serve many grids (a
    whole benchmark sweep) and a changed pending-cell set (e.g. after cache
    eviction) starts a fresh workspace instead of colliding with the old
    plan.  Giving a persistent directory makes a run resumable — a
    re-invocation of the same plan skips every cell whose shard artifact
    already holds it — while ``None`` uses a temporary directory discarded
    after the merge.

    ``workers`` is the per-shard process-pool size handed to each shard's
    ``run_grid`` call; subprocess shards additionally run concurrently with
    each other.  ``cache_dir`` hands every shard worker the shared on-disk
    cell store, so cells computed by the shards that *did* finish survive
    an interrupted run even without a persistent ``directory`` (matching
    the in-process executors, which cache per completion).
    ``cache_backend`` selects the storage layout everywhere at once —
    worker cell caches *and* the shard journal/artifact layer: ``json``
    keeps the historical file-per-cell cache plus per-shard artifact files,
    ``sqlite`` routes both through WAL-mode databases (the cache at
    ``cache_dir/cells.sqlite``, the journal at the workspace's
    :data:`SHARD_DB_NAME`).
    """

    def __init__(
        self,
        shards: int,
        *,
        directory: "str | Path | None" = None,
        launch: str = "subprocess",
        workers: int = 1,
        python: str | None = None,
        cache_dir: "str | Path | None" = None,
        cache_max_entries: int | None = None,
        cache_max_bytes: int | None = None,
        cache_backend: str = "json",
    ) -> None:
        self.shards = validate_shards(shards)
        if launch not in ("subprocess", "inline"):
            raise InvalidParameterError(
                f"launch must be 'subprocess' or 'inline', got {launch!r}"
            )
        if int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.directory = None if directory is None else Path(directory)
        self.launch = launch
        self.workers = int(workers)
        self.python = python or sys.executable
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.cache_max_entries = cache_max_entries
        self.cache_max_bytes = cache_max_bytes
        self.cache_backend = validate_cache_backend(cache_backend)

    @property
    def total_workers(self) -> int:
        """Configured parallelism across all shards (for run summaries)."""
        return self.shards * self.workers

    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        tasks = list(tasks)
        cells = [cell for _, cell in tasks]
        if self.directory is not None:
            # per-plan workspace: many plans can share one persistent root
            self._execute_in(plan_workspace(self.directory, cells), tasks, cells, record)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as scratch:
                self._execute_in(Path(scratch), tasks, cells, record)

    def _execute_in(
        self,
        directory: Path,
        tasks: list[tuple[int, GridCell]],
        cells: list[GridCell],
        record: RecordFn,
    ) -> None:
        plan_path = write_plan(directory, cells, self.shards)
        if self.launch == "inline":
            cache = CellStore.from_options(
                self.cache_dir,
                max_entries=self.cache_max_entries,
                max_bytes=self.cache_max_bytes,
                cache_backend=self.cache_backend,
            )
            for shard_index in range(self.shards):
                run_shard(
                    cells,
                    self.shards,
                    shard_index,
                    directory,
                    workers=self.workers,
                    cache=cache,
                    cache_backend=self.cache_backend,
                )
        else:
            self._launch_subprocesses(plan_path, directory)
        if self.cache_backend == "sqlite":
            # no per-shard artifact files to find or load: one journal
            # query reassembles every shard's entries from the workspace DB
            store = workspace_store(directory)
            try:
                artifacts = journal_artifacts(
                    store, plan_fingerprint(cells), self.shards
                )
            finally:
                store.close()
        else:
            artifacts = find_shard_artifacts(directory, self.shards)
        merged = merge_artifacts(
            cells,
            artifacts,
            expected_shards=self.shards,
        )
        for (index, _), outcome in zip(tasks, merged.outcomes):
            # preserve worker-side provenance ("cache" hits, "resumed"
            # cells) so the parent summary reports it truthfully
            source = outcome.source if outcome.source in ("cache", "resumed") else "computed"
            record(index, outcome.rows, outcome.elapsed, source)
        if (
            self.directory is not None
            and self.cache_dir is not None
            and self.cache_max_entries is None
            and self.cache_max_bytes is None
        ):
            # every merged cell now lives in the (unbounded) shared cell
            # cache, which makes the partial artifacts redundant — prune the
            # per-plan workspace so persistent roots do not accumulate one
            # directory per pending-set variant.  Without a cache — or with
            # a bounded one that may evict the cells — the workspace remains
            # the resume state, so it is kept.
            shutil.rmtree(directory, ignore_errors=True)

    def _worker_command(self, plan_path: Path, directory: Path, shard_index: int) -> list[str]:
        command = [
            self.python,
            "-m",
            "repro.experiments.shard_worker",
            "--plan",
            str(plan_path),
            "--shard-index",
            str(shard_index),
            "--dir",
            str(directory),
            "--workers",
            str(self.workers),
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
            if self.cache_max_entries is not None:
                command += ["--cache-max-entries", str(self.cache_max_entries)]
            if self.cache_max_bytes is not None:
                command += ["--cache-max-bytes", str(self.cache_max_bytes)]
        if self.cache_backend != "json":
            # the backend governs the journal/artifact layout too, so it is
            # passed even without a cache directory
            command += ["--cache-backend", self.cache_backend]
        return command

    def _launch_subprocesses(self, plan_path: Path, directory: Path) -> None:
        env = _worker_env()
        # cap concurrent shard workers so shards x per-shard pool workers
        # cannot oversubscribe the machine; a sliding window (not waves)
        # starts the next shard the moment any running one exits.  Worker
        # stderr goes to files, not pipes, so a chatty worker can never
        # dead-lock against an unread pipe buffer.
        concurrency = max(1, (os.cpu_count() or 4) // self.workers)
        pending = list(range(self.shards))
        running: list[tuple[int, "subprocess.Popen[bytes]", Path]] = []
        failures: list[str] = []
        try:
            while pending or running:
                while pending and len(running) < concurrency:
                    shard_index = pending.pop(0)
                    stderr_path = directory / f".shard-{shard_index:04d}.stderr"
                    with open(stderr_path, "wb") as stderr_handle:
                        process = subprocess.Popen(
                            self._worker_command(plan_path, directory, shard_index),
                            env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=stderr_handle,
                        )
                    running.append((shard_index, process, stderr_path))
                still_running: list[tuple[int, "subprocess.Popen[bytes]", Path]] = []
                for shard_index, process, stderr_path in running:
                    if process.poll() is None:
                        still_running.append((shard_index, process, stderr_path))
                        continue
                    if process.returncode != 0:
                        try:
                            lines = stderr_path.read_text(errors="replace").strip().splitlines()
                        except OSError:
                            lines = []
                        tail = "\n".join(lines[-5:])
                        failures.append(
                            f"shard {shard_index} exited {process.returncode}: {tail}"
                        )
                    stderr_path.unlink(missing_ok=True)
                running = still_running
                if running:
                    time.sleep(0.05)
        finally:
            for _, process, _ in running:  # only on an unexpected exception
                process.kill()
        if failures:
            raise GridExecutionError(
                f"{len(failures)} of {self.shards} shard workers failed — "
                + " | ".join(failures)
            )
