"""Experiment E4 — re-identification risk of the RS+FD solution (Fig. 4).

The paper shows that when users adopt RS+FD[GRR] instead of SMP, the
re-identification attack collapses: the attacker must first predict the
sampled attribute (NK attribute-inference with ``s = 1n``) and then infer its
value, and the chained errors across surveys keep the RID-ACC close to the
random baseline.
"""

from __future__ import annotations

from typing import Sequence

from ..attacks.attribute_inference import ClassifierFactory
from ..attacks.profile import build_profiles_rsfd, plan_surveys
from ..attacks.reidentification import ReidentificationAttack
from ..core.rng import ensure_rng
from ..datasets.loaders import load_dataset
from ..metrics.accuracy import as_percentage
from .config import PAPER_EPSILONS
from .reporting import mean_rows


def run_reidentification_rsfd(
    dataset_name: str = "adult",
    n: int | None = None,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    variant: str = "grr",
    ue_kind: str = "OUE",
    synthetic_factor: float = 1.0,
    metric: str = "uniform",
    knowledge: str = "FK-RI",
    classifier_factory: ClassifierFactory | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
) -> list[dict]:
    """Measure RID-ACC when users adopt RS+FD (Fig. 4 setup).

    Defaults follow the paper: RS+FD[GRR], NK attribute inference with
    ``s = 1n`` synthetic profiles, FK-RI matching and the uniform privacy
    metric across users.
    """
    all_rows: list[dict] = []
    for run_index in range(runs):
        rng = ensure_rng(seed + run_index)
        dataset = load_dataset(dataset_name, n=n, rng=seed)
        surveys = plan_surveys(dataset.d, num_surveys, rng=rng)
        reident = ReidentificationAttack(dataset, rng=rng)
        for epsilon in epsilons:
            profiling = build_profiles_rsfd(
                dataset,
                surveys,
                epsilon=float(epsilon),
                variant=variant,
                ue_kind=ue_kind,
                metric=metric,
                synthetic_factor=synthetic_factor,
                classifier_factory=classifier_factory,
                rng=rng,
            )
            for top_k in top_ks:
                results = reident.evaluate_profiling(
                    profiling, top_k=top_k, model=knowledge, min_surveys=min_surveys
                )
                for surveys_done, result in results.items():
                    all_rows.append(
                        {
                            "dataset": dataset_name,
                            "protocol": profiling.extra.get("variant", variant),
                            "epsilon": float(epsilon),
                            "metric": metric,
                            "knowledge": knowledge,
                            "surveys": surveys_done,
                            "top_k": top_k,
                            "rid_acc_pct": as_percentage(result.accuracy),
                            "baseline_pct": as_percentage(result.baseline),
                        }
                    )
    group_by = [
        "dataset",
        "protocol",
        "epsilon",
        "metric",
        "knowledge",
        "surveys",
        "top_k",
    ]
    return mean_rows(all_rows, group_by, ["rid_acc_pct", "baseline_pct"])
