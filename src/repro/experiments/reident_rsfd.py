"""Experiment E4 — re-identification risk of the RS+FD solution (Fig. 4).

The paper shows that when users adopt RS+FD[GRR] instead of SMP, the
re-identification attack collapses: the attacker must first predict the
sampled attribute (NK attribute-inference with ``s = 1n``) and then infer its
value, and the chained errors across surveys keep the RID-ACC close to the
random baseline.

Grid decomposition: one cell per (repetition, epsilon), with the survey plan
of a repetition derived from the master seed and the repetition index alone.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..attacks.attribute_inference import ClassifierFactory
from ..attacks.profile import build_profiles_rsfd, plan_surveys
from ..attacks.reidentification import ReidentificationAttack
from ..core.rng import derive_rng
from ..datasets.loaders import load_dataset
from ..metrics.accuracy import as_percentage
from .attribute_inference_rsfd import classifier_name, resolve_classifier_factory
from .config import PAPER_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan
from .reporting import mean_rows


@cell_runner("reident_rsfd")
def _reident_rsfd_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One (repetition, epsilon) cell of Fig. 4."""
    dataset = load_dataset(
        params["dataset"], n=params["n"], rng=int(params["dataset_seed"])
    )
    surveys_rng = derive_rng(
        int(params["seed"]), "reident_rsfd", "surveys", int(params["run"])
    )
    surveys = plan_surveys(dataset.d, int(params["num_surveys"]), rng=surveys_rng)
    reident = ReidentificationAttack(dataset, rng=rng)
    profiling = build_profiles_rsfd(
        dataset,
        surveys,
        epsilon=float(params["epsilon"]),
        variant=params["variant"],
        ue_kind=params["ue_kind"],
        metric=params["metric"],
        synthetic_factor=float(params["synthetic_factor"]),
        classifier_factory=resolve_classifier_factory(params["classifier"]),
        amortize_nk=bool(params.get("amortize_nk", True)),
        rng=rng,
    )
    rows: list[dict] = []
    for top_k in params["top_ks"]:
        results = reident.evaluate_profiling(
            profiling,
            top_k=int(top_k),
            model=params["knowledge"],
            min_surveys=int(params["min_surveys"]),
            redraw_attributes=bool(params.get("redraw_attributes", False)),
        )
        for surveys_done, result in results.items():
            rows.append(
                {
                    "dataset": params["dataset"],
                    "protocol": profiling.extra.get("variant", params["variant"]),
                    "epsilon": float(params["epsilon"]),
                    "metric": params["metric"],
                    "knowledge": params["knowledge"],
                    "surveys": surveys_done,
                    "top_k": int(top_k),
                    "rid_acc_pct": as_percentage(result.accuracy),
                    "baseline_pct": as_percentage(result.baseline),
                }
            )
    return rows


def postprocess_reidentification_rsfd(rows: list[dict]) -> list[dict]:
    """Average raw cell rows over repetitions (the figure's final rows)."""
    group_by = [
        "dataset",
        "protocol",
        "epsilon",
        "metric",
        "knowledge",
        "surveys",
        "top_k",
    ]
    return mean_rows(rows, group_by, ["rid_acc_pct", "baseline_pct"])


def plan_reidentification_rsfd(
    dataset_name: str = "adult",
    n: int | None = None,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    variant: str = "grr",
    ue_kind: str = "OUE",
    synthetic_factor: float = 1.0,
    metric: str = "uniform",
    knowledge: str = "FK-RI",
    classifier_factory: ClassifierFactory | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
    figure: str = "reident_rsfd",
    amortize_nk: bool = True,
    redraw_attributes: bool = False,
) -> list[GridCell]:
    """Express the RS+FD re-identification grid as independent cells.

    ``amortize_nk`` trains the NK sampled-attribute classifier once per
    distinct survey attribute set instead of once per survey (see
    :func:`repro.attacks.profile.build_profiles_rsfd`); it is part of the
    cell parameters, so flipping it never reuses stale cache entries.
    """
    classifier = classifier_name(classifier_factory)
    cells = []
    for run_index in range(runs):
        for epsilon in epsilons:
            cells.append(
                GridCell(
                    figure=figure,
                    runner="reident_rsfd",
                    params={
                        "dataset": dataset_name,
                        "n": n,
                        "dataset_seed": seed,
                        "seed": seed,
                        "run": run_index,
                        "epsilon": float(epsilon),
                        "num_surveys": num_surveys,
                        "top_ks": [int(k) for k in top_ks],
                        "variant": variant,
                        "ue_kind": ue_kind,
                        "synthetic_factor": float(synthetic_factor),
                        "metric": metric,
                        "knowledge": knowledge,
                        "min_surveys": min_surveys,
                        "classifier": classifier,
                        "amortize_nk": bool(amortize_nk),
                        "redraw_attributes": bool(redraw_attributes),
                    },
                    master_seed=seed,
                )
            )
    return cells


def run_reidentification_rsfd(
    dataset_name: str = "adult",
    n: int | None = None,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    num_surveys: int = 5,
    top_ks: Sequence[int] = (1, 10),
    variant: str = "grr",
    ue_kind: str = "OUE",
    synthetic_factor: float = 1.0,
    metric: str = "uniform",
    knowledge: str = "FK-RI",
    classifier_factory: ClassifierFactory | None = None,
    min_surveys: int = 2,
    runs: int = 1,
    seed: int = 42,
    figure: str = "reident_rsfd",
    amortize_nk: bool = True,
    redraw_attributes: bool = False,
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Measure RID-ACC when users adopt RS+FD (Fig. 4 setup).

    Defaults follow the paper: RS+FD[GRR], NK attribute inference with
    ``s = 1n`` synthetic profiles, FK-RI matching and the uniform privacy
    metric across users.
    """
    cells = plan_reidentification_rsfd(
        dataset_name=dataset_name,
        n=n,
        epsilons=epsilons,
        num_surveys=num_surveys,
        top_ks=top_ks,
        variant=variant,
        ue_kind=ue_kind,
        synthetic_factor=synthetic_factor,
        metric=metric,
        knowledge=knowledge,
        classifier_factory=classifier_factory,
        min_surveys=min_surveys,
        runs=runs,
        seed=seed,
        figure=figure,
        amortize_nk=amortize_nk,
        redraw_attributes=redraw_attributes,
    )
    return execute_plan(
        cells,
        postprocess_reidentification_rsfd,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
