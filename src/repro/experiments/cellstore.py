"""WAL-mode SQLite cell store: cache entries, shard journals, run ledger.

The JSON :class:`~repro.experiments.grid.GridCache` keeps one file per
cached cell and the sharded engine keeps one append-only JSONL journal per
shard — at production grid sizes (1e5+ cells) directory scans, per-file
eviction and journal replay dominate wall-clock.  This module moves all
three kinds of state into **one SQLite database** per store:

* ``cells`` — the completed-cell memo (``config_hash`` primary key, rows as
  canonical JSON, ``last_used_at`` refreshed on every hit so eviction is a
  single indexed least-recently-used delete);
* ``shard_journal`` — per-plan completion journals: concurrent shard
  invocations append to the same database (WAL + ``busy_timeout`` make the
  tiny per-cell transactions safe) and resume state becomes a query,
  ``SELECT ... FROM shard_journal WHERE fingerprint = ?``, instead of a
  line-by-line JSONL replay;
* ``runs`` — a ledger of every ``run_grid`` / ``run_shard`` invocation with
  its JSON execution summary, so a long sweep's history is queryable.

The database is opened with ``journal_mode=WAL`` (readers never block the
writer), ``synchronous=NORMAL`` and a short per-attempt ``busy_timeout``;
write transactions that still find the database locked are retried on the
bounded, deterministically jittered backoff schedule of
:mod:`repro.core.retry` before degrading to the store's usual warned miss —
a wedged co-writer costs a few seconds, never a 30 s stall.  The schema is
created and upgraded through the ordered migration scripts in
:data:`_MIGRATIONS`, tracked by SQLite's ``user_version`` pragma — opening
an old database applies only the missing migrations, and a database written
by a *newer* library version is refused instead of corrupted.

:class:`SQLiteCellStore` implements the same
:class:`~repro.experiments.grid.CellStore` seam as ``GridCache`` (the JSON
layout stays as the parity baseline, selected by ``--cache-backend json``),
including the degrade-to-a-warned-miss contract: no storage failure may
abort a grid run that can still compute its cells.
"""

from __future__ import annotations

import json
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence, TypeVar

from ..core.retry import RetryPolicy, retry_call
from ..exceptions import InvalidParameterError
from .grid import GRID_SCHEMA_VERSION, CellStore, GridCell, _jsonable

T = TypeVar("T")

#: Database file name used when a store is built from a cache *directory*
#: (``--cache-dir X --cache-backend sqlite`` → ``X/cells.sqlite``).
DEFAULT_DB_NAME = "cells.sqlite"

#: How long one write *attempt* waits on a locked database.  Deliberately
#: short: contention is handled by the bounded, jittered retry schedule of
#: :data:`DEFAULT_WRITE_RETRY_POLICY`, not by camping on the lock — a wedged
#: writer degrades to a warned miss in a few seconds, not after 30.
DEFAULT_BUSY_TIMEOUT_MS = 250

#: Bounded backoff between write attempts on a locked database.  Worst-case
#: total wait ≈ 7 × 0.25 s lock waits + 2.5 s of backoff — a few seconds,
#: after which the write degrades to the store's usual warned miss.
DEFAULT_WRITE_RETRY_POLICY = RetryPolicy(
    max_retries=6, base_delay=0.05, max_delay=1.0, multiplier=2.0, jitter=0.1
)


class _DatabaseLockedError(sqlite3.OperationalError):
    """SQLITE_BUSY/SQLITE_LOCKED — the one retryable write failure."""


def _tag_locked(fn: Callable[[], T]) -> T:
    """Run ``fn``, re-raising lock contention as :class:`_DatabaseLockedError`.

    Every other ``OperationalError`` (corrupt schema, disk full, ...) keeps
    its type and is *not* retried — retrying cannot fix it.
    """
    try:
        return fn()
    except _DatabaseLockedError:
        raise
    except sqlite3.OperationalError as exc:
        text = str(exc).lower()
        if "locked" in text or "busy" in text:
            raise _DatabaseLockedError(str(exc)) from exc
        raise


#: Ordered, append-only migration scripts; ``PRAGMA user_version`` records
#: how many have been applied.  Never edit an existing script — append a new
#: one, so any database version on disk upgrades along the same path.
_MIGRATIONS: tuple[str, ...] = (
    # 1: the three core tables
    """
    CREATE TABLE cells (
        config_hash  TEXT PRIMARY KEY,
        key          TEXT NOT NULL,
        schema       INTEGER NOT NULL,
        runner       TEXT NOT NULL,
        master_seed  INTEGER NOT NULL,
        rows         TEXT NOT NULL,
        elapsed      REAL NOT NULL,
        size_bytes   INTEGER NOT NULL,
        created_at   REAL NOT NULL,
        last_used_at REAL NOT NULL
    );
    CREATE TABLE shard_journal (
        fingerprint TEXT NOT NULL,
        shard_index INTEGER NOT NULL,
        config_hash TEXT NOT NULL,
        entry       TEXT NOT NULL,
        created_at  REAL NOT NULL,
        PRIMARY KEY (fingerprint, config_hash)
    );
    CREATE TABLE runs (
        run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
        kind        TEXT NOT NULL,
        figure      TEXT,
        started_at  REAL NOT NULL,
        finished_at REAL NOT NULL,
        summary     TEXT NOT NULL
    );
    """,
    # 2: the indexes behind LRU eviction and journal resume queries
    """
    CREATE INDEX idx_cells_last_used ON cells (last_used_at);
    CREATE INDEX idx_journal_fingerprint ON shard_journal (fingerprint, shard_index);
    """,
)

#: Schema version a freshly created database ends up at.
CELLSTORE_SCHEMA_VERSION = len(_MIGRATIONS)


def _statements(script: str) -> list[str]:
    """Split a migration script into individual SQL statements."""
    return [part.strip() for part in script.split(";") if part.strip()]


def _compact_json(value: Any) -> str:
    """Compact JSON encoding of an already-jsonable value."""
    return json.dumps(value, separators=(",", ":"))


class SQLiteCellStore(CellStore):
    """One WAL-mode SQLite database holding cells, shard journals and runs.

    Parameters
    ----------
    path:
        Database file.  Use :meth:`for_directory` to follow the CLI
        convention of ``<cache-dir>/cells.sqlite``.
    max_entries, max_bytes:
        Optional bounds on the ``cells`` table (count / cumulative stored
        row-payload bytes).  Eviction is least-recently-used: :meth:`get`
        refreshes ``last_used_at`` on every hit and :meth:`put` deletes the
        stalest entries (never the one just written) with one indexed
        query — no directory scan.
    busy_timeout_ms:
        ``PRAGMA busy_timeout`` — how long one write *attempt* waits on a
        lock before the bounded retry schedule takes over.
    retry_policy:
        Backoff between write attempts on a locked database (defaults to
        :data:`DEFAULT_WRITE_RETRY_POLICY`).  When the schedule is
        exhausted the write degrades to the usual warned miss instead of
        raising — concurrent shard invocations sharing one journal
        database never abort each other.

    Error contract: construction fails fast with
    :class:`~repro.exceptions.InvalidParameterError` on an unusable path —
    exactly like ``GridCache`` with an unusable directory — while every
    later storage failure degrades to a once-warned miss/no-op so a grid
    run keeps computing.
    """

    backend = "sqlite"

    def __init__(
        self,
        path: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.path = Path(path)
        self.directory = self.path.parent
        self.retry_policy = DEFAULT_WRITE_RETRY_POLICY if retry_policy is None else retry_policy
        if max_entries is not None and int(max_entries) < 1:
            raise InvalidParameterError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and int(max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._evicted = 0
        self._warned: set[tuple[str, int | None]] = set()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.path, timeout=busy_timeout_ms / 1000.0)
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            self._migrate()
        except (OSError, sqlite3.Error) as exc:
            raise InvalidParameterError(
                f"cell store {self.path} is not usable: {exc}"
            ) from exc

    @classmethod
    def for_directory(
        cls,
        directory: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> "SQLiteCellStore":
        """The store backing a cache *directory*: ``<directory>/cells.sqlite``."""
        return cls(
            Path(directory) / DEFAULT_DB_NAME,
            max_entries=max_entries,
            max_bytes=max_bytes,
            retry_policy=retry_policy,
        )

    # ------------------------------------------------------------------ #
    # schema migrations
    # ------------------------------------------------------------------ #
    def schema_version(self) -> int:
        """The database's current migration level (``PRAGMA user_version``)."""
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def _migrate(self) -> None:
        """Apply every migration the database has not seen yet, in order."""
        version = self.schema_version()
        if version > len(_MIGRATIONS):
            raise InvalidParameterError(
                f"cell store {self.path} has schema version {version}, newer than "
                f"this library's {CELLSTORE_SCHEMA_VERSION}; refusing to touch it"
            )
        for number in range(version + 1, len(_MIGRATIONS) + 1):
            # one transaction per migration: a crash mid-upgrade leaves the
            # database at the previous consistent version, not in between
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for statement in _statements(_MIGRATIONS[number - 1]):
                    self._conn.execute(statement)
                self._conn.execute(f"PRAGMA user_version = {number}")
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # ------------------------------------------------------------------ #
    # shared plumbing
    # ------------------------------------------------------------------ #
    def _warn_io(self, action: str, exc: Exception) -> None:
        """Warn once per ``(action, errno)`` category that storage I/O fails.

        A boolean guard would let the first failure (say, a locked read)
        permanently suppress reports of later, differently-caused failures
        (a full disk on write); keying on the category surfaces each
        distinct failure mode exactly once per store instance.  sqlite3
        errors carry no ``errno``, so they key on ``(action, None)``.
        """
        category = (action, getattr(exc, "errno", None))
        if category in self._warned:
            return
        self._warned.add(category)
        warnings.warn(
            f"cell store {action} failed for {self.path} ({exc}); "
            "continuing without the store (cells are recomputed, not persisted)",
            RuntimeWarning,
            stacklevel=3,
        )

    def _retry_write(self, action: str, fn: Callable[[], T]) -> T:
        """Run one write transaction, retrying briefly while the DB is locked.

        ``SQLITE_BUSY``/``SQLITE_LOCKED`` surviving the short per-attempt
        ``busy_timeout`` is retried on the bounded backoff schedule of
        ``self.retry_policy`` (jitter deterministically keyed on
        ``action``); the final failure propagates so each caller's usual
        warned-miss degrade path handles it.  Non-lock errors are never
        retried.
        """
        return retry_call(
            lambda: _tag_locked(fn),
            self.retry_policy,
            key=action,
            retry_on=(_DatabaseLockedError,),
        )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - close never fails in practice
            pass

    def __enter__(self) -> "SQLiteCellStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the cells table (the CellStore seam)
    # ------------------------------------------------------------------ #
    def get(self, cell: GridCell) -> "list[dict[str, Any]] | None":
        """Cached rows of ``cell``, or ``None`` on a miss.

        A hit refreshes the entry's ``last_used_at`` (best-effort), so a
        bounded store evicts stale entries before hot ones.
        """
        try:
            row = self._conn.execute(
                "SELECT key, master_seed, rows FROM cells WHERE config_hash = ?",
                (cell.config_hash,),
            ).fetchone()
        except sqlite3.Error as exc:
            self._warn_io("read", exc)
            return None
        if row is None:
            return None
        # same tamper/collision guard as the JSON cache
        if row["key"] != cell.key or int(row["master_seed"]) != int(cell.master_seed):
            return None
        try:
            rows = json.loads(row["rows"])
        except (json.JSONDecodeError, TypeError):
            return None
        if not isinstance(rows, list):
            return None
        try:
            with self._conn:
                self._conn.execute(
                    "UPDATE cells SET last_used_at = ? WHERE config_hash = ?",
                    (time.time(), cell.config_hash),
                )
        except sqlite3.Error:
            pass  # the LRU refresh is best-effort, like the JSON mtime touch
        return rows

    def put(
        self, cell: GridCell, rows: Sequence[Mapping[str, Any]], elapsed: float
    ) -> "Path | None":
        """Persist the rows of a freshly computed cell.

        Returns the database path, or ``None`` when the write failed (the
        run continues uncached).
        """
        payload = _compact_json([_jsonable(row) for row in rows])
        now = time.time()

        def write() -> None:
            with self._conn:
                self._conn.execute(
                    """
                    INSERT INTO cells (config_hash, key, schema, runner, master_seed,
                                       rows, elapsed, size_bytes, created_at, last_used_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    ON CONFLICT(config_hash) DO UPDATE SET
                        rows = excluded.rows,
                        elapsed = excluded.elapsed,
                        size_bytes = excluded.size_bytes,
                        last_used_at = excluded.last_used_at
                    """,
                    (
                        cell.config_hash,
                        cell.key,
                        GRID_SCHEMA_VERSION,
                        cell.runner,
                        int(cell.master_seed),
                        payload,
                        float(elapsed),
                        len(payload.encode("utf-8")),
                        now,
                        now,
                    ),
                )

        try:
            self._retry_write("write", write)
        except sqlite3.Error as exc:
            self._warn_io("write", exc)
            return None
        self._enforce_bounds(protect=cell.config_hash)
        return self.path

    def _enforce_bounds(self, protect: "str | None" = None) -> None:
        """Evict least-recently-used cells until the configured bounds hold.

        One indexed pass over ``last_used_at`` order — no directory scan;
        the entry named by ``protect`` (the one just written) survives.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        try:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) FROM cells"
            ).fetchone()
            doomed: list[tuple[str]] = []
            if (self.max_entries is not None and count > self.max_entries) or (
                self.max_bytes is not None and total > self.max_bytes
            ):
                for row in self._conn.execute(
                    "SELECT config_hash, size_bytes FROM cells "
                    "ORDER BY last_used_at, rowid"
                ):
                    over_entries = (
                        self.max_entries is not None and count > self.max_entries
                    )
                    over_bytes = self.max_bytes is not None and total > self.max_bytes
                    if not (over_entries or over_bytes):
                        break
                    if row["config_hash"] == protect:
                        continue
                    doomed.append((row["config_hash"],))
                    count -= 1
                    total -= int(row["size_bytes"])
            if doomed:

                def delete() -> None:
                    with self._conn:
                        self._conn.executemany(
                            "DELETE FROM cells WHERE config_hash = ?", doomed
                        )

                self._retry_write("eviction", delete)
                self._evicted += len(doomed)
        except sqlite3.Error as exc:
            self._warn_io("eviction", exc)

    def stats(self) -> dict[str, Any]:
        """Current store occupancy, configured bounds and table sizes."""
        try:
            entries, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) FROM cells"
            ).fetchone()
            journal = self._conn.execute(
                "SELECT COUNT(*) FROM shard_journal"
            ).fetchone()[0]
            runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            version = self.schema_version()
        except sqlite3.Error as exc:
            self._warn_io("stats", exc)
            entries = total = journal = runs = version = 0
        return {
            "backend": self.backend,
            "directory": str(self.directory),
            "path": str(self.path),
            "entries": int(entries),
            "total_bytes": int(total),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "evicted": self._evicted,
            "journal_entries": int(journal),
            "runs": int(runs),
            "schema_version": int(version),
        }

    def __len__(self) -> int:
        try:
            return int(self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0])
        except sqlite3.Error as exc:
            self._warn_io("read", exc)
            return 0

    # ------------------------------------------------------------------ #
    # the shard_journal table
    # ------------------------------------------------------------------ #
    def journal_append(
        self, fingerprint: str, shard_index: int, entry: Mapping[str, Any]
    ) -> bool:
        """Record one completed cell of a plan's shard (idempotent upsert).

        The per-cell transaction is what makes *concurrent* shard
        invocations safe: WAL mode plus the short ``busy_timeout`` and the
        bounded write-retry schedule serialize the tiny writes without any
        merge step afterwards.
        """
        try:
            record = _compact_json(_jsonable(dict(entry)))
            config_hash = str(entry["config_hash"])

            def append() -> None:
                with self._conn:
                    self._conn.execute(
                        """
                        INSERT INTO shard_journal
                            (fingerprint, shard_index, config_hash, entry, created_at)
                        VALUES (?, ?, ?, ?, ?)
                        ON CONFLICT(fingerprint, config_hash) DO UPDATE SET
                            shard_index = excluded.shard_index,
                            entry = excluded.entry
                        """,
                        (
                            str(fingerprint),
                            int(shard_index),
                            config_hash,
                            record,
                            time.time(),
                        ),
                    )

            self._retry_write("journal append", append)
            return True
        except (sqlite3.Error, KeyError) as exc:
            self._warn_io("journal append", exc)
            return False

    def journal_records(self, fingerprint: str) -> Iterator[tuple[int, dict[str, Any]]]:
        """``(shard_index, entry)`` of every journaled cell of a plan.

        Undecodable entries are skipped (mirroring the JSONL journal's
        torn-line tolerance); storage failures degrade to an empty iteration
        with the usual warning.
        """
        try:
            rows = self._conn.execute(
                "SELECT shard_index, entry FROM shard_journal "
                "WHERE fingerprint = ? ORDER BY rowid",
                (str(fingerprint),),
            ).fetchall()
        except sqlite3.Error as exc:
            self._warn_io("journal read", exc)
            return
        for row in rows:
            try:
                entry = json.loads(row["entry"])
            except (json.JSONDecodeError, TypeError):
                continue
            if isinstance(entry, dict) and "config_hash" in entry:
                yield int(row["shard_index"]), entry

    def journal_entries(self, fingerprint: str) -> dict[str, dict[str, Any]]:
        """Resume state of a plan: ``{config_hash: entry}`` for every shard.

        This is the query that replaces the JSONL journal replay — one
        indexed lookup instead of re-parsing a line per completed cell.
        """
        return {
            str(entry["config_hash"]): entry
            for _, entry in self.journal_records(fingerprint)
        }

    def journal_clear(
        self, fingerprint: str, shard_index: int | None = None
    ) -> int:
        """Drop a plan's journal (optionally only one shard's rows)."""

        def clear() -> int:
            with self._conn:
                if shard_index is None:
                    cursor = self._conn.execute(
                        "DELETE FROM shard_journal WHERE fingerprint = ?",
                        (str(fingerprint),),
                    )
                else:
                    cursor = self._conn.execute(
                        "DELETE FROM shard_journal "
                        "WHERE fingerprint = ? AND shard_index = ?",
                        (str(fingerprint), int(shard_index)),
                    )
            return int(cursor.rowcount)

        try:
            return self._retry_write("journal clear", clear)
        except sqlite3.Error as exc:
            self._warn_io("journal clear", exc)
            return 0

    # ------------------------------------------------------------------ #
    # the runs ledger
    # ------------------------------------------------------------------ #
    def record_run(
        self,
        kind: str,
        figure: str | None = None,
        summary: Mapping[str, Any] | None = None,
        started_at: float | None = None,
        finished_at: float | None = None,
    ) -> int | None:
        """Append one invocation to the run ledger; returns its ``run_id``.

        ``kind`` names the entry point (``"run_grid"``, ``"run_shard"``,
        ``"merge_shards"``, ...); ``summary`` is any JSON-able execution
        summary.  Failures degrade to ``None`` — the ledger is bookkeeping,
        never a reason to fail a finished run.
        """
        now = time.time()

        def append() -> "int | None":
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO runs (kind, figure, started_at, finished_at, summary) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        str(kind),
                        None if figure is None else str(figure),
                        now if started_at is None else float(started_at),
                        now if finished_at is None else float(finished_at),
                        _compact_json(_jsonable(dict(summary or {}))),
                    ),
                )
            row_id = cursor.lastrowid  # None only on a non-INSERT cursor
            return None if row_id is None else int(row_id)

        try:
            return self._retry_write("ledger append", append)
        except sqlite3.Error as exc:
            self._warn_io("ledger append", exc)
            return None

    def runs_ledger(
        self, limit: int | None = None, kind: str | None = None
    ) -> list[dict[str, Any]]:
        """The ledger, newest first (optionally filtered / truncated)."""
        query = "SELECT run_id, kind, figure, started_at, finished_at, summary FROM runs"
        params: list[Any] = []
        if kind is not None:
            query += " WHERE kind = ?"
            params.append(str(kind))
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        try:
            rows = self._conn.execute(query, params).fetchall()
        except sqlite3.Error as exc:
            self._warn_io("ledger read", exc)
            return []
        ledger: list[dict[str, Any]] = []
        for row in rows:
            try:
                summary = json.loads(row["summary"])
            except (json.JSONDecodeError, TypeError):
                summary = None
            ledger.append(
                {
                    "run_id": int(row["run_id"]),
                    "kind": row["kind"],
                    "figure": row["figure"],
                    "started_at": float(row["started_at"]),
                    "finished_at": float(row["finished_at"]),
                    "summary": summary,
                }
            )
        return ledger

    # ------------------------------------------------------------------ #
    # migration from a JSON cache directory
    # ------------------------------------------------------------------ #
    def import_json_cache(self, directory: str | Path) -> dict[str, Any]:
        """Import a :class:`GridCache` directory's entries into ``cells``.

        Unreadable/corrupt files, entries of a different grid schema version
        (their config hashes could never be queried anyway) and hashes
        already present in the store (the database copy wins — it may be
        fresher) are skipped, each counted in the returned summary.  File
        modification times become ``last_used_at``, so the imported entries
        keep their LRU order.
        """
        directory = Path(directory)
        imported = skipped = present = 0
        for path in sorted(directory.glob("*.json")):
            try:
                stat = path.stat()
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                skipped += 1
                continue
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != GRID_SCHEMA_VERSION
                or not isinstance(entry.get("rows"), list)
                or not isinstance(entry.get("key"), str)
            ):
                skipped += 1
                continue
            payload = _compact_json(entry["rows"])

            def insert(
                stem: str = path.stem,
                record: "dict[str, Any]" = entry,
                blob: str = payload,
                mtime: float = stat.st_mtime,
            ) -> sqlite3.Cursor:
                with self._conn:
                    return self._conn.execute(
                        """
                        INSERT OR IGNORE INTO cells
                            (config_hash, key, schema, runner, master_seed,
                             rows, elapsed, size_bytes, created_at, last_used_at)
                        VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                        """,
                        (
                            stem,
                            record["key"],
                            int(record["schema"]),
                            str(record.get("runner", "")),
                            int(record.get("master_seed", 0)),
                            blob,
                            float(record.get("elapsed", 0.0)),
                            len(blob.encode("utf-8")),
                            mtime,
                            mtime,
                        ),
                    )

            try:
                cursor = self._retry_write("import", insert)
            except (sqlite3.Error, TypeError, ValueError):
                skipped += 1
                continue
            if cursor.rowcount:
                imported += 1
            else:
                present += 1
        self._enforce_bounds()
        return {
            "directory": str(directory),
            "store": str(self.path),
            "imported": imported,
            "already_present": present,
            "skipped": skipped,
        }
