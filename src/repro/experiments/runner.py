"""Experiment runner: regenerate any figure of the paper from the command line.

``python -m repro.experiments fig2 --quick`` prints the rows behind Fig. 2.
Every figure of the evaluation (main body Figs. 1-6 and appendix Figs. 9-17)
has an entry; the ``--quick`` flag (the default; the inverse of ``--full``)
scales the workload down so a figure regenerates in seconds-to-minutes,
while the default parameters follow the paper's setup.

All figures execute on the :mod:`repro.experiments.grid` engine:
``--workers`` fans the figure's cells out across a process pool,
``--cache-dir`` / ``--no-cache`` control the on-disk cell memo, ``--seed``
overrides the master seed and ``--out`` persists the rows, metadata and
per-cell timings as a figure artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Mapping, Sequence

from ..exceptions import InvalidParameterError
from .analytical_acc import run_analytical_acc
from .attribute_inference_rsfd import run_attribute_inference_rsfd
from .attribute_inference_rsrfd import run_attribute_inference_rsrfd
from .config import PIE_BETAS, QUICK
from .grid import GridCache
from .reident_rsfd import run_reidentification_rsfd
from .reident_smp import run_reidentification_smp
from .reporting import format_table, save_artifact
from .utility_rsrfd import run_utility_rsrfd

#: Default on-disk cell-cache directory used by the CLI.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Reduced grids used by the ``--quick`` mode.
_QUICK_EPSILONS = QUICK.epsilons
_QUICK_N = QUICK.n
_QUICK_N_CLASSIFIER = 1200
_QUICK_BETAS = (0.95, 0.8, 0.65, 0.5)


def _experiment_registry(quick: bool) -> Mapping[str, Callable[..., list[dict]]]:
    """Build the figure-id → runner mapping for the requested scale.

    Every registry entry accepts the engine keyword arguments (``workers``,
    ``cache``, ``seed``, ``grid_info``) and forwards them to its experiment
    function together with the figure id (labelling the grid cells).
    """
    n = _QUICK_N if quick else None
    n_cls = _QUICK_N_CLASSIFIER if quick else None
    eps = _QUICK_EPSILONS if quick else None
    betas = _QUICK_BETAS if quick else PIE_BETAS
    kw_eps = {"epsilons": eps} if eps else {}
    kw_util_eps = {}  # the utility grid (ln2..ln7) is already small

    def reident_smp(figure, **overrides):
        return lambda **engine: run_reidentification_smp(
            n=n, figure=figure, **kw_eps, **overrides, **engine
        )

    def aif_rsfd(figure, **overrides):
        return lambda **engine: run_attribute_inference_rsfd(
            n=n_cls, figure=figure, **kw_eps, **overrides, **engine
        )

    def aif_rsrfd(figure, **overrides):
        return lambda **engine: run_attribute_inference_rsrfd(
            n=n_cls, figure=figure, **kw_eps, **overrides, **engine
        )

    return {
        "fig1": lambda **engine: run_analytical_acc(figure="fig1", **engine),
        "fig2": reident_smp("fig2", dataset_name="adult", knowledge="FK-RI", metric="uniform"),
        "fig3": aif_rsfd("fig3", dataset_name="acs_employment"),
        "fig4": lambda **engine: run_reidentification_rsfd(
            dataset_name="adult", n=n_cls, figure="fig4", **kw_eps, **engine
        ),
        "fig5": lambda **engine: run_utility_rsrfd(
            dataset_name="acs_employment",
            n=n,
            prior_kinds=("correct", "dir"),
            figure="fig5",
            **kw_util_eps,
            **engine,
        ),
        "fig6": aif_rsrfd("fig6", dataset_name="acs_employment", prior_kind="correct"),
        "fig9": reident_smp(
            "fig9", dataset_name="acs_employment", knowledge="FK-RI", metric="uniform"
        ),
        "fig10": reident_smp("fig10", dataset_name="adult", knowledge="PK-RI", metric="uniform"),
        "fig11": reident_smp(
            "fig11", dataset_name="adult", knowledge="FK-RI", metric="non-uniform"
        ),
        "fig12": lambda **engine: run_reidentification_smp(
            dataset_name="adult",
            n=n,
            knowledge="FK-RI",
            metric="uniform",
            pie_betas=betas,
            figure="fig12",
            **engine,
        ),
        "fig13": lambda **engine: run_reidentification_smp(
            dataset_name="adult",
            n=n,
            knowledge="FK-RI",
            metric="non-uniform",
            pie_betas=betas,
            figure="fig13",
            **engine,
        ),
        "fig14": aif_rsfd("fig14", dataset_name="adult"),
        "fig15": aif_rsfd("fig15", dataset_name="nursery"),
        "fig16": lambda **engine: run_utility_rsrfd(
            dataset_name="adult",
            n=n,
            prior_kinds=("correct", "dir", "zipf", "exp"),
            include_analytical=True,
            figure="fig16",
            **engine,
        ),
        "fig17": aif_rsrfd(
            "fig17", dataset_name="acs_employment", prior_kind="dir", models=("NK",)
        ),
    }


def available_experiments() -> tuple[str, ...]:
    """Identifiers accepted by :func:`run_experiment`."""
    return tuple(_experiment_registry(quick=True))


def run_experiment(
    figure: str,
    quick: bool = True,
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    seed: int | None = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Run the experiment behind ``figure`` (e.g. ``"fig2"``) and return rows.

    Parameters
    ----------
    figure:
        Figure identifier; unknown identifiers raise
        :class:`~repro.exceptions.InvalidParameterError` listing the valid
        ones.
    quick:
        Reduced grids (default) versus the paper-scale parameters.
    workers, cache, seed:
        Grid-engine knobs: process-pool size, on-disk cell cache (directory
        or :class:`~repro.experiments.grid.GridCache`) and master seed.
    grid_info:
        Optional dictionary updated in place with the engine's execution
        summary (cell counts, cache hits, per-cell timings).
    """
    registry = _experiment_registry(quick)
    key = figure.strip().lower()
    if key not in registry:
        raise InvalidParameterError(
            f"unknown experiment {figure!r}; valid figures: {', '.join(sorted(registry))}"
        )
    engine_kwargs: dict = {"workers": workers, "cache": cache, "grid_info": grid_info}
    if seed is not None:
        engine_kwargs["seed"] = int(seed)
    return registry[key](**engine_kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the VLDB 2023 LDP-risks paper.",
    )
    parser.add_argument(
        "figure",
        help=f"figure identifier, one of: {', '.join(sorted(available_experiments()))}",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick preset (this is the default)",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="use the paper-scale parameters instead of the quick preset",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="number of worker processes executing grid cells (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk cell-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cell cache",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="persist rows + metadata + timings under DIR/<figure>/",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="master seed for the grid (default: each experiment's default, 42)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    grid_info: dict = {}
    try:
        cache = None if args.no_cache else GridCache(args.cache_dir)
        rows = run_experiment(
            args.figure,
            quick=not args.full,
            workers=args.workers,
            cache=cache,
            seed=args.seed,
            grid_info=grid_info,
        )
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(rows))
    if args.out is not None:
        metadata = {
            "quick": not args.full,
            "seed": args.seed,
            "cache_dir": None if args.no_cache else str(args.cache_dir),
            "grid": grid_info,
        }
        directory = save_artifact(args.out, args.figure.strip().lower(), rows, metadata)
        print(f"artifact written to {directory}", file=sys.stderr)
    return 0
