"""Experiment runner: regenerate any figure of the paper from the command line.

``python -m repro.experiments fig2 --quick`` prints the rows behind Fig. 2.
Every figure of the evaluation (main body Figs. 1-6 and appendix Figs. 9-17)
has an entry; the ``--quick`` flag (the default; the inverse of ``--full``)
scales the workload down so a figure regenerates in seconds-to-minutes,
while the default parameters follow the paper's setup.

Every figure is described by a :class:`FigureSpec` — a *plan* function
expanding it into grid cells and a pure *postprocess* function aggregating
raw cell rows into the figure's final rows.  That split is what makes
execution pluggable: the same plan runs serially, across a process pool
(``--workers``), as one sharded invocation (``--shards N``), or split over
*separate* invocations (``--shards N --shard-index i`` writing per-shard
partial artifacts, then ``--shards N --merge-shards`` reassembling the
canonical figure artifact), or on the lease-based remote executor
(``--remote-workers N`` spawning local workers, ``--remote-listen``
accepting external ones, tuned by ``--lease-timeout`` / ``--max-retries``
with the coordinator's event journal in ``--remote-log``).  All paths
produce byte-identical rows.

Other engine knobs: ``--cache-dir`` / ``--no-cache`` control the on-disk
cell memo, ``--cache-backend {json,sqlite}`` selects its storage layout
(file-per-cell JSON, or one WAL-mode SQLite database that also carries the
shard journal and a run ledger), ``--cache-max-entries`` /
``--cache-max-bytes`` bound its size, ``--seed`` overrides the master seed
and ``--out`` persists rows, metadata and per-cell timings as a figure
artifact.  Figure-less maintenance commands: ``--migrate-cache`` imports an
existing JSON cache directory into the SQLite store, ``--show-runs [N]``
prints the run ledger.

Figure-less service commands: ``--serve HOST:PORT`` runs the live LDP
collection server of :mod:`repro.service` over the attributes given by
repeatable ``--attribute NAME:PROTOCOL:K:EPSILON`` flags, windowed by
``--window``; ``--snapshot URL`` prints the snapshot estimates of a running
service as JSON lines.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..exceptions import GridExecutionError, InvalidParameterError, ShardMergeError
from ..kernels import (
    KERNEL_BACKEND_CHOICES,
    KERNEL_BACKEND_ENV,
    active_backend_name,
    set_backend,
)
from .analytical_acc import plan_analytical_acc, postprocess_analytical_acc
from .attribute_inference_rsfd import (
    plan_attribute_inference_rsfd,
    postprocess_attribute_inference_rsfd,
)
from .attribute_inference_rsrfd import (
    plan_attribute_inference_rsrfd,
    postprocess_attribute_inference_rsrfd,
)
from .config import PIE_BETAS, QUICK
from .grid import (
    CACHE_BACKENDS,
    CellStore,
    Executor,
    GridCell,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadedExecutor,
    execute_plan,
)
from .reident_rsfd import plan_reidentification_rsfd, postprocess_reidentification_rsfd
from .reident_smp import plan_reidentification_smp, postprocess_reidentification_smp
from .remote import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    RemoteExecutor,
    parse_listen,
)
from .reporting import format_table, save_artifact
from .sharding import (
    DEFAULT_GC_MAX_AGE_SECONDS,
    ShardedExecutor,
    find_shard_artifacts,
    gc_shard_workspaces,
    journal_artifacts,
    merge_artifacts,
    plan_fingerprint,
    plan_workspace,
    run_shard,
    validate_shards,
    workspace_store,
)
from .utility_rsrfd import plan_utility_rsrfd, postprocess_utility_rsrfd

#: Default on-disk cell-cache directory used by the CLI.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default root for per-figure shard directories used by the CLI.
DEFAULT_SHARD_ROOT = ".repro-shards"

#: Reduced grids used by the ``--quick`` mode.
_QUICK_EPSILONS = QUICK.epsilons
_QUICK_N = QUICK.n
_QUICK_N_CLASSIFIER = 1200
_QUICK_BETAS = (0.95, 0.8, 0.65, 0.5)


@dataclass(frozen=True)
class FigureSpec:
    """One figure's plan/postprocess pair behind the executor seam.

    Attributes
    ----------
    figure:
        Figure identifier (``"fig2"``, ...).
    plan:
        ``plan(seed)`` expands the figure into grid cells; ``seed=None``
        uses the experiment's default master seed (42).
    postprocess:
        Pure function turning the concatenated raw cell rows into the
        figure's final rows (e.g. averaging over repetitions).  Keeping it
        pure is what lets sharded invocations merge partial artifacts first
        and aggregate once.
    """

    figure: str
    plan: Callable[[int | None], list[GridCell]]
    postprocess: Callable[[list[dict]], list[dict]]


def _figure_specs(quick: bool) -> Mapping[str, FigureSpec]:
    """Build the figure-id → :class:`FigureSpec` mapping for one scale."""
    n = _QUICK_N if quick else None
    n_cls = _QUICK_N_CLASSIFIER if quick else None
    eps = _QUICK_EPSILONS if quick else None
    betas = _QUICK_BETAS if quick else PIE_BETAS
    kw_eps = {"epsilons": eps} if eps else {}

    def seeded(kwargs: dict, seed: int | None) -> dict:
        return kwargs if seed is None else {**kwargs, "seed": int(seed)}

    specs: dict[str, FigureSpec] = {}

    def add(figure: str, planner, postprocess, **kwargs) -> None:
        specs[figure] = FigureSpec(
            figure=figure,
            plan=lambda seed=None: planner(figure=figure, **seeded(kwargs, seed)),
            postprocess=postprocess,
        )

    add("fig1", plan_analytical_acc, postprocess_analytical_acc)
    add(
        "fig2",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="adult",
        n=n,
        knowledge="FK-RI",
        metric="uniform",
        **kw_eps,
    )
    add(
        "fig3",
        plan_attribute_inference_rsfd,
        postprocess_attribute_inference_rsfd,
        dataset_name="acs_employment",
        n=n_cls,
        **kw_eps,
    )
    add(
        "fig4",
        plan_reidentification_rsfd,
        postprocess_reidentification_rsfd,
        dataset_name="adult",
        n=n_cls,
        **kw_eps,
    )
    add(
        "fig5",
        plan_utility_rsrfd,
        postprocess_utility_rsrfd,
        dataset_name="acs_employment",
        n=n,
        prior_kinds=("correct", "dir"),
    )
    add(
        "fig6",
        plan_attribute_inference_rsrfd,
        postprocess_attribute_inference_rsrfd,
        dataset_name="acs_employment",
        n=n_cls,
        prior_kind="correct",
        **kw_eps,
    )
    add(
        "fig9",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="acs_employment",
        n=n,
        knowledge="FK-RI",
        metric="uniform",
        **kw_eps,
    )
    add(
        "fig10",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="adult",
        n=n,
        knowledge="PK-RI",
        metric="uniform",
        **kw_eps,
    )
    add(
        "fig11",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="adult",
        n=n,
        knowledge="FK-RI",
        metric="non-uniform",
        **kw_eps,
    )
    add(
        "fig12",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="adult",
        n=n,
        knowledge="FK-RI",
        metric="uniform",
        pie_betas=betas,
    )
    add(
        "fig13",
        plan_reidentification_smp,
        postprocess_reidentification_smp,
        dataset_name="adult",
        n=n,
        knowledge="FK-RI",
        metric="non-uniform",
        pie_betas=betas,
    )
    add(
        "fig14",
        plan_attribute_inference_rsfd,
        postprocess_attribute_inference_rsfd,
        dataset_name="adult",
        n=n_cls,
        **kw_eps,
    )
    add(
        "fig15",
        plan_attribute_inference_rsfd,
        postprocess_attribute_inference_rsfd,
        dataset_name="nursery",
        n=n_cls,
        **kw_eps,
    )
    add(
        "fig16",
        plan_utility_rsrfd,
        lambda rows: postprocess_utility_rsrfd(rows, include_analytical=True),
        dataset_name="adult",
        n=n,
        prior_kinds=("correct", "dir", "zipf", "exp"),
        include_analytical=True,
    )
    add(
        "fig17",
        plan_attribute_inference_rsrfd,
        postprocess_attribute_inference_rsrfd,
        dataset_name="acs_employment",
        n=n_cls,
        prior_kind="dir",
        models=("NK",),
        **kw_eps,
    )
    return specs


def figure_spec(figure: str, quick: bool = True) -> FigureSpec:
    """Resolve a figure identifier to its :class:`FigureSpec`.

    Unknown identifiers raise
    :class:`~repro.exceptions.InvalidParameterError` listing the valid ones.
    """
    specs = _figure_specs(quick)
    key = figure.strip().lower()
    if key not in specs:
        raise InvalidParameterError(
            f"unknown experiment {figure!r}; valid figures: {', '.join(sorted(specs))}"
        )
    return specs[key]


def available_experiments() -> tuple[str, ...]:
    """Identifiers accepted by :func:`run_experiment`."""
    return tuple(_figure_specs(quick=True))


def run_experiment(
    figure: str,
    quick: bool = True,
    workers: int = 1,
    cache: "CellStore | str | None" = None,
    seed: int | None = None,
    grid_info: dict | None = None,
    executor: "Executor | None" = None,
) -> list[dict]:
    """Run the experiment behind ``figure`` (e.g. ``"fig2"``) and return rows.

    Parameters
    ----------
    figure:
        Figure identifier; unknown identifiers raise
        :class:`~repro.exceptions.InvalidParameterError` listing the valid
        ones.
    quick:
        Reduced grids (default) versus the paper-scale parameters.
    workers, cache, seed:
        Grid-engine knobs: process-pool size, on-disk cell cache (directory
        or :class:`~repro.experiments.grid.CellStore`) and master seed.
    grid_info:
        Optional dictionary updated in place with the engine's execution
        summary (cell counts, cache hits, per-cell timings).
    executor:
        Optional :class:`~repro.experiments.grid.Executor` overriding the
        default serial/pool choice (e.g. a
        :class:`~repro.experiments.sharding.ShardedExecutor`).
    """
    spec = figure_spec(figure, quick)
    return execute_plan(
        spec.plan(seed),
        spec.postprocess,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected at parse time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0, rejected at parse time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float, rejected at parse time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _listen_address(text: str) -> str:
    """argparse type: a HOST:PORT listen address, rejected at parse time."""
    try:
        parse_listen(text)
    except InvalidParameterError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the VLDB 2023 LDP-risks paper.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        default=None,
        help=f"figure identifier, one of: {', '.join(sorted(available_experiments()))} "
        "(omittable only with the maintenance flags --migrate-cache/--show-runs)",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick preset (this is the default)",
    )
    scale.add_argument(
        "--full",
        action="store_true",
        help="use the paper-scale parameters instead of the quick preset",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="number of worker processes executing grid cells (default: 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process", "thread"),
        default=None,
        help="how grid cells run: 'serial' one at a time, 'process' the "
        "multiprocessing pool, 'thread' an in-process thread pool with "
        "--workers N threads (profitable with the numba kernel backend, "
        "whose compiled kernels release the GIL; rows are byte-identical "
        "either way); default: serial for --workers 1, process otherwise",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_CHOICES,
        default=None,
        help="numeric kernels for the hot paths: 'numpy' (pure NumPy, "
        "always available), 'numba' (JIT-compiled; an error if numba is "
        "not installed) or 'auto' (numba when importable, silently NumPy "
        f"otherwise); default: the {KERNEL_BACKEND_ENV} environment "
        "variable, else auto",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk cell-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cell cache",
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        # None is a sentinel for "not given", so the conflict checks can tell
        # an explicit --cache-backend json apart from the default; main()
        # resolves it to "json" after validation
        default=None,
        help="cell-store layout: 'json' keeps one file per cached cell plus "
        "per-shard artifact files (the parity baseline); 'sqlite' keeps "
        "cells, shard journals and the run ledger in WAL-mode databases "
        "(default: json)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=_positive_int,
        default=None,
        metavar="N",
        help="evict oldest cache entries beyond N files (default: unbounded)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=_positive_int,
        default=None,
        metavar="B",
        help="evict oldest cache entries beyond B total bytes (default: unbounded)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="persist rows + metadata + timings under DIR/<figure>/",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="master seed for the grid (default: each experiment's default, 42)",
    )
    sharding = parser.add_argument_group(
        "sharded execution",
        "split a figure's cells into N deterministic shards; run any shard in "
        "its own invocation, then merge the partial artifacts back into the "
        "canonical figure artifact (byte-identical to a single-invocation run)",
    )
    sharding.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="number of shards; alone it runs all shards from this invocation "
        "via the sharded executor",
    )
    sharding.add_argument(
        "--shard-index",
        type=_nonnegative_int,
        default=None,
        metavar="I",
        help="execute only shard I (0-based) and write its partial artifact; "
        "re-invoking resumes, recomputing only the missing cells",
    )
    sharding.add_argument(
        "--merge-shards",
        action="store_true",
        help="merge the partial artifacts of all N shards into the figure's rows",
    )
    sharding.add_argument(
        "--shard-dir",
        default=None,
        metavar="DIR",
        help="directory holding per-shard partial artifacts "
        f"(default: {DEFAULT_SHARD_ROOT}/<figure>)",
    )
    sharding.add_argument(
        "--gc-shards",
        action="store_true",
        help="instead of running the figure, sweep orphaned per-plan "
        "workspaces under the shard directory (interrupted cached runs can "
        "leave them behind) and exit; workspaces whose newest file is "
        "younger than --gc-max-age are never touched",
    )
    sharding.add_argument(
        "--gc-max-age",
        type=float,
        default=DEFAULT_GC_MAX_AGE_SECONDS,
        metavar="SECONDS",
        help="age threshold for --gc-shards "
        f"(default: {DEFAULT_GC_MAX_AGE_SECONDS:.0f}s = 7 days)",
    )
    remote = parser.add_argument_group(
        "remote execution",
        "lease cells to networked workers over HTTP: the coordinator "
        "re-leases any cell whose worker stops heartbeating, idle workers "
        "steal from stragglers, and rows stream back into the cell cache "
        "(byte-identical to a serial run under any failure schedule)",
    )
    remote.add_argument(
        "--remote-listen",
        type=_listen_address,
        default=None,
        metavar="HOST:PORT",
        help="run this figure through the remote executor, listening on "
        "HOST:PORT (port 0 = ephemeral); with --remote-workers 0 the "
        "coordinator only waits for external remote_worker processes",
    )
    remote.add_argument(
        "--remote-workers",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="spawn N local remote_worker subprocesses (implies remote "
        "mode; default listen address is 127.0.0.1:0)",
    )
    remote.add_argument(
        "--lease-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="re-lease a cell whose heartbeat lapses this long "
        f"(default: {DEFAULT_LEASE_TIMEOUT:.0f}s; requires remote mode)",
    )
    remote.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="re-grants per cell before the run is declared failed "
        f"(default: {DEFAULT_MAX_RETRIES}; requires remote mode)",
    )
    remote.add_argument(
        "--remote-log",
        default=None,
        metavar="FILE",
        help="write the coordinator's lease/heartbeat event journal to FILE "
        "as JSON lines (requires remote mode)",
    )
    service = parser.add_argument_group(
        "live collection service",
        "figure-less commands around the repro.service collection server: "
        "ingest LDP report batches for many attributes concurrently with "
        "O(k) state per attribute, windowed estimates and bounded-queue "
        "backpressure (HTTP 429 + Retry-After)",
    )
    service.add_argument(
        "--serve",
        type=_listen_address,
        default=None,
        metavar="HOST:PORT",
        help="run a collection service on HOST:PORT (port 0 = ephemeral) "
        "until interrupted; requires at least one --attribute",
    )
    service.add_argument(
        "--attribute",
        action="append",
        default=None,
        metavar="NAME:PROTOCOL:K:EPSILON",
        help="attribute to collect under --serve, e.g. age:GRR:16:1.0 "
        "(repeatable); with --snapshot, restrict the printed estimates to "
        "these attribute names",
    )
    service.add_argument(
        "--window",
        default=None,
        metavar="SPEC",
        help="window shape for --serve: cumulative (default), "
        "tumbling:SECONDS or sliding:SECONDSxPANES",
    )
    service.add_argument(
        "--queue-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="ingest-queue bound in batches for --serve; a full queue is "
        "backpressure (HTTP 429), never unbounded memory",
    )
    service.add_argument(
        "--snapshot",
        default=None,
        metavar="URL",
        help="print the snapshot estimate of every attribute of the running "
        "collection service at URL as JSON lines, then exit",
    )
    maintenance = parser.add_argument_group(
        "cell-store maintenance",
        "figure-less commands operating on the --cache-dir cell store",
    )
    maintenance.add_argument(
        "--migrate-cache",
        action="store_true",
        help="import the JSON cache entries of --cache-dir into its SQLite "
        "store (cells.sqlite) and exit; existing database entries win, file "
        "modification times become the entries' LRU order",
    )
    maintenance.add_argument(
        "--show-runs",
        type=int,
        nargs="?",
        const=20,
        default=None,
        metavar="N",
        help="print the newest N entries (default 20) of the SQLite store's "
        "run ledger as JSON lines and exit",
    )
    return parser


def _shard_root(args: argparse.Namespace) -> str:
    return args.shard_dir or f"{DEFAULT_SHARD_ROOT}/{args.figure.strip().lower()}"


def _record_run(
    cache: "CellStore | None", kind: str, figure: str | None, summary: dict, started_at: float
) -> None:
    """Append to the SQLite store's run ledger (no-op for other backends)."""
    recorder = getattr(cache, "record_run", None)
    if recorder is not None:
        recorder(
            kind,
            figure=figure,
            summary=summary,
            started_at=started_at,
            finished_at=time.time(),
        )


def _shard_main(args: argparse.Namespace, cache: "CellStore | None") -> int:
    """Handle the ``--shard-index`` / ``--merge-shards`` CLI paths."""
    figure = args.figure.strip().lower()
    spec = figure_spec(figure, quick=not args.full)
    shards = validate_shards(args.shards, args.shard_index)
    cells = spec.plan(args.seed)
    started_at = time.time()
    # per-plan workspace inside the shard root: the same layout
    # ShardedExecutor uses, so quick/full/seed variants never collide
    workspace = plan_workspace(_shard_root(args), cells)

    if args.shard_index is not None:
        result = run_shard(
            cells,
            shards,
            args.shard_index,
            workspace,
            workers=args.workers,
            cache=cache,
            cache_backend=args.cache_backend,
        )
        _record_run(cache, "run_shard", figure, result.summary(), started_at)
        print(json.dumps(result.summary()))
        return 0

    if args.cache_backend == "sqlite":
        store = workspace_store(workspace)
        try:
            artifacts = journal_artifacts(store, plan_fingerprint(cells), shards)
        finally:
            store.close()
    else:
        artifacts = find_shard_artifacts(workspace, shards)
    merged = merge_artifacts(cells, artifacts, expected_shards=shards)
    rows = spec.postprocess(merged.rows)
    _record_run(cache, "merge_shards", figure, merged.summary(), started_at)
    print(format_table(rows))
    _write_figure_artifact(args, figure, rows, merged.summary())
    return 0


def _write_figure_artifact(
    args: argparse.Namespace, figure: str, rows: list[dict], grid_summary: dict
) -> None:
    """Persist a figure artifact when ``--out`` is given (shared CLI tail)."""
    if args.out is None:
        return
    metadata = {
        "quick": not args.full,
        "seed": args.seed,
        "cache_dir": None if args.no_cache else str(args.cache_dir),
        "cache_backend": args.cache_backend,
        "kernel_backend": active_backend_name(),
        "grid": grid_summary,
    }
    directory = save_artifact(args.out, figure, rows, metadata)
    print(f"artifact written to {directory}", file=sys.stderr)


def _service_main(
    args: argparse.Namespace, stop: "Callable[[], None] | None" = None
) -> int:
    """Handle the figure-less ``--serve`` / ``--snapshot`` paths.

    ``stop`` is a test seam: under ``--serve`` it replaces the
    wait-until-interrupted loop (production passes ``None``).
    """
    from ..service.client import CollectionClient, ServiceUnavailableError
    from ..service.server import CollectionService, parse_attribute_spec

    if args.snapshot is not None:
        client = CollectionClient(args.snapshot)
        wanted = None
        if args.attribute:
            # accept bare names or full NAME:PROTOCOL:K:EPSILON specs
            wanted = {spec.split(":", 1)[0] for spec in args.attribute}
        try:
            names = sorted(client.stats()["attributes"])
            for name in names:
                if wanted is not None and name not in wanted:
                    continue
                print(json.dumps(client.estimate(name), sort_keys=True))
        except ServiceUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    try:
        service = CollectionService(
            listen=parse_listen(args.serve),
            window=args.window or "cumulative",
            queue_size=args.queue_size or 256,
        )
        for spec in args.attribute:
            service.registry.register(**parse_attribute_spec(spec))
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with service:
        print(f"collection service listening on {service.url}", flush=True)
        if stop is not None:
            stop()
        else:  # pragma: no cover - interactive serve loop
            import threading

            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr)
    return 0


def _maintenance_main(args: argparse.Namespace) -> int:
    """Handle the figure-less ``--migrate-cache`` / ``--show-runs`` paths."""
    from .cellstore import SQLiteCellStore

    try:
        store = SQLiteCellStore.for_directory(
            args.cache_dir,
            max_entries=args.cache_max_entries,
            max_bytes=args.cache_max_bytes,
        )
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.migrate_cache:
            summary = store.import_json_cache(args.cache_dir)
            print(json.dumps(summary))
        if args.show_runs is not None:
            for entry in store.runs_ledger(limit=args.show_runs):
                print(json.dumps(entry))
    finally:
        store.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.gc_shards and (
        args.shards is not None or args.shard_index is not None or args.merge_shards
    ):
        parser.error(
            "--gc-shards cannot be combined with --shards/--shard-index/--merge-shards"
        )
    if args.no_cache and (
        args.cache_max_entries is not None or args.cache_max_bytes is not None
    ):
        parser.error(
            "--cache-max-entries/--cache-max-bytes bound the on-disk cell "
            "cache and cannot be combined with --no-cache"
        )
    if args.executor == "serial" and args.workers != 1:
        parser.error(
            "--executor serial runs cells one at a time; drop --workers or "
            "pick --executor process/thread"
        )
    # select the process-wide kernel backend up front so every path (figures,
    # service, maintenance) validates REPRO_KERNEL_BACKEND / --kernel-backend
    # the same way, and a numba request without numba fails fast
    try:
        set_backend(args.kernel_backend)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    remote_mode = args.remote_listen is not None or args.remote_workers is not None
    if remote_mode:
        if (
            args.shards is not None
            or args.shard_index is not None
            or args.merge_shards
            or args.gc_shards
        ):
            parser.error(
                "remote execution (--remote-listen/--remote-workers) cannot "
                "be combined with --shards/--shard-index/--merge-shards/--gc-shards"
            )
        if args.workers != 1:
            parser.error(
                "--workers selects the in-process pool and has no effect on "
                "remote execution; use --remote-workers N instead"
            )
        if args.executor is not None:
            parser.error(
                "--executor selects the in-process execution strategy and "
                "has no effect on remote execution"
            )
    elif (
        args.lease_timeout is not None
        or args.max_retries is not None
        or args.remote_log is not None
    ):
        parser.error(
            "--lease-timeout/--max-retries/--remote-log tune remote "
            "execution and require --remote-listen or --remote-workers"
        )
    service_mode = args.serve is not None or args.snapshot is not None
    if service_mode:
        if args.serve is not None and args.snapshot is not None:
            parser.error("--serve and --snapshot are mutually exclusive")
        if (
            args.figure is not None
            or args.shards is not None
            or args.shard_index is not None
            or args.merge_shards
            or args.gc_shards
            or remote_mode
            or args.migrate_cache
            or args.show_runs is not None
            or args.out is not None
            or args.executor is not None
        ):
            parser.error(
                "--serve/--snapshot are figure-less service commands and "
                "cannot be combined with a figure, sharding, remote-execution, "
                "executor or maintenance flags"
            )
        if args.snapshot is not None and (
            args.window is not None or args.queue_size is not None
        ):
            parser.error(
                "--window/--queue-size configure the server and require --serve"
            )
        if args.serve is not None and not args.attribute:
            parser.error(
                "--serve requires at least one --attribute NAME:PROTOCOL:K:EPSILON"
            )
        return _service_main(args)
    if args.window is not None or args.attribute is not None or args.queue_size is not None:
        parser.error(
            "--window/--attribute/--queue-size configure the collection "
            "service and require --serve or --snapshot"
        )
    if args.migrate_cache or args.show_runs is not None:
        if (
            args.figure is not None
            or args.shards is not None
            or args.shard_index is not None
            or args.merge_shards
            or args.gc_shards
            or args.shard_dir is not None
            or remote_mode
            or args.executor is not None
        ):
            parser.error(
                "--migrate-cache/--show-runs are figure-less maintenance "
                "commands and cannot be combined with a figure, sharding, "
                "remote-execution or executor flags"
            )
        if args.out is not None:
            parser.error(
                "--migrate-cache/--show-runs print JSON to stdout and write no "
                "figure artifact; --out requires a figure"
            )
        if args.no_cache:
            parser.error("--migrate-cache/--show-runs require a cache directory")
        if args.cache_backend == "json":
            parser.error(
                "--migrate-cache/--show-runs operate on the SQLite cell store "
                "of --cache-dir and cannot be combined with --cache-backend json"
            )
        return _maintenance_main(args)
    # every remaining path runs a figure; resolve the backend sentinel now
    if args.cache_backend is None:
        args.cache_backend = "json"
    if args.figure is None:
        parser.error("a figure identifier is required")
    if args.gc_shards:
        try:
            summary = gc_shard_workspaces(_shard_root(args), args.gc_max_age)
        except InvalidParameterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(summary))
        return 0
    if (args.shard_index is not None or args.merge_shards) and args.shards is None:
        parser.error("--shard-index/--merge-shards require --shards N")
    if args.shard_index is not None and args.merge_shards:
        parser.error("--shard-index and --merge-shards are mutually exclusive")
    if args.shard_index is not None and args.out is not None:
        parser.error(
            "--out has no effect on a single-shard invocation; "
            "pass it to --merge-shards instead"
        )
    if args.executor is not None and args.shards is not None:
        parser.error(
            "--executor selects the in-process execution strategy; sharded "
            "runs distribute cells through their own shard workers (--workers)"
        )
    grid_info: dict = {}
    cache = None
    started_at = time.time()
    try:
        cache = CellStore.from_options(
            None if args.no_cache else args.cache_dir,
            max_entries=args.cache_max_entries,
            max_bytes=args.cache_max_bytes,
            cache_backend=args.cache_backend,
        )
        if args.shard_index is not None or args.merge_shards:
            return _shard_main(args, cache)
        executor = None
        if remote_mode:
            executor = RemoteExecutor(
                workers=(
                    args.remote_workers if args.remote_workers is not None else 0
                ),
                listen=args.remote_listen or "127.0.0.1:0",
                lease_timeout=(
                    args.lease_timeout
                    if args.lease_timeout is not None
                    else DEFAULT_LEASE_TIMEOUT
                ),
                max_retries=(
                    args.max_retries
                    if args.max_retries is not None
                    else DEFAULT_MAX_RETRIES
                ),
                event_log=args.remote_log,
            )
        elif args.shards is not None:
            # persistent per-figure shard root (the documented default), so
            # an interrupted sharded run resumes instead of starting over;
            # the shared cell cache is handed to the shard workers too
            executor = ShardedExecutor(
                args.shards,
                directory=_shard_root(args),
                workers=args.workers,
                cache_dir=None if args.no_cache else args.cache_dir,
                cache_max_entries=None if args.no_cache else args.cache_max_entries,
                cache_max_bytes=None if args.no_cache else args.cache_max_bytes,
                cache_backend=args.cache_backend,
            )
        elif args.executor is not None:
            if args.executor == "thread":
                executor = ThreadedExecutor(args.workers)
            elif args.executor == "process":
                executor = ProcessPoolExecutor(args.workers)
            else:
                executor = SerialExecutor()
        rows = run_experiment(
            args.figure,
            quick=not args.full,
            workers=args.workers,
            cache=cache,
            seed=args.seed,
            grid_info=grid_info,
            executor=executor,
        )
        _record_run(cache, "run_grid", args.figure.strip().lower(), grid_info, started_at)
    except (InvalidParameterError, GridExecutionError, ShardMergeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if cache is not None and hasattr(cache, "close"):
            cache.close()
    print(format_table(rows))
    _write_figure_artifact(args, args.figure.strip().lower(), rows, grid_info)
    return 0
