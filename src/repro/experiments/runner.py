"""Experiment runner: regenerate any figure of the paper from the command line.

``python -m repro.experiments fig2 --quick`` prints the rows behind Fig. 2.
Every figure of the evaluation (main body Figs. 1-6 and appendix Figs. 9-17)
has an entry; the ``--quick`` flag scales the workload down so a figure
regenerates in seconds-to-minutes, while the default parameters follow the
paper's setup.
"""

from __future__ import annotations

import argparse
from typing import Callable, Mapping, Sequence

from ..exceptions import InvalidParameterError
from .analytical_acc import run_analytical_acc
from .attribute_inference_rsfd import run_attribute_inference_rsfd
from .attribute_inference_rsrfd import run_attribute_inference_rsrfd
from .config import PIE_BETAS, QUICK
from .reident_rsfd import run_reidentification_rsfd
from .reident_smp import run_reidentification_smp
from .reporting import format_table
from .utility_rsrfd import run_utility_rsrfd

#: Reduced grids used by the ``--quick`` mode.
_QUICK_EPSILONS = QUICK.epsilons
_QUICK_N = QUICK.n
_QUICK_N_CLASSIFIER = 1200
_QUICK_BETAS = (0.95, 0.8, 0.65, 0.5)


def _experiment_registry(quick: bool) -> Mapping[str, Callable[[], list[dict]]]:
    """Build the figure-id → runner mapping for the requested scale."""
    n = _QUICK_N if quick else None
    n_cls = _QUICK_N_CLASSIFIER if quick else None
    eps = _QUICK_EPSILONS if quick else None
    betas = _QUICK_BETAS if quick else PIE_BETAS
    kw_eps = {"epsilons": eps} if eps else {}
    kw_util_eps = {}  # the utility grid (ln2..ln7) is already small

    def reident_smp(**overrides):
        return lambda: run_reidentification_smp(n=n, **kw_eps, **overrides)

    def aif_rsfd(**overrides):
        return lambda: run_attribute_inference_rsfd(n=n_cls, **kw_eps, **overrides)

    def aif_rsrfd(**overrides):
        return lambda: run_attribute_inference_rsrfd(n=n_cls, **kw_eps, **overrides)

    return {
        "fig1": lambda: run_analytical_acc(),
        "fig2": reident_smp(dataset_name="adult", knowledge="FK-RI", metric="uniform"),
        "fig3": aif_rsfd(dataset_name="acs_employment"),
        "fig4": lambda: run_reidentification_rsfd(dataset_name="adult", n=n_cls, **kw_eps),
        "fig5": lambda: run_utility_rsrfd(
            dataset_name="acs_employment", n=n, prior_kinds=("correct", "dir"), **kw_util_eps
        ),
        "fig6": aif_rsrfd(dataset_name="acs_employment", prior_kind="correct"),
        "fig9": reident_smp(dataset_name="acs_employment", knowledge="FK-RI", metric="uniform"),
        "fig10": reident_smp(dataset_name="adult", knowledge="PK-RI", metric="uniform"),
        "fig11": reident_smp(dataset_name="adult", knowledge="FK-RI", metric="non-uniform"),
        "fig12": lambda: run_reidentification_smp(
            dataset_name="adult", n=n, knowledge="FK-RI", metric="uniform", pie_betas=betas
        ),
        "fig13": lambda: run_reidentification_smp(
            dataset_name="adult", n=n, knowledge="FK-RI", metric="non-uniform", pie_betas=betas
        ),
        "fig14": aif_rsfd(dataset_name="adult"),
        "fig15": aif_rsfd(dataset_name="nursery"),
        "fig16": lambda: run_utility_rsrfd(
            dataset_name="adult",
            n=n,
            prior_kinds=("correct", "dir", "zipf", "exp"),
            include_analytical=True,
        ),
        "fig17": aif_rsrfd(dataset_name="acs_employment", prior_kind="dir", models=("NK",)),
    }


def available_experiments() -> tuple[str, ...]:
    """Identifiers accepted by :func:`run_experiment`."""
    return tuple(_experiment_registry(quick=True))


def run_experiment(figure: str, quick: bool = True) -> list[dict]:
    """Run the experiment behind ``figure`` (e.g. ``"fig2"``) and return rows."""
    registry = _experiment_registry(quick)
    key = figure.strip().lower()
    if key not in registry:
        raise InvalidParameterError(
            f"unknown experiment {figure!r}; expected one of {sorted(registry)}"
        )
    return registry[key]()


def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the VLDB 2023 LDP-risks paper.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(available_experiments()),
        help="figure identifier, e.g. fig2",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper-scale parameters instead of the quick preset",
    )
    args = parser.parse_args(argv)
    rows = run_experiment(args.figure, quick=not args.full)
    print(format_table(rows))
    return 0
