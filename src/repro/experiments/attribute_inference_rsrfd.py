"""Experiments E6 and E15 — attribute inference against RS+RFD (Figs. 6 and 17).

Same attack models as against RS+FD (NK / PK / HM), but the users now apply
the RS+RFD countermeasure with "Correct" (Fig. 6) or "Incorrect"
(DIR / ZIPF / EXP, Fig. 17) priors.  The paper's finding is that realistic
fake data keeps the attacker's AIF-ACC close to the ``1/d`` baseline.
"""

from __future__ import annotations

from typing import Sequence

from ..attacks.attribute_inference import AttributeInferenceAttack, ClassifierFactory
from ..core.rng import ensure_rng
from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.accuracy import as_percentage
from ..multidim.rsrfd import RSRFD
from ..privacy.priors import make_priors
from .attribute_inference_rsfd import NK_FACTORS, PK_FRACTIONS
from .config import PAPER_EPSILONS
from .reporting import mean_rows

#: RS+RFD protocols evaluated in Figs. 6 and 17.
RSRFD_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-r", "OUE-r")


def _parse_protocol(label: str) -> tuple[str, str]:
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if label in ("SUE-R", "OUE-R"):
        return "ue-r", label.split("-")[0]
    raise InvalidParameterError(
        f"unknown RS+RFD protocol label {label!r}; expected GRR, SUE-r or OUE-r"
    )


def run_attribute_inference_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSRFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    prior_kind: str = "correct",
    prior_epsilon: float = 0.1,
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
) -> list[dict]:
    """Measure the attacker's AIF-ACC against RS+RFD collections.

    ``prior_epsilon`` is the total central-DP budget used to build "correct"
    priors (0.1 in the paper, whose priors are computed on the full 10k-user
    population).  Scaled-down runs with much smaller ``n`` should increase it
    proportionally so the prior quality — not the population size — stays the
    paper's.
    """
    all_rows: list[dict] = []
    for run_index in range(runs):
        rng = ensure_rng(seed + run_index)
        dataset = load_dataset(dataset_name, n=n, rng=seed)
        priors = make_priors(prior_kind, dataset, rng=rng, total_epsilon=prior_epsilon)
        for label in protocols:
            variant, ue_kind = _parse_protocol(label)
            for epsilon in epsilons:
                solution = RSRFD(
                    dataset.domain,
                    float(epsilon),
                    priors=priors,
                    variant=variant,
                    ue_kind=ue_kind,
                    rng=rng,
                )
                reports = solution.collect(dataset)
                estimates = solution.estimate(reports)
                attack = AttributeInferenceAttack(
                    solution, classifier_factory=classifier_factory, rng=rng
                )
                for model in models:
                    model = model.upper()
                    if model == "NK":
                        settings = [{"synthetic_factor": s} for s in nk_factors]
                    elif model == "PK":
                        settings = [{"compromised_fraction": f} for f in pk_fractions]
                    elif model == "HM":
                        settings = [
                            {"synthetic_factor": s, "compromised_fraction": f}
                            for s, f in zip(nk_factors, pk_fractions)
                        ]
                    else:
                        raise InvalidParameterError(f"unknown attack model {model!r}")
                    for setting in settings:
                        if model in ("NK", "HM"):
                            setting = {**setting, "estimates": estimates}
                        result = attack.run(model, reports, **setting)
                        all_rows.append(
                            {
                                "dataset": dataset_name,
                                "protocol": f"RS+RFD[{label}]",
                                "prior": prior_kind,
                                "epsilon": float(epsilon),
                                "model": model,
                                "s": float(setting.get("synthetic_factor", 0.0)),
                                "n_pk": float(setting.get("compromised_fraction", 0.0)),
                                "aif_acc_pct": as_percentage(result.accuracy),
                                "baseline_pct": as_percentage(result.baseline),
                            }
                        )
    group_by = ["dataset", "protocol", "prior", "epsilon", "model", "s", "n_pk"]
    return mean_rows(all_rows, group_by, ["aif_acc_pct", "baseline_pct"])
