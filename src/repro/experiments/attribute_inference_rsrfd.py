"""Experiments E6 and E15 — attribute inference against RS+RFD (Figs. 6 and 17).

Same attack models as against RS+FD (NK / PK / HM), but the users now apply
the RS+RFD countermeasure with "Correct" (Fig. 6) or "Incorrect"
(DIR / ZIPF / EXP, Fig. 17) priors.  The paper's finding is that realistic
fake data keeps the attacker's AIF-ACC close to the ``1/d`` baseline.

Grid decomposition: one cell per (repetition, protocol, epsilon).  The
priors of a repetition are derived from the master seed and the repetition
index alone so all cells of a repetition share them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..attacks.attribute_inference import AttributeInferenceAttack, ClassifierFactory
from ..core.rng import derive_rng
from ..datasets.loaders import load_dataset
from ..exceptions import InvalidParameterError
from ..metrics.accuracy import as_percentage
from ..multidim.rsrfd import RSRFD
from ..privacy.priors import make_priors
from .attribute_inference_rsfd import (
    NK_FACTORS,
    PK_FRACTIONS,
    attack_model_settings,
    classifier_name,
    resolve_classifier_factory,
)
from .config import PAPER_EPSILONS
from .grid import Executor, GridCache, GridCell, cell_runner, execute_plan
from .reporting import mean_rows

#: RS+RFD protocols evaluated in Figs. 6 and 17.
RSRFD_PROTOCOLS: tuple[str, ...] = ("GRR", "SUE-r", "OUE-r")


def _parse_protocol(label: str) -> tuple[str, str]:
    label = label.strip().upper()
    if label == "GRR":
        return "grr", "OUE"
    if label in ("SUE-R", "OUE-R"):
        return "ue-r", label.split("-")[0]
    raise InvalidParameterError(
        f"unknown RS+RFD protocol label {label!r}; expected GRR, SUE-r or OUE-r"
    )


def shared_priors(params: Mapping, dataset, prior_kind: str) -> list[np.ndarray]:
    """Priors shared by every cell of the same repetition."""
    rng = derive_rng(
        int(params["dataset_seed"]), "priors", int(params["run"]), str(prior_kind)
    )
    return make_priors(
        prior_kind, dataset, rng=rng, total_epsilon=float(params["prior_epsilon"])
    )


@cell_runner("attribute_inference_rsrfd")
def _attribute_inference_rsrfd_cell(params: Mapping, rng: np.random.Generator) -> list[dict]:
    """One (repetition, protocol, epsilon) cell of Figs. 6 / 17."""
    dataset = load_dataset(
        params["dataset"], n=params["n"], rng=int(params["dataset_seed"])
    )
    label = params["protocol"]
    variant, ue_kind = _parse_protocol(label)
    epsilon = float(params["epsilon"])
    prior_kind = params["prior_kind"]
    priors = shared_priors(params, dataset, prior_kind)
    solution = RSRFD(
        dataset.domain,
        epsilon,
        priors=priors,
        variant=variant,
        ue_kind=ue_kind,
        rng=rng,
    )
    reports = solution.collect(dataset)
    estimates = solution.estimate(reports)
    attack = AttributeInferenceAttack(
        solution,
        classifier_factory=resolve_classifier_factory(params["classifier"]),
        rng=rng,
    )
    rows: list[dict] = []
    for model in params["models"]:
        model = model.upper()
        for setting in attack_model_settings(
            model, params["nk_factors"], params["pk_fractions"]
        ):
            if model in ("NK", "HM"):
                setting = {**setting, "estimates": estimates}
            result = attack.run(model, reports, **setting)
            rows.append(
                {
                    "dataset": params["dataset"],
                    "protocol": f"RS+RFD[{label}]",
                    "prior": prior_kind,
                    "epsilon": epsilon,
                    "model": model,
                    "s": float(setting.get("synthetic_factor", 0.0)),
                    "n_pk": float(setting.get("compromised_fraction", 0.0)),
                    "aif_acc_pct": as_percentage(result.accuracy),
                    "baseline_pct": as_percentage(result.baseline),
                }
            )
    return rows


def plan_attribute_inference_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSRFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    prior_kind: str = "correct",
    prior_epsilon: float = 0.1,
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
    figure: str = "attribute_inference_rsrfd",
) -> list[GridCell]:
    """Express the RS+RFD attribute-inference grid as independent cells."""
    classifier = classifier_name(classifier_factory)
    cells = []
    for run_index in range(runs):
        for label in protocols:
            _parse_protocol(label)  # fail fast on bad labels
            for epsilon in epsilons:
                cells.append(
                    GridCell(
                        figure=figure,
                        runner="attribute_inference_rsrfd",
                        params={
                            "dataset": dataset_name,
                            "n": n,
                            "dataset_seed": seed,
                            "run": run_index,
                            "protocol": label,
                            "epsilon": float(epsilon),
                            "prior_kind": prior_kind,
                            "prior_epsilon": float(prior_epsilon),
                            "models": [m.upper() for m in models],
                            "nk_factors": [float(s) for s in nk_factors],
                            "pk_fractions": [float(f) for f in pk_fractions],
                            "classifier": classifier,
                        },
                        master_seed=seed,
                    )
                )
    return cells


def postprocess_attribute_inference_rsrfd(rows: list[dict]) -> list[dict]:
    """Average raw cell rows over repetitions (the figure's final rows)."""
    group_by = ["dataset", "protocol", "prior", "epsilon", "model", "s", "n_pk"]
    return mean_rows(rows, group_by, ["aif_acc_pct", "baseline_pct"])


def run_attribute_inference_rsrfd(
    dataset_name: str = "acs_employment",
    n: int | None = None,
    protocols: Sequence[str] = RSRFD_PROTOCOLS,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    models: Sequence[str] = ("NK", "PK", "HM"),
    prior_kind: str = "correct",
    prior_epsilon: float = 0.1,
    nk_factors: Sequence[float] = NK_FACTORS,
    pk_fractions: Sequence[float] = PK_FRACTIONS,
    classifier_factory: ClassifierFactory | None = None,
    runs: int = 1,
    seed: int = 42,
    figure: str = "attribute_inference_rsrfd",
    workers: int = 1,
    cache: "GridCache | str | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict | None = None,
) -> list[dict]:
    """Measure the attacker's AIF-ACC against RS+RFD collections.

    ``prior_epsilon`` is the total central-DP budget used to build "correct"
    priors (0.1 in the paper, whose priors are computed on the full 10k-user
    population).  Scaled-down runs with much smaller ``n`` should increase it
    proportionally so the prior quality — not the population size — stays the
    paper's.
    """
    cells = plan_attribute_inference_rsrfd(
        dataset_name=dataset_name,
        n=n,
        protocols=protocols,
        epsilons=epsilons,
        models=models,
        prior_kind=prior_kind,
        prior_epsilon=prior_epsilon,
        nk_factors=nk_factors,
        pk_fractions=pk_fractions,
        classifier_factory=classifier_factory,
        runs=runs,
        seed=seed,
        figure=figure,
    )
    return execute_plan(
        cells,
        postprocess_attribute_inference_rsrfd,
        workers=workers,
        cache=cache,
        executor=executor,
        grid_info=grid_info,
    )
