"""Fault-tolerant lease-based remote executor (coordinator/worker over HTTP).

:class:`ShardedExecutor` (PR 4) already distributes a grid, but placement is
static round-robin and a hung worker stalls the whole run.  This module adds
the dynamic counterpart behind the same :class:`~repro.experiments.grid.Executor`
seam:

* the **coordinator** (:class:`RemoteExecutor`) owns a :class:`LeaseTable`
  of pending cells and serves it over plain stdlib HTTP
  (``http.server`` / ``http.client`` — zero new dependencies);
* **workers** (``python -m repro.experiments.remote_worker``) register, lease
  one cell at a time, heartbeat while computing, and report rows back;
* a lease whose heartbeat lapses past ``lease_timeout`` is **expired** and the
  cell re-queued with capped-exponential backoff (:mod:`repro.core.retry`), so
  killed, hung, or partitioned workers are recovered by reassignment;
* an idle worker may **steal** the in-flight cell with the stalest heartbeat
  (``steal_after`` seconds after the original grant), so one straggler cannot
  serialize the tail of a run.  First valid completion wins; a duplicate
  completion is byte-compared against the recorded rows (deduped when
  identical, a conflict naming the config hash when not — mirroring
  ``merge_artifacts``'s duplicate semantics at the lease layer).

Completed rows stream back incrementally through ``record`` into the
:class:`~repro.experiments.grid.CellStore` seam, so resume after a coordinator
crash is the same indexed cache query PR 6 already provides.  Because every
cell derives its random stream from the master seed and its own key alone,
the merged artifact is byte-identical to :class:`SerialExecutor` for *any*
worker count and *any* failure schedule.

Fault injection (``REPRO_CHAOS``) makes those failure schedules testable::

    REPRO_CHAOS="kill_after:3"         # die when acquiring the 4th lease
    REPRO_CHAOS="drop_heartbeat:2"     # drop every 2nd heartbeat
    REPRO_CHAOS="delay_completion:1.5" # sleep 1.5s before reporting rows
    REPRO_CHAOS="kill_after:3@0"       # ...but only in worker index 0

Directives combine comma-separated; an ``@N`` suffix scopes a directive to
the worker whose ``REPRO_WORKER_INDEX`` is ``N`` (the coordinator numbers the
workers it spawns), so one chaotic worker can run beside healthy ones.

All :class:`LeaseTable` methods take an explicit ``now`` timestamp: lease
expiry, work stealing, backoff, and duplicate handling are exercised by unit
tests with a hand-advanced clock — no sleeps-and-hope timing tests.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..core.retry import RetryPolicy, retry_call
from ..exceptions import GridExecutionError, InvalidParameterError
from .grid import Executor, GridCell, RecordFn, _execute_payload, canonical_json
from .sharding import _worker_env

#: Environment variable holding the fault-injection directives.
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable carrying a spawned worker's index (for ``@N`` scoping).
WORKER_INDEX_ENV = "REPRO_WORKER_INDEX"

#: Seconds an idle worker is told to wait before re-asking for a lease.
WAIT_DELAY = 0.05

#: Default heartbeat-lapse threshold before a lease is re-granted.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default re-grants per cell before the run is declared failed.
DEFAULT_MAX_RETRIES = 3

#: Default seconds the coordinator waits for workers to exit on their own
#: (after the shutdown ``/lease`` reply) before escalating to SIGTERM.
DEFAULT_SHUTDOWN_GRACE = 2.0


def wait_for_worker_exit(
    procs: "Sequence[tuple[int, subprocess.Popen[bytes], Path]]",
    grace: float = DEFAULT_SHUTDOWN_GRACE,
    poll_interval: float = 0.02,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> bool:
    """Wait up to ``grace`` seconds for every worker process to exit.

    Returns ``True`` when all workers exited within the grace period and
    ``False`` on timeout (the caller then escalates to ``terminate``).  The
    clock and sleep are injectable like :class:`LeaseTable`'s ``now``
    arguments, so the grace-period logic is unit-testable with a
    hand-advanced clock instead of real elapsed time.
    """
    if not float(grace) >= 0:
        raise InvalidParameterError(f"grace must be >= 0, got {grace}")
    if not float(poll_interval) > 0:
        raise InvalidParameterError(
            f"poll_interval must be > 0, got {poll_interval}"
        )
    deadline = clock() + float(grace)
    while any(proc.poll() is None for _, proc, _ in procs):
        if clock() >= deadline:
            return False
        sleep(float(poll_interval))
    return True


# --------------------------------------------------------------------------- #
# fault injection
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosConfig:
    """Parsed fault-injection directives for one worker.

    Attributes
    ----------
    kill_after:
        Die abruptly (no completion, no farewell) when acquiring lease number
        ``kill_after + 1`` — i.e. after completing ``kill_after`` cells.  The
        orphaned lease is exactly what exercises expiry + re-lease.
    drop_heartbeat:
        Drop every ``drop_heartbeat``-th heartbeat instead of sending it.
    delay_completion:
        Sleep this many seconds between computing rows and reporting them —
        a straggler whose cells become steal candidates.
    """

    kill_after: "int | None" = None
    drop_heartbeat: "int | None" = None
    delay_completion: "float | None" = None

    @property
    def active(self) -> bool:
        """Whether any directive is set."""
        return (
            self.kill_after is not None
            or self.drop_heartbeat is not None
            or self.delay_completion is not None
        )

    @classmethod
    def from_env(cls, environ: "Mapping[str, str] | None" = None) -> "ChaosConfig":
        """Parse :data:`CHAOS_ENV` (scoped by :data:`WORKER_INDEX_ENV`)."""
        env = os.environ if environ is None else environ
        index_text = env.get(WORKER_INDEX_ENV, "").strip()
        index = int(index_text) if index_text else None
        return parse_chaos(env.get(CHAOS_ENV), worker_index=index)


def parse_chaos(value: "str | None", worker_index: "int | None" = None) -> ChaosConfig:
    """Parse a ``REPRO_CHAOS`` directive string into a :class:`ChaosConfig`.

    ``value`` is a comma-separated list of ``name:arg`` directives, each
    optionally scoped with ``@N`` to the worker whose index is ``N``
    (directives scoped to a different index are ignored).  Unknown directive
    names or malformed arguments raise :class:`InvalidParameterError` — a
    typo'd chaos schedule must fail loudly, not silently test nothing.
    """
    fields: dict[str, Any] = {}
    if value is None or not value.strip():
        return ChaosConfig()
    for raw in value.split(","):
        directive = raw.strip()
        if not directive:
            continue
        body, _, scope = directive.partition("@")
        if scope:
            try:
                scope_index = int(scope)
            except ValueError as exc:
                raise InvalidParameterError(
                    f"chaos directive {directive!r}: worker index {scope!r} is not an integer"
                ) from exc
            if worker_index is None or scope_index != worker_index:
                continue
        name, sep, arg = body.partition(":")
        name = name.strip()
        if not sep or not arg.strip():
            raise InvalidParameterError(
                f"chaos directive {directive!r} must look like 'name:value'"
            )
        arg = arg.strip()
        try:
            if name == "kill_after":
                fields["kill_after"] = int(arg)
                if fields["kill_after"] < 0:
                    raise InvalidParameterError(
                        f"chaos kill_after must be >= 0, got {arg}"
                    )
            elif name == "drop_heartbeat":
                fields["drop_heartbeat"] = int(arg)
                if fields["drop_heartbeat"] < 1:
                    raise InvalidParameterError(
                        f"chaos drop_heartbeat must be >= 1, got {arg}"
                    )
            elif name == "delay_completion":
                fields["delay_completion"] = float(arg)
                if fields["delay_completion"] < 0:
                    raise InvalidParameterError(
                        f"chaos delay_completion must be >= 0, got {arg}"
                    )
            else:
                raise InvalidParameterError(
                    f"unknown chaos directive {name!r} "
                    "(expected kill_after, drop_heartbeat or delay_completion)"
                )
        except ValueError as exc:
            raise InvalidParameterError(
                f"chaos directive {directive!r}: bad argument {arg!r}"
            ) from exc
    return ChaosConfig(**fields)


# --------------------------------------------------------------------------- #
# the lease table
# --------------------------------------------------------------------------- #
@dataclass
class _Lease:
    lease_id: str
    config_hash: str
    worker_id: str
    granted_at: float
    last_beat: float
    stolen: bool = False


@dataclass
class _CellSlot:
    index: int
    cell: GridCell
    attempts: int = 0
    not_before: float = 0.0
    done: bool = False
    rows_blob: "str | None" = None
    last_error: "str | None" = None


class LeaseTable:
    """Deterministic lease bookkeeping for one grid of cells.

    The table is the coordinator's whole brain: which cells are pending,
    which are leased to whom, which heartbeats are fresh, and which rows came
    back.  Every time-dependent method takes an explicit ``now`` (seconds, any
    monotonic origin), which makes lease expiry, stealing and backoff unit
    testable with a hand-advanced clock.  All methods are thread-safe — the
    HTTP handler threads and the executor's drain loop share one instance.

    Lifecycle of a cell: *queued* → *leased* (possibly to several workers at
    once, via stealing) → *done* on the first valid completion.  A lease whose
    heartbeat is older than ``lease_timeout`` is expired; when a cell loses
    its last lease without completing, it is re-queued ``attempts`` deep into
    ``retry_policy``'s backoff schedule, until ``max_retries`` re-grants are
    exhausted and the cell (and the run) is declared failed.
    """

    def __init__(
        self,
        tasks: Sequence[tuple[int, GridCell]],
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_policy: "RetryPolicy | None" = None,
        steal_after: "float | None" = None,
        max_leases_per_cell: int = 2,
    ) -> None:
        if not float(lease_timeout) > 0:
            raise InvalidParameterError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if int(max_retries) < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if int(max_leases_per_cell) < 1:
            raise InvalidParameterError(
                f"max_leases_per_cell must be >= 1, got {max_leases_per_cell}"
            )
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy(
            max_retries=self.max_retries, base_delay=0.05, max_delay=2.0
        )
        self.steal_after = (
            self.lease_timeout / 2.0 if steal_after is None else float(steal_after)
        )
        self.max_leases_per_cell = int(max_leases_per_cell)

        self._lock = threading.Lock()
        self._slots: dict[str, _CellSlot] = {}
        for index, cell in tasks:
            config_hash = cell.config_hash
            if config_hash in self._slots:
                raise InvalidParameterError(
                    f"duplicate config hash in lease table: {config_hash}"
                )
            self._slots[config_hash] = _CellSlot(index=index, cell=cell)
        self._order = [cell.config_hash for _, cell in tasks]
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, float] = {}
        self._undelivered: list[tuple[int, list[dict[str, Any]], float]] = []
        self._failure: "str | None" = None
        self._next_lease = 0
        self._next_worker = 0
        self.events: list[dict[str, Any]] = []

    # -- events ------------------------------------------------------------ #
    def _event(self, now: float, kind: str, **fields: Any) -> None:
        record: dict[str, Any] = {"t": round(float(now), 6), "event": kind}
        record.update(fields)
        self.events.append(record)

    # -- registration ------------------------------------------------------ #
    def register(self, worker_id: "str | None", now: float) -> str:
        """Register a worker, assigning it an id if it brought none."""
        with self._lock:
            if not worker_id:
                worker_id = f"w{self._next_worker}"
                self._next_worker += 1
            self._workers[worker_id] = float(now)
            self._event(now, "worker_registered", worker=worker_id)
            return worker_id

    # -- leasing ----------------------------------------------------------- #
    def lease(self, worker_id: str, now: float) -> "dict[str, Any] | None":
        """Grant ``worker_id`` a cell to compute, or ``None`` if nothing fits.

        Expired leases are collected first.  A fresh (never-leased or
        re-queued) cell whose backoff has elapsed is preferred, in plan order;
        failing that, the in-flight cell with the stalest heartbeat may be
        stolen — provided its oldest lease is ``steal_after`` old, the cell is
        below ``max_leases_per_cell``, and ``worker_id`` does not already hold
        it.  ``None`` means "nothing for you right now": the worker should
        wait and re-ask (or shut down once :attr:`all_done`).
        """
        now = float(now)
        with self._lock:
            self._expire_locked(now)
            if self._failure is not None:
                return None
            if worker_id in self._workers:
                self._workers[worker_id] = now
            slot = self._pick_queued_locked(now)
            stolen = False
            if slot is None:
                slot = self._pick_steal_locked(worker_id, now)
                stolen = slot is not None
            if slot is None:
                return None
            lease = _Lease(
                lease_id=f"l{self._next_lease}",
                config_hash=slot.cell.config_hash,
                worker_id=worker_id,
                granted_at=now,
                last_beat=now,
                stolen=stolen,
            )
            self._next_lease += 1
            self._leases[lease.lease_id] = lease
            self._event(
                now,
                "lease_stolen" if stolen else "lease_granted",
                lease=lease.lease_id,
                worker=worker_id,
                config_hash=slot.cell.config_hash,
                attempt=slot.attempts,
            )
            return {
                "lease_id": lease.lease_id,
                "config_hash": slot.cell.config_hash,
                "runner": slot.cell.runner,
                "params": dict(slot.cell.params),
                "master_seed": int(slot.cell.master_seed),
                "key": slot.cell.key,
                "heartbeat_interval": self.lease_timeout / 4.0,
            }

    def _active_leases_locked(self, config_hash: str) -> list[_Lease]:
        return [l for l in self._leases.values() if l.config_hash == config_hash]

    def _pick_queued_locked(self, now: float) -> "_CellSlot | None":
        for config_hash in self._order:
            slot = self._slots[config_hash]
            if slot.done or slot.not_before > now:
                continue
            if self._active_leases_locked(config_hash):
                continue
            return slot
        return None

    def _pick_steal_locked(self, worker_id: str, now: float) -> "_CellSlot | None":
        best: "tuple[float, int, _CellSlot] | None" = None
        for config_hash in self._order:
            slot = self._slots[config_hash]
            if slot.done:
                continue
            leases = self._active_leases_locked(config_hash)
            if not leases or len(leases) >= self.max_leases_per_cell:
                continue
            if any(l.worker_id == worker_id for l in leases):
                continue
            oldest_grant = min(l.granted_at for l in leases)
            if now - oldest_grant < self.steal_after:
                continue
            stalest_beat = min(l.last_beat for l in leases)
            candidate = (stalest_beat, slot.index, slot)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return None if best is None else best[2]

    # -- heartbeats and expiry --------------------------------------------- #
    def heartbeat(self, lease_id: str, now: float) -> bool:
        """Refresh a lease; ``False`` means the lease is gone (expired)."""
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.last_beat = float(now)
            self._workers[lease.worker_id] = float(now)
            return True

    def expire(self, now: float) -> list[str]:
        """Expire leases whose heartbeat lapsed; returns the expired ids."""
        with self._lock:
            return self._expire_locked(float(now))

    def _expire_locked(self, now: float) -> list[str]:
        expired = [
            lease
            for lease in self._leases.values()
            if now - lease.last_beat > self.lease_timeout
        ]
        for lease in expired:
            del self._leases[lease.lease_id]
            self._event(
                now,
                "lease_expired",
                lease=lease.lease_id,
                worker=lease.worker_id,
                config_hash=lease.config_hash,
                idle=round(now - lease.last_beat, 6),
            )
            self._requeue_locked(lease.config_hash, now, reason="lease expired")
        return [lease.lease_id for lease in expired]

    def _requeue_locked(self, config_hash: str, now: float, reason: str) -> None:
        slot = self._slots[config_hash]
        if slot.done or self._active_leases_locked(config_hash):
            return
        slot.attempts += 1
        if slot.attempts > self.max_retries:
            slot.not_before = float("inf")  # park: never grantable again
            detail = f"; last error: {slot.last_error}" if slot.last_error else ""
            self._fail_locked(
                now,
                f"cell {config_hash} ({reason}) exhausted its "
                f"{self.max_retries} re-grants after {slot.attempts} "
                f"attempts{detail}",
                config_hash=config_hash,
            )
            return
        # the shared backoff policy is the lease re-grant policy: a cell that
        # keeps killing workers waits longer each time it is re-queued
        delay = self.retry_policy.delay(slot.attempts - 1, key=config_hash)
        slot.not_before = now + delay
        self._event(
            now,
            "cell_requeued",
            config_hash=config_hash,
            attempt=slot.attempts,
            backoff=round(delay, 6),
            reason=reason,
        )

    def _fail_locked(self, now: float, message: str, **fields: Any) -> None:
        if self._failure is None:
            self._failure = message
        self._event(now, "run_failed", message=message, **fields)

    # -- completions ------------------------------------------------------- #
    def complete(
        self,
        config_hash: str,
        rows: "list[dict[str, Any]] | None",
        elapsed: float,
        now: float,
        *,
        lease_id: "str | None" = None,
        worker_id: str = "?",
        error: "str | None" = None,
    ) -> str:
        """Record a completion (or a cell error) for ``config_hash``.

        First valid completion wins — even from an already-expired lease (a
        straggler that finishes late still finished first).  A second
        completion is byte-compared against the recorded rows via canonical
        JSON: identical → ``"duplicate"`` (deduped), different → the run is
        failed with a conflict naming the config hash.  Returns the verdict:
        ``"completed"``, ``"duplicate"``, ``"conflict"``, ``"error"`` or
        ``"unknown"`` (no such cell).
        """
        now = float(now)
        with self._lock:
            slot = self._slots.get(config_hash)
            if lease_id is not None and lease_id in self._leases:
                del self._leases[lease_id]
            if slot is None:
                self._event(
                    now, "unknown_completion", config_hash=config_hash, worker=worker_id
                )
                return "unknown"
            if error is not None:
                slot.last_error = error
                self._event(
                    now,
                    "cell_error",
                    config_hash=config_hash,
                    worker=worker_id,
                    error=error,
                )
                self._requeue_locked(config_hash, now, reason="worker error")
                return "error"
            blob = canonical_json(rows if rows is not None else [])
            if slot.done:
                if blob == slot.rows_blob:
                    self._event(
                        now,
                        "duplicate_completion",
                        config_hash=config_hash,
                        worker=worker_id,
                    )
                    return "duplicate"
                self._fail_locked(
                    now,
                    f"conflicting completions for cell {config_hash}: "
                    f"worker {worker_id} returned rows that differ byte-wise "
                    "from the first recorded completion — identical cell "
                    "configs must produce identical rows",
                    config_hash=config_hash,
                    worker=worker_id,
                )
                return "conflict"
            slot.done = True
            slot.rows_blob = blob
            self._undelivered.append(
                (slot.index, list(rows if rows is not None else []), float(elapsed))
            )
            self._event(
                now,
                "cell_completed",
                config_hash=config_hash,
                worker=worker_id,
                elapsed=round(float(elapsed), 6),
            )
            return "completed"

    def pop_completions(self) -> list[tuple[int, list[dict[str, Any]], float]]:
        """Drain completions not yet handed to the executor's ``record``."""
        with self._lock:
            drained = self._undelivered
            self._undelivered = []
            return drained

    # -- state ------------------------------------------------------------- #
    @property
    def all_done(self) -> bool:
        """Whether every cell has a recorded completion."""
        with self._lock:
            return all(slot.done for slot in self._slots.values())

    @property
    def failure(self) -> "str | None":
        """First fatal condition (conflict / exhausted retries), if any."""
        with self._lock:
            return self._failure

    def counts(self) -> dict[str, int]:
        """Summary counters for ``/status`` and the event log footer."""
        with self._lock:
            done = sum(1 for slot in self._slots.values() if slot.done)
            return {
                "cells": len(self._slots),
                "done": done,
                "leased": len(self._leases),
                "workers": len(self._workers),
                "events": len(self.events),
            }


# --------------------------------------------------------------------------- #
# HTTP layer — coordinator side
# --------------------------------------------------------------------------- #
class _CoordinatorHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP face of the :class:`LeaseTable`."""

    server: "CoordinatorServer"
    protocol_version = "HTTP/1.1"

    # silence the default per-request stderr logging — the lease table's
    # event journal is the authoritative trace
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(self, payload: "Mapping[str, Any]", code: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        table = self.server.table
        if self.path == "/status":
            status = table.counts()
            status["all_done"] = table.all_done
            status["failure"] = table.failure
            self._reply(status)
        else:
            self._reply({"error": f"unknown path {self.path}"}, code=404)

    def do_POST(self) -> None:  # noqa: N802  (http.server API)
        table = self.server.table
        now = self.server.clock()
        try:
            request = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply({"error": f"bad request: {exc}"}, code=400)
            return
        if self.path == "/register":
            worker_id = table.register(request.get("worker_id"), now)
            self._reply(
                {
                    "status": "ok",
                    "worker_id": worker_id,
                    "heartbeat_interval": table.lease_timeout / 4.0,
                }
            )
        elif self.path == "/lease":
            if table.failure is not None or table.all_done:
                self._reply({"status": "shutdown"})
                return
            grant = table.lease(str(request.get("worker_id") or "?"), now)
            if grant is None:
                self._reply({"status": "wait", "delay": WAIT_DELAY})
            else:
                grant["status"] = "granted"
                self._reply(grant)
        elif self.path == "/heartbeat":
            alive = table.heartbeat(str(request.get("lease_id") or ""), now)
            self._reply({"status": "ok" if alive else "gone"})
        elif self.path == "/complete":
            verdict = table.complete(
                str(request.get("config_hash") or ""),
                request.get("rows"),
                float(request.get("elapsed") or 0.0),
                now,
                lease_id=request.get("lease_id"),
                worker_id=str(request.get("worker_id") or "?"),
                error=request.get("error"),
            )
            self._reply({"status": verdict})
        else:
            self._reply({"error": f"unknown path {self.path}"}, code=404)


class CoordinatorServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`LeaseTable`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        table: LeaseTable,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(address, _CoordinatorHandler)
        self.table = table
        self.clock = clock

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound socket."""
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def parse_listen(listen: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` listen address (port 0 = ephemeral)."""
    host, sep, port_text = listen.rpartition(":")
    if not sep or not host:
        raise InvalidParameterError(
            f"listen address must look like HOST:PORT, got {listen!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise InvalidParameterError(
            f"listen address {listen!r}: port {port_text!r} is not an integer"
        ) from exc
    if not 0 <= port <= 65535:
        raise InvalidParameterError(
            f"listen address {listen!r}: port must be in [0, 65535]"
        )
    return host, port


# --------------------------------------------------------------------------- #
# HTTP layer — worker side
# --------------------------------------------------------------------------- #
class CoordinatorClient:
    """Tiny JSON-POST client for the coordinator, with bounded retries.

    Network errors (connection refused during coordinator startup, transient
    resets) retry through the shared :mod:`repro.core.retry` policy; HTTP-level
    errors and malformed replies raise :class:`GridExecutionError` immediately
    — they indicate a protocol bug, not a flaky network.
    """

    def __init__(
        self,
        base_url: str,
        retry_policy: "RetryPolicy | None" = None,
        timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        split = urllib.parse.urlsplit(base_url)
        if split.scheme not in ("http", "") or not split.netloc and not split.path:
            raise InvalidParameterError(f"unsupported coordinator URL: {base_url!r}")
        netloc = split.netloc or split.path
        host, _, port_text = netloc.partition(":")
        self.host = host
        self.port = int(port_text) if port_text else 80
        self.timeout = float(timeout)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(max_retries=5)
        )
        self._sleep = sleep

    def call(self, path: str, payload: "Mapping[str, Any]") -> dict[str, Any]:
        """POST ``payload`` to ``path`` and decode the JSON reply."""

        def attempt() -> dict[str, Any]:
            body = json.dumps(payload).encode("utf-8")
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                conn.request(
                    "POST", path, body, {"Content-Type": "application/json"}
                )
                response = conn.getresponse()
                raw = response.read()
                if response.status >= 400:
                    raise GridExecutionError(
                        f"coordinator rejected {path}: HTTP {response.status} "
                        f"{raw.decode('utf-8', 'replace')[:200]}"
                    )
                reply = json.loads(raw.decode("utf-8"))
            finally:
                conn.close()
            if not isinstance(reply, dict):
                raise GridExecutionError(
                    f"coordinator reply to {path} is not a JSON object"
                )
            return reply

        return retry_call(
            attempt,
            self.retry_policy,
            key=path,
            retry_on=(OSError, http.client.HTTPException),
            sleep=self._sleep,
        )


class _Heartbeat:
    """Background heartbeat for one lease, honouring ``drop_heartbeat``."""

    def __init__(
        self,
        client: CoordinatorClient,
        lease_id: str,
        interval: float,
        chaos: ChaosConfig,
        counter_start: int,
    ) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval = max(float(interval), 1e-3)
        self._chaos = chaos
        self._counter = counter_start
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> int:
        """Stop beating; returns the updated chaos beat counter."""
        self._stop.set()
        self._thread.join()
        return self._counter

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._counter += 1
            drop_every = self._chaos.drop_heartbeat
            if drop_every is not None and self._counter % drop_every == 0:
                continue
            try:
                self._client.call(
                    "/heartbeat", {"lease_id": self._lease_id}
                )
            except (OSError, http.client.HTTPException, GridExecutionError):
                # a missed beat is recoverable by design: the lease either
                # survives on the next beat or expires and is re-granted
                continue


def worker_loop(
    coordinator: str,
    *,
    worker_id: "str | None" = None,
    chaos: "ChaosConfig | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    sleep: Callable[[float], None] = time.sleep,
    client: "CoordinatorClient | None" = None,
) -> dict[str, Any]:
    """Register with the coordinator and compute leased cells until shutdown.

    The protocol loop of one worker — shared by the
    ``python -m repro.experiments.remote_worker`` subprocess entrypoint and by
    in-process worker threads in the tests.  Returns a summary dict with the
    assigned ``worker_id``, cells ``completed``, and whether chaos ``killed``
    the worker (in-process "death" is simply returning without completing the
    acquired lease, which orphans it exactly like a SIGKILL would).
    """
    chaos = chaos if chaos is not None else ChaosConfig()
    client = (
        client
        if client is not None
        else CoordinatorClient(coordinator, retry_policy=retry_policy, sleep=sleep)
    )
    registration = client.call("/register", {"worker_id": worker_id})
    assigned = str(registration["worker_id"])
    completed = 0
    errors = 0
    beat_counter = 0
    disconnected = False
    while True:
        try:
            reply = client.call("/lease", {"worker_id": assigned})
        except (OSError, http.client.HTTPException):
            # the coordinator stayed unreachable through the bounded retry
            # schedule: the run is over (or lost) — either way, exit cleanly
            disconnected = True
            break
        status = reply.get("status")
        if status == "shutdown":
            break
        if status == "wait":
            sleep(float(reply.get("delay") or WAIT_DELAY))
            continue
        if status != "granted":
            raise GridExecutionError(f"unexpected /lease reply: {reply!r}")
        if chaos.kill_after is not None and completed >= chaos.kill_after:
            # die holding the lease: no completion, no farewell — the
            # coordinator only learns of it when the heartbeat lapses
            return {
                "worker_id": assigned,
                "completed": completed,
                "errors": errors,
                "killed": True,
                "disconnected": False,
            }
        heartbeat = _Heartbeat(
            client,
            str(reply["lease_id"]),
            float(reply.get("heartbeat_interval") or 1.0),
            chaos,
            beat_counter,
        )
        heartbeat.start()
        rows: "list[dict[str, Any]] | None" = None
        elapsed = 0.0
        error: "str | None" = None
        try:
            rows, elapsed = _execute_payload(
                (
                    str(reply["runner"]),
                    dict(reply["params"]),
                    int(reply["master_seed"]),
                    str(reply["key"]),
                )
            )
        except Exception as exc:  # noqa: BLE001 — reported to the coordinator
            error = f"{type(exc).__name__}: {exc}"
        finally:
            beat_counter = heartbeat.stop()
        if chaos.delay_completion is not None:
            sleep(chaos.delay_completion)
        try:
            client.call(
                "/complete",
                {
                    "lease_id": reply["lease_id"],
                    "config_hash": reply["config_hash"],
                    "worker_id": assigned,
                    "rows": rows,
                    "elapsed": elapsed,
                    "error": error,
                },
            )
        except (OSError, http.client.HTTPException):
            # rows undeliverable: if the coordinator is merely restarting it
            # will re-lease the cell; recomputation is safe by construction
            disconnected = True
            break
        if error is None:
            completed += 1
        else:
            errors += 1
    return {
        "worker_id": assigned,
        "completed": completed,
        "errors": errors,
        "killed": False,
        "disconnected": disconnected,
    }


# --------------------------------------------------------------------------- #
# the remote executor
# --------------------------------------------------------------------------- #
class RemoteExecutor(Executor):
    """Coordinator side of the lease-based remote executor.

    ``execute`` starts an HTTP coordinator around a :class:`LeaseTable`,
    optionally spawns ``workers`` local ``remote_worker`` subprocesses (each
    numbered through :data:`WORKER_INDEX_ENV` so ``REPRO_CHAOS`` directives
    can target one of them), then drains completions into ``record`` until
    every cell is done — re-leasing expired cells and letting idle workers
    steal from stragglers along the way.  With ``workers=0`` the coordinator
    only listens: point external ``python -m repro.experiments.remote_worker
    --coordinator URL`` processes (other machines, a cluster scheduler) at
    :attr:`address`.

    The executor never trusts worker scheduling for correctness: rows are
    recorded exactly once per cell in first-completion-wins order, and cell
    seeds depend only on the cell key, so the assembled artifact is
    byte-identical to :class:`SerialExecutor` under any failure schedule.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        listen: str = "127.0.0.1:0",
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        steal_after: "float | None" = None,
        poll_interval: float = 0.02,
        python: "str | None" = None,
        event_log: "str | Path | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        shutdown_grace: float = DEFAULT_SHUTDOWN_GRACE,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if int(workers) < 0:
            raise InvalidParameterError(f"workers must be >= 0, got {workers}")
        if not float(lease_timeout) > 0:
            raise InvalidParameterError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if int(max_retries) < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if not float(poll_interval) > 0:
            raise InvalidParameterError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if not float(shutdown_grace) >= 0:
            raise InvalidParameterError(
                f"shutdown_grace must be >= 0, got {shutdown_grace}"
            )
        self.workers = int(workers)
        self.listen = parse_listen(listen)
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        self.steal_after = steal_after
        self.poll_interval = float(poll_interval)
        self.python = python or sys.executable
        self.event_log = None if event_log is None else Path(event_log)
        self.retry_policy = retry_policy
        self.shutdown_grace = float(shutdown_grace)
        self._clock = clock
        self._sleep = sleep
        #: ``http://host:port`` once the coordinator is listening.
        self.address: "str | None" = None
        #: Set as soon as :attr:`address` is valid — in-process worker
        #: threads (tests, same-host tools) wait on this instead of polling.
        self.ready = threading.Event()

    @property
    def total_workers(self) -> int:
        """Local worker count reported in run summaries (0 = external only)."""
        return self.workers

    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        tasks = list(tasks)
        if not tasks:
            return
        table = LeaseTable(
            tasks,
            lease_timeout=self.lease_timeout,
            max_retries=self.max_retries,
            retry_policy=self.retry_policy,
            steal_after=self.steal_after,
        )
        server = CoordinatorServer(self.listen, table, clock=self._clock)
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        self.address = server.url
        self.ready.set()
        procs: list[tuple[int, "subprocess.Popen[bytes]", Path]] = []
        stderr_dir = tempfile.TemporaryDirectory(prefix="repro-remote-")
        try:
            for index in range(self.workers):
                env = _worker_env()
                env[WORKER_INDEX_ENV] = str(index)
                stderr_path = Path(stderr_dir.name) / f"worker-{index}.stderr"
                stdout_path = Path(stderr_dir.name) / f"worker-{index}.stdout"
                # capture both streams: the parent's stdout carries the
                # figure table, which must stay byte-identical to a serial
                # run — worker summaries must not leak into it
                with open(stderr_path, "wb") as stderr_handle, open(
                    stdout_path, "wb"
                ) as stdout_handle:
                    proc = subprocess.Popen(
                        [
                            self.python,
                            "-m",
                            "repro.experiments.remote_worker",
                            "--coordinator",
                            server.url,
                        ],
                        env=env,
                        stdout=stdout_handle,
                        stderr=stderr_handle,
                    )
                procs.append((index, proc, stderr_path))
                table._event(self._clock(), "worker_spawned", index=index, pid=proc.pid)
            self._drain(table, record, procs)
        finally:
            self.ready.clear()
            self.address = None
            # grace period: let workers see the shutdown /lease reply and
            # exit on their own before the server (and then SIGTERM) goes
            wait_for_worker_exit(
                procs,
                grace=self.shutdown_grace,
                poll_interval=self.poll_interval,
                clock=self._clock,
                sleep=self._sleep,
            )
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=5.0)
            for _, proc, _ in procs:
                if proc.poll() is None:
                    proc.terminate()
            for _, proc, _ in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            self._write_event_log(table)
            stderr_dir.cleanup()

    def _drain(
        self,
        table: LeaseTable,
        record: RecordFn,
        procs: "list[tuple[int, subprocess.Popen[bytes], Path]]",
    ) -> None:
        while True:
            for index, rows, elapsed in table.pop_completions():
                record(index, rows, elapsed, "computed")
            failure = table.failure
            if failure is not None:
                raise GridExecutionError(failure)
            if table.all_done:
                # catch completions enqueued between the drain and the check
                for index, rows, elapsed in table.pop_completions():
                    record(index, rows, elapsed, "computed")
                return
            table.expire(self._clock())
            if self.workers > 0 and procs:
                alive = [p for _, p, _ in procs if p.poll() is None]
                if not alive and not table.all_done:
                    # every local worker is gone with work remaining (and no
                    # external workers were invited): surface their stderr
                    tails = []
                    for index, proc, stderr_path in procs:
                        tail = ""
                        if stderr_path.exists():
                            lines = (
                                stderr_path.read_text(errors="replace")
                                .strip()
                                .splitlines()
                            )
                            tail = " | ".join(lines[-3:])
                        tails.append(
                            f"worker {index} (pid {proc.pid}) "
                            f"exit {proc.returncode}: {tail or 'no stderr'}"
                        )
                    raise GridExecutionError(
                        "all remote workers exited with cells remaining: "
                        + "; ".join(tails)
                    )
            time.sleep(self.poll_interval)

    def _write_event_log(self, table: LeaseTable) -> None:
        if self.event_log is None:
            return
        self.event_log.parent.mkdir(parents=True, exist_ok=True)
        with open(self.event_log, "w", encoding="utf-8") as handle:
            for event in table.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.write(
                json.dumps({"event": "summary", **table.counts()}, sort_keys=True)
                + "\n"
            )
