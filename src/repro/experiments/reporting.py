"""Plain-text reporting helpers for the experiment harness.

Every experiment runner returns a list of flat dictionaries ("rows"); these
helpers render them as aligned text tables (the library's replacement for
the paper's matplotlib figures) and pivot them into the series the figures
plot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..exceptions import InvalidParameterError

Row = Mapping[str, object]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Row], columns: Sequence[str] | None = None) -> str:
    """Render ``rows`` as an aligned, pipe-separated text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = [
        " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(header))) for line in body
    )
    return "\n".join(lines)


def pivot_series(
    rows: Sequence[Row],
    x: str,
    y: str,
    series: Sequence[str],
) -> dict[tuple, list[tuple[object, object]]]:
    """Group rows into (series-key → sorted [(x, y), ...]) mappings.

    This mirrors how the paper's figures are organized: one line per
    combination of the ``series`` columns, the ``x`` column on the abscissa
    and the ``y`` column on the ordinate.
    """
    rows = list(rows)
    if not rows:
        return {}
    for column in (x, y, *series):
        if column not in rows[0]:
            raise InvalidParameterError(f"column {column!r} missing from rows")
    grouped: dict[tuple, list[tuple[object, object]]] = {}
    for row in rows:
        key = tuple(row[c] for c in series)
        grouped.setdefault(key, []).append((row[x], row[y]))
    for key in grouped:
        grouped[key].sort(key=lambda pair: pair[0])
    return grouped


def mean_rows(rows: Iterable[Row], group_by: Sequence[str], value_columns: Sequence[str]) -> list[dict]:
    """Average ``value_columns`` over repetitions sharing the same ``group_by`` key."""
    accumulator: dict[tuple, dict] = {}
    counts: dict[tuple, int] = {}
    for row in rows:
        key = tuple(row[c] for c in group_by)
        if key not in accumulator:
            accumulator[key] = {c: row[c] for c in group_by}
            accumulator[key].update({c: 0.0 for c in value_columns})
            counts[key] = 0
        for column in value_columns:
            accumulator[key][column] += float(row[column])
        counts[key] += 1
    averaged = []
    for key, record in accumulator.items():
        for column in value_columns:
            record[column] /= counts[key]
        averaged.append(record)
    return averaged


def save_artifact(
    out_dir: "str | Path",
    figure: str,
    rows: Sequence[Row],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Persist one figure's rows plus execution metadata to ``out_dir``.

    Layout: ``<out_dir>/<figure>/rows.json`` (the figure's rows),
    ``meta.json`` (run configuration, timings and cache statistics) and
    ``table.txt`` (the rendered text table).  Returns the figure directory.
    """
    figure = figure.strip()
    if not figure:
        raise InvalidParameterError("figure must be a non-empty identifier")
    directory = Path(out_dir) / figure
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "rows.json", "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=1)
    meta = {
        "figure": figure,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n_rows": len(rows),
        **(dict(metadata) if metadata else {}),
    }
    with open(directory / "meta.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1)
    with open(directory / "table.txt", "w", encoding="utf-8") as handle:
        handle.write(format_table(rows) + "\n")
    return directory
