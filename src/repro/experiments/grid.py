"""Declarative parallel experiment-grid engine.

The paper's evaluation is a large grid of (dataset × solution × frequency
oracle × ε × seed) combinations.  Instead of hand-rolled nested loops, every
figure is expressed as a list of independent :class:`GridCell`\\ s and handed
to :func:`run_grid`, which

* fans the cells out across a pluggable :class:`Executor`
  (:class:`SerialExecutor`, :class:`ProcessPoolExecutor`, or the
  subprocess-launchable :class:`repro.experiments.sharding.ShardedExecutor`;
  ``workers > 1`` selects the process pool),
* derives every cell's random stream deterministically from a single master
  seed and the cell's configuration (see
  :func:`repro.core.rng.derive_rng`), so results are bit-identical for any
  worker count and scheduling order,
* memoizes completed cells in an on-disk JSON cache keyed by a content hash
  of the cell configuration (:class:`GridCache`), so re-running a figure —
  or another figure sharing cells — skips completed work, and
* deduplicates identical cells within a single run even without a cache.

Cell *runners* are plain top-level functions registered by name with the
:func:`cell_runner` decorator; they receive the cell's parameter mapping and
a derived :class:`numpy.random.Generator` and return a list of flat row
dictionaries.  Registration by name keeps cells picklable (worker processes
resolve the runner from the registry) and cache keys stable.
"""

from __future__ import annotations

import abc
import concurrent.futures
import hashlib
import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.rng import derive_rng
from ..exceptions import GridExecutionError, InvalidParameterError

#: Bumped whenever cell semantics change in a way that invalidates old
#: cached rows; part of every cache key.  2: the level-wise GBDT rewrite
#: changed the default attack classifier's predictions, so rows cached by
#: schema 1 must not be mixed into regenerated figures.
GRID_SCHEMA_VERSION = 2

#: A cell runner maps ``(params, rng) -> rows``.
CellRunner = Callable[[Mapping[str, Any], np.random.Generator], "list[dict[str, Any]]"]

_CELL_RUNNERS: dict[str, CellRunner] = {}


def cell_runner(name: str) -> Callable[[CellRunner], CellRunner]:
    """Register a top-level function as the grid runner called ``name``."""

    def register(fn: CellRunner) -> CellRunner:
        _CELL_RUNNERS[name] = fn
        return fn

    return register


def get_cell_runner(name: str) -> CellRunner:
    """Resolve a registered cell runner by name.

    Importing :mod:`repro.experiments` registers the runners of all seven
    experiment modules; worker processes started with the ``spawn`` method
    go through this import on their first cell.
    """
    if name not in _CELL_RUNNERS:
        import repro.experiments  # noqa: F401  (registers the built-in runners)
    if name not in _CELL_RUNNERS:
        raise InvalidParameterError(
            f"unknown cell runner {name!r}; registered runners: {sorted(_CELL_RUNNERS)}"
        )
    return _CELL_RUNNERS[name]


def registered_cell_runners() -> tuple[str, ...]:
    """Names of all currently registered cell runners."""
    return tuple(sorted(_CELL_RUNNERS))


# --------------------------------------------------------------------------- #
# canonical serialization
# --------------------------------------------------------------------------- #
def _jsonable(value: Any) -> Any:
    """Convert ``value`` to plain JSON types, canonicalizing containers."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, Path):
        return str(value)
    raise InvalidParameterError(
        f"grid cell parameters must be JSON-serializable, got {type(value)!r}"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory, so a fresh rename survives power loss.

    Platforms that cannot open directories for fsync (e.g. Windows) simply
    skip this step — it strengthens durability, never correctness.
    """
    fd = None
    try:
        fd = os.open(directory, os.O_RDONLY)
        os.fsync(fd)
    except OSError:
        pass
    finally:
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass


def _write_json_atomic(path: Path, payload: Any, indent: int | None = 1) -> Path:
    """Write ``payload`` as JSON via a temp file + fsync + ``os.replace``.

    Crash-atomic: readers never observe a torn file, and the temp file is
    fsynced *before* the rename (plus a best-effort fsync of the directory
    after it) so a power loss cannot surface an empty or torn renamed file.
    The shared implementation behind cache entries, plan files and shard
    artifacts.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, indent=indent)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


# --------------------------------------------------------------------------- #
# cells
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridCell:
    """One independent unit of work of an experiment grid.

    Attributes
    ----------
    figure:
        Figure the cell contributes to (label only — two figures sharing an
        identical cell configuration also share its cache entry).
    runner:
        Name of the registered cell runner executing the cell.
    params:
        JSON-serializable parameter mapping handed to the runner.
    master_seed:
        Master seed of the grid; the cell's generator is derived from it and
        the cell key, independently of scheduling.
    """

    figure: str
    runner: str
    params: Mapping[str, Any] = field(default_factory=dict)
    master_seed: int = 42

    @property
    def key(self) -> str:
        """Canonical cell key: runner plus canonical parameter JSON."""
        return f"{self.runner}:{canonical_json(self.params)}"

    @property
    def config_hash(self) -> str:
        """Content hash identifying the cell's work (cache key).

        Deliberately excludes ``figure`` so identical work shared by several
        figures is computed (and cached) once.
        """
        payload = canonical_json(
            {
                "schema": GRID_SCHEMA_VERSION,
                "runner": self.runner,
                "params": self.params,
                "master_seed": self.master_seed,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def make_rng(self) -> np.random.Generator:
        """The cell's deterministic random stream."""
        return derive_rng(self.master_seed, "grid-cell", self.key)

    def payload(self) -> dict[str, Any]:
        """JSON-serializable description of the cell (plan files, workers)."""
        return {
            "figure": self.figure,
            "runner": self.runner,
            "params": _jsonable(self.params),
            "master_seed": int(self.master_seed),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "GridCell":
        """Reconstruct a cell from :meth:`payload` output (e.g. a plan file)."""
        try:
            return cls(
                figure=str(payload["figure"]),
                runner=str(payload["runner"]),
                params=dict(payload["params"]),
                master_seed=int(payload["master_seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(f"malformed grid-cell payload: {exc}") from exc


# --------------------------------------------------------------------------- #
# cell-store seam and the JSON cache
# --------------------------------------------------------------------------- #
#: Valid values of the ``cache_backend`` option threaded through
#: :meth:`CellStore.from_options`, ``run_shard``, ``ShardedExecutor`` and the
#: CLIs.  ``json`` is the file-per-cell parity baseline; ``sqlite`` is the
#: WAL-mode single-database store of :mod:`repro.experiments.cellstore`.
CACHE_BACKENDS = ("json", "sqlite")


def validate_cache_backend(cache_backend: str) -> str:
    """Validate a ``cache_backend`` option value."""
    if cache_backend not in CACHE_BACKENDS:
        raise InvalidParameterError(
            f"cache_backend must be one of {CACHE_BACKENDS}, got {cache_backend!r}"
        )
    return cache_backend


class CellStore(abc.ABC):
    """Storage seam behind the grid engine's completed-cell memo.

    :func:`run_grid` (and everything above it) only relies on this
    interface, so the persistence layer is pluggable: :class:`GridCache`
    keeps one JSON file per cell (the parity baseline), while
    :class:`repro.experiments.cellstore.SQLiteCellStore` keeps every entry —
    plus shard completion journals and a run ledger — in one WAL-mode SQLite
    database.  Implementations must degrade I/O failures to a once-warned
    cache miss rather than aborting a grid run.
    """

    #: Backend tag (``"json"`` / ``"sqlite"``), used to decide whether a
    #: parent cache and a sharded executor's worker caches share storage.
    backend: str = "json"
    #: Directory the store lives in (shared-storage identity checks).
    directory: Path
    max_entries: int | None = None
    max_bytes: int | None = None

    @abc.abstractmethod
    def get(self, cell: "GridCell") -> "list[dict[str, Any]] | None":
        """Cached rows of ``cell``, or ``None`` on a miss."""

    @abc.abstractmethod
    def put(
        self, cell: "GridCell", rows: Sequence[Mapping[str, Any]], elapsed: float
    ) -> "Path | None":
        """Persist the rows of a freshly computed cell (``None`` on failure)."""

    @abc.abstractmethod
    def stats(self) -> dict[str, Any]:
        """Current occupancy and configured bounds."""

    def _enforce_bounds(self, protect: Any = None) -> None:
        """Re-check the size bounds after out-of-band writes (no-op default)."""

    @classmethod
    def from_options(
        cls,
        directory: "str | Path | None",
        max_entries: int | None = None,
        max_bytes: int | None = None,
        cache_backend: str = "json",
    ) -> "CellStore | None":
        """Build a cell store from optional CLI-style options (``None`` → no cache).

        The one place the ``(directory, max_entries, max_bytes,
        cache_backend)`` wiring lives; the runner, the shard worker and the
        sharded executor all construct their caches through it so a future
        option cannot silently diverge between the parent and its workers.
        ``cache_backend="sqlite"`` stores the cells in
        ``<directory>/cells.sqlite`` instead of one JSON file per cell.
        """
        validate_cache_backend(cache_backend)
        if directory is None:
            return None
        if cache_backend == "sqlite":
            from .cellstore import SQLiteCellStore  # late: avoids a cycle

            return SQLiteCellStore.for_directory(
                directory, max_entries=max_entries, max_bytes=max_bytes
            )
        return GridCache(directory, max_entries=max_entries, max_bytes=max_bytes)


class GridCache(CellStore):
    """On-disk JSON memo of completed grid cells.

    Layout: one ``<config-hash>.json`` file per cell under ``directory``,
    holding the cell description, its rows and the compute time.  Writes are
    atomic (temp file + fsync + ``os.replace``) so concurrent runs never
    observe a torn entry, even across a power loss.

    I/O failures beyond a plain miss — a read-only cache directory, a
    ``PermissionError``, an entry that is actually a directory (``EISDIR``),
    any other ``OSError`` — never abort a grid run: :meth:`get` degrades to a
    cache miss and :meth:`put` skips persisting, each emitting a single
    :class:`RuntimeWarning` per cache instance so a misconfigured cache is
    visible without killing hours of computed cells mid-flight.

    Size bounds: ``max_entries`` / ``max_bytes`` cap the number of entry
    files and their cumulative size.  Bounds are enforced after every
    :meth:`put` by evicting the least-recently-*used* entries first —
    :meth:`get` refreshes the entry's modification time on every hit, so a
    hot entry survives eviction while a stale one goes (true LRU, not
    FIFO-by-write-time); the entry just written is never evicted, so a
    single oversized cell still round-trips within its own run.  An
    unbounded cache (both limits ``None``) behaves exactly as before.
    """

    backend = "json"

    def __init__(
        self,
        directory: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        if max_entries is not None and int(max_entries) < 1:
            raise InvalidParameterError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and int(max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._evicted = 0
        self._warned: set[tuple[str, int | None]] = set()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise InvalidParameterError(
                f"cache directory {self.directory} is not usable: {exc}"
            ) from exc
        # running occupancy estimate so bounded puts stay O(1) while under
        # the limits; the authoritative directory scan only happens when a
        # put appears to cross a bound (and at construction, here)
        self._count_estimate = 0
        self._bytes_estimate = 0
        if self.max_entries is not None or self.max_bytes is not None:
            for _, size, _ in self._entry_files():
                self._count_estimate += 1
                self._bytes_estimate += size

    def _warn_io(self, action: str, path: Path, exc: OSError) -> None:
        """Warn once per ``(action, errno)`` category that cache I/O is failing.

        Keying on the failure category (rather than a single boolean) means a
        read permission error does not suppress the later report of, say, a
        write hitting a full disk — each distinct failure mode surfaces
        exactly once per cache instance.
        """
        category = (action, getattr(exc, "errno", None))
        if category in self._warned:
            return
        self._warned.add(category)
        warnings.warn(
            f"grid cache {action} failed for {path} ({exc}); "
            "continuing without the cache (cells are recomputed, not persisted)",
            RuntimeWarning,
            stacklevel=3,
        )

    def path_for(self, cell: GridCell) -> Path:
        """Cache file path of ``cell``."""
        return self.directory / f"{cell.config_hash}.json"

    def get(self, cell: GridCell) -> list[dict[str, Any]] | None:
        """Cached rows of ``cell``, or ``None`` on a miss.

        Unreadable entries (corrupt JSON, permission errors, a directory in
        place of the file, ...) are treated as misses.
        """
        path = self.path_for(cell)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._warn_io("read", path, exc)
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        # guard against (astronomically unlikely) hash collisions and
        # hand-edited entries
        if entry.get("key") != cell.key or entry.get("master_seed") != cell.master_seed:
            return None
        rows = entry.get("rows")
        if not isinstance(rows, list):
            return None
        try:
            # LRU: a hit refreshes the entry's eviction clock, so a bounded
            # cache evicts stale entries before hot ones
            os.utime(path)
        except OSError:
            pass
        return rows

    def put(
        self, cell: GridCell, rows: Sequence[Mapping[str, Any]], elapsed: float
    ) -> Path | None:
        """Persist the rows of a freshly computed cell.

        Returns the entry path, or ``None`` when the cache directory is not
        writable (the run continues uncached).
        """
        path = self.path_for(cell)
        bounded = self.max_entries is not None or self.max_bytes is not None
        existed = bounded and path.exists()
        old_size = 0
        if existed:
            try:
                old_size = path.stat().st_size
            except OSError:
                existed = False  # vanished mid-put: account as a fresh entry
        entry = {
            "schema": GRID_SCHEMA_VERSION,
            "runner": cell.runner,
            "key": cell.key,
            "params": _jsonable(cell.params),
            "master_seed": cell.master_seed,
            "elapsed": float(elapsed),
            "rows": [_jsonable(row) for row in rows],
        }
        try:
            _write_json_atomic(path, entry, indent=None)
        except OSError as exc:
            self._warn_io("write", path, exc)
            return None
        if bounded:
            try:
                self._count_estimate += 0 if existed else 1
                self._bytes_estimate += path.stat().st_size - old_size
            except OSError:
                # the fresh entry's size is unknowable, so neither running
                # estimate can be kept honest — run the authoritative rescan
                # now (it re-seeds both) instead of letting the byte estimate
                # silently drift below reality
                self._enforce_bounds(protect=path)
                return path
            over_entries = (
                self.max_entries is not None and self._count_estimate > self.max_entries
            )
            over_bytes = (
                self.max_bytes is not None and self._bytes_estimate > self.max_bytes
            )
            if over_entries or over_bytes:
                self._enforce_bounds(protect=path)
        return path

    def _entry_files(self) -> list[tuple[float, int, Path]]:
        """``(mtime, size, path)`` of every entry file (unreadable ones skipped).

        An unreadable *directory* degrades to an empty listing with the usual
        once-per-instance warning — :meth:`stats` and eviction must never
        raise where :meth:`get`/:meth:`put` would have warned.
        """
        entries: list[tuple[float, int, Path]] = []
        try:
            for path in self.directory.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        except OSError as exc:
            self._warn_io("directory scan", self.directory, exc)
        return entries

    def _enforce_bounds(self, protect: Path | None = None) -> None:
        """Evict least-recently-used entries until the configured bounds hold.

        "Used" is the file modification time, which :meth:`get` refreshes on
        every hit.  Runs the authoritative directory scan and re-seeds the
        running occupancy estimate used by :meth:`put`.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        try:
            entries = self._entry_files()
        except OSError as exc:  # pragma: no cover - glob itself failing
            self._warn_io("eviction scan", self.directory, exc)
            return
        entries.sort(key=lambda item: item[0])  # oldest first
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        try:
            for _, size, path in entries:
                over_entries = self.max_entries is not None and count > self.max_entries
                over_bytes = self.max_bytes is not None and total > self.max_bytes
                if not (over_entries or over_bytes):
                    break
                if protect is not None and path == protect:
                    continue
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
                except OSError as exc:
                    self._warn_io("eviction", path, exc)
                    return
                self._evicted += 1
                count -= 1
                total -= size
        finally:
            self._count_estimate = count
            self._bytes_estimate = total

    def stats(self) -> dict[str, Any]:
        """Current cache occupancy and configured bounds."""
        entries = self._entry_files()
        return {
            "backend": self.backend,
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": int(sum(size for _, size, _ in entries)),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "evicted": self._evicted,
        }

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError as exc:
            self._warn_io("directory scan", self.directory, exc)
            return 0


def ensure_cache(cache: "CellStore | str | Path | None") -> "CellStore | None":
    """Normalize a cache argument (cell store, directory path or ``None``)."""
    if cache is None or isinstance(cache, CellStore):
        return cache
    if isinstance(cache, (str, Path)):
        return GridCache(cache)
    raise InvalidParameterError(
        f"cache must be a CellStore, a directory path or None, got {type(cache)!r}"
    )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
@dataclass
class CellOutcome:
    """Execution record of one grid cell."""

    cell: GridCell
    rows: list[dict[str, Any]]
    elapsed: float
    source: str  # "computed" | "cache" | "dedup" | "resumed"

    @property
    def cached(self) -> bool:
        """Whether the cell was served from the on-disk cache."""
        return self.source == "cache"


@dataclass
class GridResult:
    """Rows plus execution metadata of one :func:`run_grid` call."""

    rows: list[dict[str, Any]]
    outcomes: list[CellOutcome]
    elapsed: float
    workers: int
    executor: str = "SerialExecutor"

    @property
    def n_cells(self) -> int:
        return len(self.outcomes)

    @property
    def from_cache(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.source == "cache")

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.source == "computed")

    @property
    def deduplicated(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.source == "dedup")

    @property
    def resumed(self) -> int:
        """Cells restored from a prior interrupted run's partial artifacts."""
        return sum(1 for outcome in self.outcomes if outcome.source == "resumed")

    def summary(self) -> dict[str, Any]:
        """JSON-serializable execution summary (for figure artifacts)."""
        return {
            "cells": self.n_cells,
            "computed": self.computed,
            "from_cache": self.from_cache,
            "deduplicated": self.deduplicated,
            "resumed": self.resumed,
            "missing": 0,  # run_grid raises instead of returning partial grids
            "workers": self.workers,
            "executor": self.executor,
            "elapsed_seconds": self.elapsed,
            "cell_timings": [
                {
                    "figure": outcome.cell.figure,
                    "runner": outcome.cell.runner,
                    "config_hash": outcome.cell.config_hash,
                    "source": outcome.source,
                    "elapsed_seconds": outcome.elapsed,
                    "rows": len(outcome.rows),
                }
                for outcome in self.outcomes
            ],
        }


def _execute_payload(
    payload: tuple[str, Mapping[str, Any], int, str]
) -> tuple[list[dict[str, Any]], float]:
    """Execute one cell in a (possibly remote) worker process."""
    runner_name, params, master_seed, key = payload
    runner = get_cell_runner(runner_name)
    rng = derive_rng(master_seed, "grid-cell", key)
    start = time.perf_counter()
    rows = runner(params, rng)
    return list(rows), time.perf_counter() - start


def _cell_payload(cell: GridCell) -> tuple[str, dict[str, Any], int, str]:
    """Picklable ``_execute_payload`` argument for ``cell``."""
    return (cell.runner, dict(cell.params), cell.master_seed, cell.key)


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
#: ``record(index, rows, elapsed, source)`` callback handed to executors.
RecordFn = Callable[[int, "list[dict[str, Any]]", float, str], None]


class Executor(abc.ABC):
    """Strategy executing the pending cells of one :func:`run_grid` call.

    :func:`run_grid` owns planning, cache lookups, within-run deduplication
    and row assembly; the executor only decides *where and how* the remaining
    cells run.  ``execute`` receives ``(index, cell)`` tasks — guaranteed to
    have pairwise-distinct config hashes — and must call ``record`` exactly
    once per task with the cell's rows, compute time and a source tag
    (``"computed"``, or ``"resumed"`` for cells restored from a prior
    interrupted run).  Because every cell derives its random stream from the
    master seed and its own key alone, any executor that faithfully runs the
    registered cell runner produces byte-identical rows.
    """

    #: Parallelism degree reported in execution summaries.
    workers: int = 1

    @abc.abstractmethod
    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        """Run every task, reporting each completion through ``record``."""


class SerialExecutor(Executor):
    """Execute cells one after another in the calling process."""

    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        for index, cell in tasks:
            rows, elapsed = _execute_payload(_cell_payload(cell))
            record(index, rows, elapsed, "computed")


class ProcessPoolExecutor(Executor):
    """Fan cells out across a ``multiprocessing`` pool (the former
    ``run_grid(workers=N)`` path, extracted behind the executor seam).

    Falls back to in-process execution when the pool cannot help (one worker
    or at most one task).  On a failing cell the pool keeps draining so every
    surviving cell is still recorded (and therefore cached) before the first
    error propagates.
    """

    def __init__(self, workers: int = 2) -> None:
        if int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            SerialExecutor().execute(tasks, record)
            return
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks))
        ) as pool:
            futures = {
                pool.submit(_execute_payload, _cell_payload(cell)): index
                for index, cell in tasks
            }
            first_error: BaseException | None = None
            for future in concurrent.futures.as_completed(futures):
                try:
                    rows, elapsed = future.result()
                except BaseException as exc:
                    # keep draining so the surviving cells still hit the cache
                    if first_error is None:
                        first_error = exc
                    continue
                record(futures[future], rows, elapsed, "computed")
            if first_error is not None:
                raise first_error


class ThreadedExecutor(Executor):
    """Fan cells out across an in-process thread pool.

    Profitable when the hot kernels release the GIL — the numba backend of
    :mod:`repro.kernels` compiles all three with ``nogil=True`` — because,
    unlike :class:`ProcessPoolExecutor`, nothing is pickled: datasets,
    params and result rows stay in one address space.  Pure-NumPy cells
    also overlap wherever NumPy drops the GIL, just less completely.  Rows
    are byte-identical to :class:`SerialExecutor` because every cell
    derives its RNG from the master seed and its own key alone; ``record``
    is only ever invoked from the calling thread, so the callback needs no
    locking.  Like the process pool it keeps draining after a failing cell
    so surviving cells are still recorded before the first error
    propagates.
    """

    def __init__(self, workers: int = 2) -> None:
        if int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def execute(self, tasks: Sequence[tuple[int, GridCell]], record: RecordFn) -> None:
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            SerialExecutor().execute(tasks, record)
            return
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.workers, len(tasks))
        ) as pool:
            futures = {
                pool.submit(_execute_payload, _cell_payload(cell)): index
                for index, cell in tasks
            }
            first_error: BaseException | None = None
            for future in concurrent.futures.as_completed(futures):
                try:
                    rows, elapsed = future.result()
                except BaseException as exc:
                    # keep draining so the surviving cells still hit the cache
                    if first_error is None:
                        first_error = exc
                    continue
                record(futures[future], rows, elapsed, "computed")
            if first_error is not None:
                raise first_error


def resolve_executor(executor: "Executor | None", workers: int = 1) -> Executor:
    """Normalize the ``(executor, workers)`` pair of :func:`run_grid`.

    An explicit executor wins; otherwise ``workers`` selects the classic
    behaviour (serial for 1, process pool for more).
    """
    if executor is not None:
        if not isinstance(executor, Executor):
            raise InvalidParameterError(
                f"executor must be an Executor instance or None, got {type(executor)!r}"
            )
        return executor
    if int(workers) < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    workers = int(workers)
    return SerialExecutor() if workers == 1 else ProcessPoolExecutor(workers)


def run_grid(
    cells: Sequence[GridCell],
    workers: int = 1,
    cache: "CellStore | str | Path | None" = None,
    executor: "Executor | None" = None,
    on_cell_complete: "Callable[[CellOutcome], None] | None" = None,
) -> GridResult:
    """Execute a grid of cells and assemble their rows in cell order.

    Parameters
    ----------
    cells:
        The grid.  Cells are independent; rows are concatenated in the order
        the cells are given regardless of execution order.
    workers:
        Process-pool size; ``1`` executes in-process (no pool).  Ignored when
        an explicit ``executor`` is given.
    cache:
        Optional :class:`CellStore` (or cache directory) serving completed
        cells and persisting fresh ones.
    executor:
        Optional :class:`Executor` deciding where the pending cells run
        (serial, process pool, sharded subprocess workers, ...).  All
        executors produce byte-identical rows.
    on_cell_complete:
        Optional observer invoked (in the parent process) with each
        :class:`CellOutcome` the executor records, in completion order —
        the hook shard workers use to persist partial artifacts
        incrementally.
    """
    executor = resolve_executor(executor, workers)
    cache = ensure_cache(cache)
    cells = list(cells)
    for cell in cells:
        get_cell_runner(cell.runner)  # fail fast on unknown runners
        if int(cell.master_seed) < 0:
            # fail in the parent process, not from inside a pool worker
            raise InvalidParameterError(
                f"master_seed must be non-negative, got {cell.master_seed}"
            )

    start = time.perf_counter()
    outcomes: list[CellOutcome | None] = [None] * len(cells)

    # 1. serve cells from the cache
    pending: list[int] = []
    for index, cell in enumerate(cells):
        rows = cache.get(cell) if cache is not None else None
        if rows is not None:
            outcomes[index] = CellOutcome(cell=cell, rows=rows, elapsed=0.0, source="cache")
        else:
            pending.append(index)

    # 2. deduplicate identical work within this run
    primary_by_hash: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    to_compute: list[int] = []
    for index in pending:
        config_hash = cells[index].config_hash
        if config_hash in primary_by_hash:
            duplicates.append((index, primary_by_hash[config_hash]))
        else:
            primary_by_hash[config_hash] = index
            to_compute.append(index)

    # 3. hand the remaining cells to the executor; each cell is persisted to
    # the cache as it is recorded (per completion for the in-process
    # executors; shard workers additionally keep their own partial artifacts
    # and can be handed the cache directly, so interrupted runs keep their
    # completed work on every path).  When the executor already writes
    # through the same unbounded cache directory, the parent-side put would
    # only duplicate the I/O — skip it (a *bounded* cache still puts, since
    # eviction accounting lives with the bounds).
    executor_cache = getattr(executor, "cache_dir", None)
    shares_cache_dir = (
        cache is not None
        and executor_cache is not None
        and getattr(executor, "cache_backend", "json") == cache.backend
        and Path(executor_cache).resolve() == cache.directory.resolve()
    )
    redundant_put = (
        shares_cache_dir and cache.max_entries is None and cache.max_bytes is None
    )

    def record(
        index: int,
        cell_rows: list[dict[str, Any]],
        elapsed: float,
        source: str = "computed",
    ) -> None:
        outcome = CellOutcome(
            cell=cells[index], rows=list(cell_rows), elapsed=float(elapsed), source=source
        )
        outcomes[index] = outcome
        # the redundant-put shortcut only applies to cells the workers wrote
        # through (computed) or found in (cache) the shared directory this
        # run; cells resumed from partial artifacts may predate the cache
        if cache is not None and not (redundant_put and source in ("computed", "cache")):
            cache.put(cells[index], cell_rows, elapsed)
        if on_cell_complete is not None:
            on_cell_complete(outcome)

    if to_compute:
        executor.execute([(index, cells[index]) for index in to_compute], record)
        if shares_cache_dir and not redundant_put:
            # shard workers wrote through the cache out-of-band of this
            # instance's occupancy estimate; rescan so the bounds hold over
            # their entries too
            cache._enforce_bounds()

    unrecorded = [index for index in to_compute if outcomes[index] is None]
    if unrecorded:
        names = ", ".join(cells[index].runner for index in unrecorded[:5])
        raise GridExecutionError(
            f"executor {type(executor).__name__} finished without results for "
            f"{len(unrecorded)} of {len(to_compute)} cells (runners: {names}"
            + (", ..." if len(unrecorded) > 5 else "")
            + ")"
        )

    for index, primary in duplicates:
        primary_outcome = outcomes[primary]
        assert primary_outcome is not None  # primaries were recorded above
        outcomes[index] = CellOutcome(
            cell=cells[index],
            rows=list(primary_outcome.rows),
            elapsed=0.0,
            source="dedup",
        )

    # every index is now covered: cache hits (step 1), executed primaries
    # (step 3, checked above) and their duplicates — narrow away the Nones
    completed = [outcome for outcome in outcomes if outcome is not None]
    rows: list[dict[str, Any]] = []
    for outcome in completed:
        rows.extend(outcome.rows)
    return GridResult(
        rows=rows,
        outcomes=completed,
        elapsed=time.perf_counter() - start,
        # total_workers lets composite executors (sharded) report their full
        # configured parallelism, not just the per-shard pool size
        workers=getattr(executor, "total_workers", getattr(executor, "workers", 1)),
        executor=type(executor).__name__,
    )


def execute_plan(
    cells: Sequence[GridCell],
    postprocess: "Callable[[list[dict[str, Any]]], list[dict[str, Any]]] | None" = None,
    *,
    workers: int = 1,
    cache: "CellStore | str | Path | None" = None,
    executor: "Executor | None" = None,
    grid_info: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Run a planned grid and post-process its rows into figure rows.

    The shared tail of every ``run_*`` experiment function: execute the
    cells, surface the engine summary through ``grid_info`` (updated in
    place) and apply the figure's row aggregation.  ``postprocess`` must be a
    pure function of the raw rows, so sharded invocations can merge partial
    artifacts first and aggregate once at the end.
    """
    result = run_grid(cells, workers=workers, cache=cache, executor=executor)
    if grid_info is not None:
        grid_info.update(result.summary())
    return postprocess(result.rows) if postprocess is not None else result.rows
