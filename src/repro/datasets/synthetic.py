"""Synthetic categorical data generation.

The re-identification and attribute-inference results in the paper depend on
three properties of the evaluation datasets:

1. the per-attribute domain sizes ``k_j`` (fixed by the schemas);
2. the skew of the per-attribute marginals (skewed for Adult and
   ACSEmployment, uniform-like for Nursery); and
3. cross-attribute correlation, which makes combinations of attributes unique
   and therefore re-identifiable.

This module synthesizes data with exactly those properties using a
**latent-class model**: each user first draws a latent class ``z`` and then
draws every attribute independently from a class-specific categorical
distribution.  Class-specific distributions are Zipf-like permutations of a
base marginal, which yields realistic skew, strong correlation and a high
fraction of unique records — the drivers of the paper's results.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from .schema import DatasetSchema


def zipf_marginal(k: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like marginal over ``k`` categories with exponent ``skew``.

    ``skew = 0`` gives a (jittered) uniform distribution; larger values
    concentrate the mass on a few categories, as in census attributes such as
    *native-country* or *race*.  Categories are randomly permuted so the mode
    is not always category 0.
    """
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    if skew < 0:
        raise InvalidParameterError("skew must be non-negative")
    ranks = np.arange(1, k + 1, dtype=float)
    weights = ranks ** (-skew)
    # small multiplicative jitter so no two attributes share the exact marginal
    weights *= rng.uniform(0.9, 1.1, size=k)
    weights /= weights.sum()
    return rng.permutation(weights)


def _tilt_marginal(
    base: np.ndarray, strength: float, rng: np.random.Generator
) -> np.ndarray:
    """Create a class-specific distribution by re-weighting ``base``.

    ``strength`` controls how far classes deviate from the population
    marginal; 0 keeps the marginal unchanged (no correlation).
    """
    if strength <= 0:
        return base.copy()
    tilt = rng.gamma(shape=1.0 / strength, scale=strength, size=base.size)
    tilted = base * tilt
    total = tilted.sum()
    if total <= 0:
        return base.copy()
    return tilted / total


def synthesize(
    schema: DatasetSchema,
    n: int | None = None,
    rng: RngLike = None,
    correlation_strength: float = 1.5,
) -> TabularDataset:
    """Generate a synthetic dataset following ``schema``.

    Parameters
    ----------
    schema:
        Dataset schema (names, sizes, skew, number of latent classes).
    n:
        Number of users; defaults to the paper's size for that dataset.
    rng:
        Seed or generator.
    correlation_strength:
        How strongly the latent class tilts each attribute's distribution;
        only relevant when ``schema.n_latent_classes > 1``.
    """
    generator = ensure_rng(rng)
    n = schema.default_n if n is None else int(n)
    if n <= 0:
        raise InvalidParameterError("n must be positive")

    domain = schema.domain()
    n_classes = schema.n_latent_classes

    # population marginals, one per attribute
    base_marginals = [zipf_marginal(k, schema.skew, generator) for k in schema.sizes]

    # class-conditional distributions
    class_tables: list[np.ndarray] = []
    for base in base_marginals:
        table = np.stack(
            [
                _tilt_marginal(base, correlation_strength if n_classes > 1 else 0.0, generator)
                for _ in range(n_classes)
            ]
        )
        class_tables.append(table)

    # slightly non-uniform class weights
    class_weights = generator.dirichlet(np.full(n_classes, 2.0)) if n_classes > 1 else np.ones(1)
    latent = generator.choice(n_classes, size=n, p=class_weights)

    columns = []
    for table in class_tables:
        k = table.shape[1]
        # Draw each user's value from its class-conditional distribution via
        # inverse-CDF sampling, vectorized over users.
        cdf = np.cumsum(table, axis=1)
        cdf[:, -1] = 1.0
        uniforms = generator.random(n)
        values = (uniforms[:, None] > cdf[latent]).sum(axis=1)
        columns.append(np.minimum(values, k - 1).astype(np.int64))

    data = np.column_stack(columns)
    return TabularDataset(domain=domain, data=data, name=schema.name)
