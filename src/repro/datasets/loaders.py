"""Unified dataset loading interface."""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.dataset import TabularDataset
from ..core.rng import RngLike
from ..exceptions import InvalidParameterError
from .acs_employment import make_acs_employment
from .adult import make_adult
from .nursery import make_nursery

_LOADERS: Mapping[str, Callable[..., TabularDataset]] = {
    "adult": make_adult,
    "acs_employment": make_acs_employment,
    "nursery": make_nursery,
}


def load_dataset(name: str, n: int | None = None, rng: RngLike = 2023) -> TabularDataset:
    """Load one of the paper's evaluation datasets by name.

    Parameters
    ----------
    name:
        ``"adult"``, ``"acs_employment"`` (aliases ``"acs"``,
        ``"acsemployment"``) or ``"nursery"``.
    n:
        Optional number of users (defaults to the paper's size).
    rng:
        Seed or generator.
    """
    key = name.strip().lower().replace("-", "_")
    if key in ("acs", "acsemployment", "acs_employement", "acsemployement"):
        key = "acs_employment"
    if key not in _LOADERS:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; expected one of {sorted(_LOADERS)}"
        )
    return _LOADERS[key](n=n, rng=rng)


def available_datasets() -> tuple[str, ...]:
    """Names of the available datasets."""
    return tuple(_LOADERS)
