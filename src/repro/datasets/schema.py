"""Schemas of the datasets used by the paper's evaluation.

The paper evaluates on three census-style categorical datasets.  Because this
reproduction has no network access, the datasets themselves are synthesized
(see :mod:`repro.datasets.synthetic`), but the schemas — attribute names,
domain sizes ``k`` and default number of users ``n`` — follow the paper
exactly:

* **Adult** (UCI): ``d = 10``, ``k = [74, 7, 16, 7, 14, 6, 5, 2, 41, 2]``,
  ``n = 45_222``.
* **ACSEmployment** (Folktables, Montana): ``d = 18``,
  ``k = [92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6]``,
  ``n = 10_336``.
* **Nursery** (UCI): ``d = 9``, ``k = [3, 5, 4, 4, 3, 2, 3, 3, 5]``,
  ``n = 12_959``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.domain import Domain
from ..exceptions import InvalidParameterError


@dataclass(frozen=True)
class DatasetSchema:
    """Schema (and synthesis knobs) of one benchmark dataset.

    Parameters
    ----------
    name:
        Dataset name.
    attribute_names:
        Names of the ``d`` attributes.
    sizes:
        Domain sizes ``k``.
    default_n:
        Number of users used by the paper.
    skew:
        Zipf-like skew of the per-attribute marginals used by the synthetic
        generator (0 → uniform, larger → more concentrated).
    n_latent_classes:
        Number of latent classes used to induce cross-attribute correlation
        (and therefore uniqueness).  1 → independent attributes.
    """

    name: str
    attribute_names: tuple[str, ...]
    sizes: tuple[int, ...]
    default_n: int
    skew: float = 1.0
    n_latent_classes: int = 8

    def __post_init__(self) -> None:
        if len(self.attribute_names) != len(self.sizes):
            raise InvalidParameterError("attribute_names and sizes must align")
        if self.default_n <= 0:
            raise InvalidParameterError("default_n must be positive")
        if self.skew < 0:
            raise InvalidParameterError("skew must be non-negative")
        if self.n_latent_classes < 1:
            raise InvalidParameterError("n_latent_classes must be >= 1")

    @property
    def d(self) -> int:
        """Number of attributes."""
        return len(self.sizes)

    def domain(self) -> Domain:
        """Build the :class:`~repro.core.domain.Domain` for this schema."""
        return Domain.from_sizes(self.sizes, self.attribute_names)


ADULT_SCHEMA = DatasetSchema(
    name="adult",
    attribute_names=(
        "age",
        "workclass",
        "education",
        "marital-status",
        "occupation",
        "relationship",
        "race",
        "sex",
        "native-country",
        "salary",
    ),
    sizes=(74, 7, 16, 7, 14, 6, 5, 2, 41, 2),
    default_n=45_222,
    skew=1.1,
    n_latent_classes=12,
)

ACS_EMPLOYMENT_SCHEMA = DatasetSchema(
    name="acs_employment",
    attribute_names=(
        "AGEP",
        "SCHL",
        "MAR",
        "SEX",
        "DIS",
        "ESP",
        "CIT",
        "MIG",
        "MIL",
        "ANC",
        "NATIVITY",
        "RELP",
        "DEAR",
        "DEYE",
        "DREM",
        "RAC1P",
        "GCL",
        "ESR",
    ),
    sizes=(92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6),
    default_n=10_336,
    skew=1.2,
    n_latent_classes=10,
)

NURSERY_SCHEMA = DatasetSchema(
    name="nursery",
    attribute_names=(
        "parents",
        "has_nurs",
        "form",
        "children",
        "housing",
        "finance",
        "social",
        "health",
        "class",
    ),
    sizes=(3, 5, 4, 4, 3, 2, 3, 3, 5),
    default_n=12_959,
    # The paper remarks that Nursery attributes follow uniform-like
    # distributions, which is precisely why the AIF attack fails there.
    skew=0.05,
    n_latent_classes=1,
)

#: All schemas by name.
SCHEMAS: Mapping[str, DatasetSchema] = {
    ADULT_SCHEMA.name: ADULT_SCHEMA,
    ACS_EMPLOYMENT_SCHEMA.name: ACS_EMPLOYMENT_SCHEMA,
    NURSERY_SCHEMA.name: NURSERY_SCHEMA,
}


def get_schema(name: str) -> DatasetSchema:
    """Look up a schema by (case-insensitive) name."""
    key = name.strip().lower().replace("-", "_")
    if key not in SCHEMAS:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; expected one of {sorted(SCHEMAS)}"
        )
    return SCHEMAS[key]
