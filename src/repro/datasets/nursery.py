"""Synthetic stand-in for the UCI *Nursery* dataset.

The paper uses Nursery (``d = 9``, ``k = [3, 5, 4, 4, 3, 2, 3, 3, 5]``,
``n = 12,959``) in Appendix D to show that when attributes follow
uniform-like distributions, the attribute-inference attacks on RS+FD provide
no meaningful improvement over the random-guess baseline.  The surrogate
therefore uses a near-uniform, independent-attribute generator.
"""

from __future__ import annotations

from ..core.dataset import TabularDataset
from ..core.rng import RngLike
from .schema import NURSERY_SCHEMA
from .synthetic import synthesize


def make_nursery(n: int | None = None, rng: RngLike = 2023) -> TabularDataset:
    """Generate a Nursery-like dataset (near-uniform, independent attributes)."""
    return synthesize(NURSERY_SCHEMA, n=n, rng=rng, correlation_strength=0.0)
