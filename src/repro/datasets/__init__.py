"""Synthetic evaluation datasets (Adult, ACSEmployment, Nursery surrogates)."""

from .acs_employment import make_acs_employment
from .adult import make_adult
from .loaders import available_datasets, load_dataset
from .nursery import make_nursery
from .schema import (
    ACS_EMPLOYMENT_SCHEMA,
    ADULT_SCHEMA,
    NURSERY_SCHEMA,
    SCHEMAS,
    DatasetSchema,
    get_schema,
)
from .synthetic import synthesize, zipf_marginal

__all__ = [
    "DatasetSchema",
    "ADULT_SCHEMA",
    "ACS_EMPLOYMENT_SCHEMA",
    "NURSERY_SCHEMA",
    "SCHEMAS",
    "get_schema",
    "synthesize",
    "zipf_marginal",
    "make_adult",
    "make_acs_employment",
    "make_nursery",
    "load_dataset",
    "available_datasets",
]
