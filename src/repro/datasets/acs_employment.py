"""Synthetic stand-in for the Folktables *ACSEmployment* (Montana) dataset.

The paper uses ACSEmployment restricted to Montana, with ``d = 18``
attributes, ``k = [92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6]``
and ``n = 10,336`` users.  See :mod:`repro.datasets.synthetic` for how the
surrogate preserves the statistical properties the attacks rely on.
"""

from __future__ import annotations

from ..core.dataset import TabularDataset
from ..core.rng import RngLike
from .schema import ACS_EMPLOYMENT_SCHEMA
from .synthetic import synthesize


def make_acs_employment(n: int | None = None, rng: RngLike = 2023) -> TabularDataset:
    """Generate an ACSEmployment-like dataset.

    Parameters
    ----------
    n:
        Number of users (default: the paper's 10,336).
    rng:
        Seed or generator; fixed by default for reproducibility.
    """
    return synthesize(ACS_EMPLOYMENT_SCHEMA, n=n, rng=rng)
