"""Synthetic stand-in for the UCI *Adult* dataset.

The paper uses Adult with ``d = 10`` attributes,
``k = [74, 7, 16, 7, 14, 6, 5, 2, 41, 2]`` and ``n = 45,222`` users after
cleaning.  The generator reproduces the schema and the two statistical
properties the attacks depend on — skewed marginals and cross-attribute
correlation (uniqueness) — via the latent-class model of
:mod:`repro.datasets.synthetic`.
"""

from __future__ import annotations

from ..core.dataset import TabularDataset
from ..core.rng import RngLike
from .schema import ADULT_SCHEMA
from .synthetic import synthesize


def make_adult(n: int | None = None, rng: RngLike = 2023) -> TabularDataset:
    """Generate an Adult-like dataset.

    Parameters
    ----------
    n:
        Number of users (default: the paper's 45,222).
    rng:
        Seed or generator; fixed by default so repeated calls give the same
        population, as with the real dataset.
    """
    return synthesize(ADULT_SCHEMA, n=n, rng=rng)
