"""LDP frequency-oracle protocols (GRR, OLH, ω-SS, SUE, OUE)."""

from .analysis import (
    ANALYTICAL_ACC,
    acc_grr,
    acc_olh,
    acc_oue,
    acc_ss,
    acc_sue,
    attacker_accuracy,
    oracle_variance,
    profiling_accuracy_non_uniform,
    profiling_accuracy_uniform,
)
from .base import FrequencyOracle, empirical_attack_accuracy
from .grr import GRR
from .olh import OLH, optimal_hash_range, universal_hash
from .postprocessing import (
    POSTPROCESSORS,
    clip_and_normalize,
    norm_sub,
    postprocess,
    project_onto_simplex,
)
from .registry import PROTOCOLS, available_protocols, canonical_name, make_protocol
from .ss import SubsetSelection, optimal_subset_size
from .streaming import (
    DEFAULT_CHUNK_SIZE,
    CountAccumulator,
    PackedBits,
    is_chunk_iterable,
)
from .ue import OUE, SUE, UnaryEncoding

__all__ = [
    "FrequencyOracle",
    "empirical_attack_accuracy",
    "CountAccumulator",
    "PackedBits",
    "DEFAULT_CHUNK_SIZE",
    "is_chunk_iterable",
    "GRR",
    "OLH",
    "SubsetSelection",
    "UnaryEncoding",
    "SUE",
    "OUE",
    "optimal_hash_range",
    "universal_hash",
    "optimal_subset_size",
    "PROTOCOLS",
    "make_protocol",
    "canonical_name",
    "available_protocols",
    "POSTPROCESSORS",
    "postprocess",
    "clip_and_normalize",
    "norm_sub",
    "project_onto_simplex",
    "ANALYTICAL_ACC",
    "attacker_accuracy",
    "acc_grr",
    "acc_olh",
    "acc_ss",
    "acc_sue",
    "acc_oue",
    "profiling_accuracy_uniform",
    "profiling_accuracy_non_uniform",
    "oracle_variance",
]
