"""Bounded-memory streaming aggregation primitives.

The paper's experiments aggregate millions of reports per attribute; holding
every report — let alone a dense ``(n, k)`` candidate or bit matrix — in
memory does not scale to the "millions of users" regime the ROADMAP targets.
This module provides the three building blocks of the streaming hot path:

* :class:`CountAccumulator` — O(k) server-side state consuming reports in
  fixed-size chunks (``accumulator() → add(chunk) → finalize(n)``); the
  chunked and one-shot paths produce **byte-identical**
  :class:`~repro.core.frequencies.FrequencyEstimate` objects because support
  counts are non-negative integers below 2**53 and float64 addition over them
  is exact regardless of chunking.
* :class:`PackedBits` — bit-packed storage for unary-encoding report
  matrices (``np.packbits``/``np.unpackbits``), an 8x end-to-end memory
  reduction through ``randomize_many → support_counts → attack_many``.
* chunk-iterable detection and summation helpers shared by the protocol and
  multidimensional layers, so every ``aggregate``/``estimate`` entry point
  accepts either a monolithic report array or an iterable of report chunks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..core.frequencies import FrequencyEstimate
from ..exceptions import EstimationError, InvalidParameterError

#: Default number of report rows materialized at once by the chunked kernels.
#: At the paper's largest domain sizes this caps every intermediate candidate
#: matrix at a few megabytes while staying large enough to amortize numpy
#: dispatch overhead.
DEFAULT_CHUNK_SIZE = 8192


def validate_chunk_size(chunk_size: int | None) -> int | None:
    """Validate an optional chunk size (``None`` = use the caller's default)."""
    if chunk_size is None:
        return None
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def resolve_chunk_size(chunk_size: int | None) -> int:
    """Validate a chunk size, substituting :data:`DEFAULT_CHUNK_SIZE` for ``None``."""
    return validate_chunk_size(chunk_size) or DEFAULT_CHUNK_SIZE


class PackedBits:
    """Bit-packed ``(n, k)`` binary report matrix.

    Rows are packed independently with :func:`numpy.packbits`, so row ``i``
    occupies bytes ``data[i]`` and row-wise assembly (e.g. interleaving true
    and fake reports) works directly on :attr:`data`.  ``unpack`` restores
    exact ``uint8`` bit rows, which keeps packed and unpacked aggregation
    byte-identical.
    """

    __slots__ = ("data", "k")

    def __init__(self, data: np.ndarray, k: int) -> None:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        k = int(k)
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if data.ndim != 2 or data.shape[1] != (k + 7) // 8:
            raise InvalidParameterError(
                f"packed data must have shape (n, {(k + 7) // 8}) for k={k}, "
                f"got {data.shape}"
            )
        self.data = data
        self.k = k

    # -- constructors --------------------------------------------------------
    @classmethod
    def pack(cls, bits: np.ndarray, k: int | None = None) -> "PackedBits":
        """Pack a dense ``(n, k)`` (or ``(k,)``) 0/1 matrix."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim == 1:
            bits = bits.reshape(1, -1)
        if bits.ndim != 2:
            raise InvalidParameterError(f"bits must be 2-D, got shape {bits.shape}")
        k = bits.shape[1] if k is None else int(k)
        return cls(np.packbits(bits, axis=1), k)

    @classmethod
    def empty(cls, n: int, k: int) -> "PackedBits":
        """All-zero packed matrix for ``n`` users over domain size ``k``."""
        return cls(np.zeros((int(n), (int(k) + 7) // 8), dtype=np.uint8), k)

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def n(self) -> int:
        """Number of report rows."""
        return len(self)

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes (k/8 per row instead of k)."""
        return int(self.data.nbytes)

    def __getitem__(self, rows: Any) -> "PackedBits":
        data = self.data[rows]
        return PackedBits(data, self.k)

    # -- unpacking -----------------------------------------------------------
    def unpack(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Dense ``uint8`` bit rows ``[start:stop)`` (padding bits trimmed)."""
        return np.unpackbits(self.data[start:stop], axis=1, count=self.k)

    def column_sums(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> np.ndarray:
        """Per-value support counts, unpacking at most ``chunk_size`` rows."""
        counts = np.zeros(self.k, dtype=float)
        for start in range(0, len(self), chunk_size):
            counts += self.unpack(start, start + chunk_size).sum(axis=0)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"PackedBits(n={len(self)}, k={self.k}, nbytes={self.nbytes})"


def is_chunk_iterable(reports: Any) -> bool:
    """Whether ``reports`` is an iterable of report chunks.

    A monolithic :class:`numpy.ndarray` or :class:`PackedBits` is *not*
    chunked; a generator/iterator, or a list/tuple whose elements are arrays
    or :class:`PackedBits`, is.  A list of scalar reports (e.g. Python ints
    for GRR) is treated as a single chunk for backwards compatibility.
    """
    if isinstance(reports, (np.ndarray, PackedBits)):
        return False
    if isinstance(reports, (list, tuple)):
        return len(reports) > 0 and isinstance(reports[0], (np.ndarray, PackedBits))
    return isinstance(reports, Iterator)


def sum_support_counts(
    count_fn: Callable[[Any], np.ndarray], chunks: Iterable[Any], k: int
) -> np.ndarray:
    """Sum per-chunk support counts into one O(k) count vector."""
    counts = np.zeros(int(k), dtype=float)
    for chunk in chunks:
        counts += count_fn(chunk)
    return counts


def concat_attacks(
    attack_fn: Callable[[Any], np.ndarray], chunks: Iterable[Any]
) -> np.ndarray:
    """Concatenate per-chunk attack guesses (empty iterable → empty array)."""
    guesses = [attack_fn(chunk) for chunk in chunks]
    if not guesses:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(guesses)


class CountAccumulator:
    """Streaming server-side aggregation state for one frequency oracle.

    The accumulator holds only the running support-count vector (O(k) floats)
    and the number of reports consumed; report chunks are discarded as soon
    as they are counted.  ``finalize`` applies the oracle's unbiased
    estimator to the accumulated counts, producing the exact same
    :class:`~repro.core.frequencies.FrequencyEstimate` (bit for bit) as a
    one-shot ``aggregate`` over the concatenated reports.

    Examples
    --------
    >>> from repro.protocols import GRR
    >>> oracle = GRR(k=4, epsilon=1.0, rng=0)
    >>> acc = oracle.accumulator()
    >>> for chunk in (oracle.randomize_many([0, 1]), oracle.randomize_many([2])):
    ...     _ = acc.add(chunk)
    >>> acc.finalize().n
    3
    """

    def __init__(self, oracle: Any) -> None:
        self._oracle = oracle
        self.counts = np.zeros(int(oracle.k), dtype=float)
        self.n = 0

    def add(self, chunk: Any) -> "CountAccumulator":
        """Consume one chunk of reports; returns ``self`` for chaining."""
        self.counts += self._oracle.support_counts(chunk)
        self.n += self._oracle._num_reports(chunk)
        return self

    def merge(self, other: "CountAccumulator") -> "CountAccumulator":
        """Fold another accumulator (e.g. from a parallel shard) into this one.

        Both accumulators must belong to the same estimator, compared via the
        oracles' canonical parameter fingerprint
        (:meth:`~repro.protocols.base.FrequencyOracle.estimator_fingerprint`:
        protocol name, ``k``, ``epsilon``, ``p``, ``q`` plus every
        protocol-specific estimator parameter — OLH's hash range ``g``, SS's
        ``omega``, UE's packing).  Comparing ``(name, k, p, q)`` alone is not
        enough: float64 rounding lets two oracles with different epsilons (or
        different protocol parameters) collide on identical ``(p, q)``, and
        merged counts would silently finalize with the wrong estimator and
        the wrong privacy metadata.
        """
        ours, theirs = self._oracle, other._oracle
        if ours.estimator_fingerprint() != theirs.estimator_fingerprint():
            raise EstimationError(
                "cannot merge accumulators of incompatible oracles: "
                f"{ours.estimator_fingerprint()} vs "
                f"{theirs.estimator_fingerprint()}"
            )
        self.counts += other.counts
        self.n += other.n
        return self

    def finalize(self, n: int | None = None) -> FrequencyEstimate:
        """Unbiased frequency estimate from the accumulated counts.

        ``n`` overrides the report count (as in ``aggregate``, e.g. when the
        true population is known to differ from the number of chunks seen).
        """
        total = self.n if n is None else int(n)
        return self._oracle._estimate_from_counts(self.counts.copy(), total)
