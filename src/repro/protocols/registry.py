"""Protocol registry: build frequency oracles by name.

The experiment harness refers to protocols by the short names used in the
paper (``"GRR"``, ``"OLH"``, ``"SS"``, ``"SUE"``, ``"OUE"``); this module maps
those names to the concrete classes and provides a single factory function.
"""

from __future__ import annotations

from typing import Mapping, Type

from ..core.rng import RngLike
from ..exceptions import InvalidParameterError
from .base import FrequencyOracle
from .grr import GRR
from .olh import OLH
from .ss import SubsetSelection
from .ue import OUE, SUE

#: All frequency-oracle protocols evaluated in the paper, by canonical name.
PROTOCOLS: Mapping[str, Type[FrequencyOracle]] = {
    "GRR": GRR,
    "OLH": OLH,
    "SS": SubsetSelection,
    "SUE": SUE,
    "OUE": OUE,
}

#: Aliases accepted by :func:`make_protocol`.
_ALIASES: Mapping[str, str] = {
    "GRR": "GRR",
    "RR": "GRR",
    "OLH": "OLH",
    "LH": "OLH",
    "SS": "SS",
    "W-SS": "SS",
    "OMEGA-SS": "SS",
    "SUBSET": "SS",
    "SUE": "SUE",
    "RAPPOR": "SUE",
    "OUE": "OUE",
    "UE": "OUE",
}


def canonical_name(name: str) -> str:
    """Resolve a protocol alias to its canonical name."""
    key = name.strip().upper().replace("_", "-")
    if key not in _ALIASES:
        raise InvalidParameterError(
            f"unknown protocol {name!r}; expected one of {sorted(set(_ALIASES))}"
        )
    return _ALIASES[key]


def make_protocol(name: str, k: int, epsilon: float, rng: RngLike = None) -> FrequencyOracle:
    """Instantiate the frequency oracle ``name`` for domain size ``k``.

    Examples
    --------
    >>> oracle = make_protocol("GRR", k=10, epsilon=1.0, rng=42)
    >>> oracle.name
    'GRR'
    """
    cls = PROTOCOLS[canonical_name(name)]
    return cls(k=k, epsilon=epsilon, rng=rng)


def available_protocols() -> tuple[str, ...]:
    """Canonical names of all registered protocols."""
    return tuple(PROTOCOLS)
