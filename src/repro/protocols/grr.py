"""Generalized Randomized Response (GRR) protocol.

GRR (Kairouz et al., 2016) extends Warner's randomized response to domains of
size ``k >= 2``: the true value is reported with probability
``p = e^eps / (e^eps + k - 1)`` and each other value with probability
``q = 1 / (e^eps + k - 1)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from .base import FrequencyOracle


class GRR(FrequencyOracle):
    """Generalized Randomized Response frequency oracle."""

    name = "GRR"

    @property
    def p(self) -> float:
        return math.exp(self.epsilon) / (math.exp(self.epsilon) + self.k - 1)

    @property
    def q(self) -> float:
        return 1.0 / (math.exp(self.epsilon) + self.k - 1)

    # -- client ------------------------------------------------------------
    def randomize(self, value: int) -> int:
        value = self._validate_value(value)
        if self._rng.random() < self.p:
            return value
        # sample uniformly among the other k-1 values
        other = int(self._rng.integers(0, self.k - 1))
        return other if other < value else other + 1

    def randomize_many(self, values: np.ndarray) -> np.ndarray:
        values = self._validate_values(values)
        n = values.size
        keep = self._rng.random(n) < self.p
        others = self._rng.integers(0, self.k - 1, size=n)
        others = np.where(others < values, others, others + 1)
        return np.where(keep, values, others).astype(np.int64)

    # -- server ------------------------------------------------------------
    def validate_reports(self, reports: np.ndarray) -> np.ndarray:
        """GRR wire format: a 1-D array of reported values in ``[0, k)``.

        Out-of-range values would crash ``np.bincount`` (negatives) or widen
        the count vector past ``k`` (overshoots); both must be rejected at
        the ingest edge, not inside the aggregation kernel.
        """
        reports = np.asarray(reports, dtype=np.int64)
        if reports.ndim != 1:
            raise InvalidParameterError(
                f"{self.name} reports must be a 1-D value array, "
                f"got shape {reports.shape}"
            )
        if reports.size and (reports.min() < 0 or reports.max() >= self.k):
            raise InvalidParameterError(
                f"{self.name} reports contain values outside [0, {self.k - 1}]"
            )
        return reports

    def _support_counts_dense(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        return np.bincount(reports, minlength=self.k).astype(float)

    def _num_reports(self, reports: np.ndarray) -> int:
        return int(np.asarray(reports).shape[0])

    # -- attack --------------------------------------------------------------
    def attack(self, report: int) -> int:
        # The reported value is the single most likely true value.
        return int(report)

    def _attack_dense(self, reports: np.ndarray) -> np.ndarray:
        return np.asarray(reports, dtype=np.int64).copy()

    def expected_attack_accuracy(self) -> float:
        """``ACC_GRR = e^eps / (e^eps + k - 1)`` (Sec. 3.2.1)."""
        return self.p
