"""Post-processing (consistency) of LDP frequency estimates.

The unbiased estimators of every frequency oracle can return values below
zero or above one, and the per-attribute estimates need not sum to one.
Post-processing restores consistency without touching the privacy guarantee
(immunity to post-processing).  Three standard methods are provided, in
increasing order of statistical quality (Wang et al., NDSS 2020):

* ``clip_and_normalize`` — clip to ``[0, 1]`` and rescale;
* ``norm_sub`` — iteratively shift the positive entries down (and zero the
  negative ones) so the result sums to one; the estimator used by most LDP
  follow-up work;
* ``project_onto_simplex`` — Euclidean projection onto the probability
  simplex (the minimum-L2 consistent estimate).

The attribute-inference attack uses consistent estimates to sample synthetic
profiles, and any downstream consumer of
:class:`~repro.core.frequencies.FrequencyEstimate` can apply these helpers.
"""

from __future__ import annotations

import numpy as np

from ..core.frequencies import FrequencyEstimate
from ..exceptions import InvalidParameterError


def _as_vector(estimates: np.ndarray | FrequencyEstimate) -> np.ndarray:
    if isinstance(estimates, FrequencyEstimate):
        values = estimates.as_array()
    else:
        values = np.asarray(estimates, dtype=float).copy()
    if values.ndim != 1 or values.size == 0:
        raise InvalidParameterError("estimates must be a non-empty 1-D array")
    if not np.isfinite(values).all():
        raise InvalidParameterError("estimates contain non-finite values")
    return values


def clip_and_normalize(estimates: np.ndarray | FrequencyEstimate) -> np.ndarray:
    """Clip to non-negative values and rescale to sum to one."""
    values = np.clip(_as_vector(estimates), 0.0, None)
    total = values.sum()
    if total <= 0.0:
        return np.full(values.size, 1.0 / values.size)
    return values / total


def norm_sub(estimates: np.ndarray | FrequencyEstimate, max_iterations: int = 1000) -> np.ndarray:
    """Norm-Sub consistency: zero out negatives, shift the rest to sum to one.

    Repeatedly sets negative entries to zero and subtracts the same constant
    from every positive entry so the total equals one; converges in at most
    ``k`` iterations.
    """
    values = _as_vector(estimates)
    for _ in range(max_iterations):
        values = np.clip(values, 0.0, None)
        positive = values > 0.0
        count = int(positive.sum())
        if count == 0:
            return np.full(values.size, 1.0 / values.size)
        shift = (values.sum() - 1.0) / count
        values[positive] -= shift
        if (values >= -1e-12).all():
            break
    values = np.clip(values, 0.0, None)
    total = values.sum()
    return values / total if total > 0 else np.full(values.size, 1.0 / values.size)


def project_onto_simplex(estimates: np.ndarray | FrequencyEstimate) -> np.ndarray:
    """Euclidean projection onto the probability simplex.

    Implements the classical sorting-based algorithm (Duchi et al., 2008):
    the projection is ``max(v - theta, 0)`` with ``theta`` chosen so the
    result sums to one.
    """
    values = _as_vector(estimates)
    sorted_desc = np.sort(values)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, values.size + 1)
    rho_candidates = sorted_desc - cumulative / indices > 0
    if not rho_candidates.any():
        return np.full(values.size, 1.0 / values.size)
    rho = int(np.nonzero(rho_candidates)[0][-1])
    theta = cumulative[rho] / (rho + 1)
    return np.clip(values - theta, 0.0, None)


#: Available post-processing methods by name.
POSTPROCESSORS = {
    "clip": clip_and_normalize,
    "norm-sub": norm_sub,
    "simplex": project_onto_simplex,
}


def postprocess(estimates: np.ndarray | FrequencyEstimate, method: str = "norm-sub") -> np.ndarray:
    """Apply the post-processing ``method`` (``"clip"``, ``"norm-sub"`` or ``"simplex"``)."""
    key = method.strip().lower().replace("_", "-")
    if key not in POSTPROCESSORS:
        raise InvalidParameterError(
            f"unknown post-processing method {method!r}; expected one of {sorted(POSTPROCESSORS)}"
        )
    return POSTPROCESSORS[key](estimates)
