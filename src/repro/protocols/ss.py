"""ω-Subset Selection (SS) protocol.

The ω-SS protocol (Wang et al., 2016; Ye & Barg, 2018) reports a subset
``Ω ⊆ A_j`` of fixed size ``ω``: the true value is placed in the subset with
probability ``p = ω e^eps / (ω e^eps + k − ω)`` and the remaining slots are
filled uniformly at random without replacement.  The variance-optimal subset
size is ``ω = k / (e^eps + 1)`` (rounded, at least 1).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.rng import RngLike
from ..exceptions import InvalidParameterError
from .base import FrequencyOracle
from .streaming import resolve_chunk_size


def optimal_subset_size(k: int, epsilon: float) -> int:
    """Variance-optimal subset size ``ω = max(1, round(k / (e^eps + 1)))``."""
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    return max(1, int(round(k / (math.exp(epsilon) + 1.0))))


class SubsetSelection(FrequencyOracle):
    """ω-Subset Selection frequency oracle.

    Parameters
    ----------
    k, epsilon, rng:
        As for every :class:`~repro.protocols.base.FrequencyOracle`.
    omega:
        Subset size; defaults to the variance-optimal value.  ``omega == k``
        is rejected: every report would contain the whole domain, making
        ``p == q`` (zero signal) and the estimator divide by zero.
    chunk_size:
        Rows whose ``(rows, k)`` sampling-key matrix the vectorized
        randomizer materializes at once (default ``DEFAULT_CHUNK_SIZE``).
    """

    name = "SS"

    def __init__(
        self,
        k: int,
        epsilon: float,
        rng: RngLike = None,
        omega: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(k, epsilon, rng)
        self.omega = optimal_subset_size(self.k, self.epsilon) if omega is None else int(omega)
        if not 1 <= self.omega <= self.k:
            raise InvalidParameterError(
                f"omega must be in [1, {self.k}], got {self.omega}"
            )
        if self.omega == self.k:
            raise InvalidParameterError(
                f"omega == k == {self.k} is degenerate: every report contains the "
                "whole domain, so p == q and frequencies are unidentifiable"
            )
        self.chunk_size = resolve_chunk_size(chunk_size)

    # -- parameters ----------------------------------------------------------
    @property
    def true_inclusion_probability(self) -> float:
        """Probability ``p`` that the true value is included in the subset."""
        omega, k = self.omega, self.k
        e = math.exp(self.epsilon)
        return omega * e / (omega * e + k - omega)

    @property
    def p(self) -> float:
        # Estimator "p" = Pr[value v is reported | user's value is v].
        return self.true_inclusion_probability

    @property
    def q(self) -> float:
        # Estimator "q" = Pr[value v is reported | user's value is not v]
        # (Wang et al., 2016, Eq. for omega-SS).
        omega, k = self.omega, self.k
        e = math.exp(self.epsilon)
        return (omega * e * (omega - 1) + (k - omega) * omega) / (
            (k - 1) * (omega * e + k - omega)
        )

    # -- client ------------------------------------------------------------
    def randomize(self, value: int) -> np.ndarray:
        value = self._validate_value(value)
        return self.randomize_many(np.asarray([value]))[0]

    def randomize_many(self, values: np.ndarray) -> np.ndarray:
        """Return an ``(n, ω)`` array whose rows are the reported subsets.

        Fully vectorized via the sampling-key (argsort) trick: every other
        value gets an i.i.d. uniform key and the ``ω`` (or ``ω - 1``)
        smallest keys form a uniform without-replacement draw.  Users are
        processed in ``chunk_size`` blocks so the ``(rows, k)`` key matrix
        stays bounded.
        """
        values = self._validate_values(values)
        n = values.size
        reports = np.empty((n, self.omega), dtype=np.int64)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            reports[start:stop] = self._randomize_chunk(values[start:stop])
        return reports

    def _randomize_chunk(self, values: np.ndarray) -> np.ndarray:
        """Vectorized subset sampling for one block of users."""
        m = values.size
        include_true = self._rng.random(m) < self.true_inclusion_probability
        keys = self._rng.random((m, self.k))
        rows = np.arange(m)
        # exclude the true value from the "other values" pool
        keys[rows, values] = np.inf
        # the omega smallest keys = uniform omega-subset of the other values
        subset = np.argpartition(keys, self.omega - 1, axis=1)[:, : self.omega]
        # users who include their true value keep the omega-1 smallest others
        # and replace the largest-key slot with the true value
        subset_keys = np.take_along_axis(keys, subset, axis=1)
        largest = np.argmax(subset_keys, axis=1)
        included = np.flatnonzero(include_true)
        subset[included, largest[included]] = values[included]
        return subset.astype(np.int64)

    def _randomize_many_loop(self, values: np.ndarray) -> np.ndarray:
        """Scalar per-user reference implementation (kept for parity tests)."""
        values = self._validate_values(values)
        n = values.size
        include_true = self._rng.random(n) < self.true_inclusion_probability
        reports = np.empty((n, self.omega), dtype=np.int64)
        for i in range(n):
            true_value = values[i]
            if include_true[i]:
                fill = self._sample_others(true_value, self.omega - 1)
                reports[i, 0] = true_value
                reports[i, 1:] = fill
            else:
                reports[i, :] = self._sample_others(true_value, self.omega)
        return reports

    def _sample_others(self, excluded: int, count: int) -> np.ndarray:
        """Sample ``count`` values uniformly without replacement from A \\ {excluded}."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        draw = self._rng.choice(self.k - 1, size=count, replace=False)
        return np.where(draw < excluded, draw, draw + 1).astype(np.int64)

    # -- server ------------------------------------------------------------
    def validate_reports(self, reports: np.ndarray) -> np.ndarray:
        """SS wire format: ``(n, omega)`` subset rows with values in ``[0, k)``.

        A wrong-width matrix would not crash ``np.bincount`` — each report
        would silently support the wrong number of values and bias the
        estimate — and negative values would crash it; both are rejected at
        the ingest edge.
        """
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size == 0:
            return reports.reshape(0, self.omega)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        if reports.ndim != 2 or reports.shape[1] != self.omega:
            raise InvalidParameterError(
                f"{self.name} reports must be (n, {self.omega}) subset rows, "
                f"got shape {reports.shape}"
            )
        if reports.min() < 0 or reports.max() >= self.k:
            raise InvalidParameterError(
                f"{self.name} reports contain values outside [0, {self.k - 1}]"
            )
        return reports

    def _support_counts_dense(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        return np.bincount(reports.ravel(), minlength=self.k).astype(float)

    def _num_reports(self, reports: np.ndarray) -> int:
        reports = np.asarray(reports)
        if reports.size == 0:
            # a zero-row chunk carries zero reports — the 1-D fallback below
            # (one subset as a flat array) must not count an empty array as
            # one report
            return 0
        return 1 if reports.ndim == 1 else int(reports.shape[0])

    def _fingerprint_params(self) -> dict[str, object]:
        # omega is part of what a support count means (each report supports
        # omega values), so accumulators of different subset sizes never merge
        return {"omega": self.omega}

    # -- attack --------------------------------------------------------------
    def attack(self, report: np.ndarray) -> int:
        """Guess uniformly among the reported subset (Sec. 3.2.1)."""
        report = np.asarray(report, dtype=np.int64).ravel()
        return int(self._rng.choice(report))

    def _attack_dense(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size == 0:
            # empty chunk → no guesses (the 1-D fallback would turn (0,)
            # into a (1, 0) matrix and ask for a pick from zero columns)
            return np.empty(0, dtype=np.int64)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        picks = self._rng.integers(0, reports.shape[1], size=reports.shape[0])
        return reports[np.arange(reports.shape[0]), picks]

    def expected_attack_accuracy(self) -> float:
        """``ACC = p / ω`` — the true value is in the subset with probability
        ``p`` and the attacker then selects it with probability ``1/ω``.

        With the optimal ``ω = k / (e^eps + 1)`` this reduces to the paper's
        ``(e^eps + 1) / (2 k)`` expression.  The formula requires ``ω < k``
        (enforced at construction); at the rejected degenerate ``ω == k``
        every subset is the whole domain and the attack is a blind ``1/k``
        guess with no dependence on ``epsilon``.
        """
        return self.true_inclusion_probability / self.omega
