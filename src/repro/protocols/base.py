"""Abstract base class for LDP frequency-oracle protocols.

A frequency oracle (Sec. 2.2 of the paper) is a pair of algorithms:

* a **client-side randomizer** that perturbs one categorical value under
  ``epsilon``-LDP, and
* a **server-side aggregator** that, from ``n`` perturbed reports, produces an
  unbiased estimate of the frequency of every value in the domain.

On top of those two, this library attaches the **plausible-deniability
attack** of Sec. 3.2.1: given a single report, predict the user's true value.
All three faces (randomize / aggregate / attack) share the protocol's
``p``/``q`` parameters, so they live on the same object.
"""

from __future__ import annotations

import abc
import json
from typing import Any, Iterable, Mapping, Sequence, final

import numpy as np
from numpy.typing import NDArray

from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike, ensure_rng
from ..exceptions import EstimationError, InvalidParameterError
from ..core.composition import validate_epsilon
from .streaming import CountAccumulator, concat_attacks, is_chunk_iterable, sum_support_counts


class FrequencyOracle(abc.ABC):
    """Base class for the five LDP protocols (GRR, OLH, ω-SS, SUE, OUE).

    Parameters
    ----------
    k:
        Domain size of the attribute being collected (``k_j`` in the paper).
    epsilon:
        Privacy budget of each report.
    rng:
        Seed or generator used by the client-side randomizer and the attack.
    """

    #: short protocol identifier, e.g. ``"GRR"``.
    name: str = "FO"

    def __init__(self, k: int, epsilon: float, rng: RngLike = None) -> None:
        if int(k) < 2:
            raise InvalidParameterError(f"domain size k must be >= 2, got {k}")
        self.k = int(k)
        self.epsilon = validate_epsilon(epsilon)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    # protocol parameters
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def p(self) -> float:
        """Probability of keeping the true value / bit (estimator ``p``)."""

    @property
    @abc.abstractmethod
    def q(self) -> float:
        """Probability of reporting any specific other value (estimator ``q``)."""

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def randomize(self, value: int) -> Any:
        """Perturb one true value and return the protocol-specific report."""

    def randomize_many(self, values: NDArray[np.int64]) -> Any:
        """Vectorized perturbation of an array of true values.

        The default implementation loops over :meth:`randomize`; concrete
        protocols override it with a fully vectorized version.
        """
        values = np.asarray(values, dtype=np.int64)
        return [self.randomize(int(v)) for v in values]

    def _validate_value(self, value: int) -> int:
        value = int(value)
        if not 0 <= value < self.k:
            raise InvalidParameterError(
                f"value {value} outside domain [0, {self.k - 1}] for {self.name}"
            )
        return value

    def _validate_values(self, values: NDArray[np.int64]) -> NDArray[np.int64]:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise InvalidParameterError("values must be a 1-D array")
        if values.size and (values.min() < 0 or values.max() >= self.k):
            raise InvalidParameterError(
                f"values outside domain [0, {self.k - 1}] for {self.name}"
            )
        return values

    # ------------------------------------------------------------------ #
    # server side
    # ------------------------------------------------------------------ #
    def validate_reports(self, reports: Any) -> Any:
        """Validate one decoded report batch *before* it reaches aggregation.

        Untrusted ingest paths (the collection service's HTTP ``/report``
        endpoint) call this on client-supplied data so that a malformed batch
        — wrong matrix width, values outside the report alphabet — raises
        :class:`~repro.exceptions.InvalidParameterError` at the edge (an HTTP
        400) instead of crashing deep inside a support-count kernel.  Returns
        the batch in the canonical shape the dense kernels expect.  The base
        implementation accepts anything; every concrete protocol overrides it
        with its wire-format contract.
        """
        return reports

    @final
    def support_counts(self, reports: Any) -> NDArray[np.float64]:
        """Number of reports supporting each value (the paper's ``C(v_i)``).

        Final (``@typing.final``, also enforced by reprolint REPRO201):
        accepts a monolithic report array or an iterable of report chunks,
        summing per-chunk counts in the latter case.  Concrete protocols
        implement the dense kernel :meth:`_support_counts_dense` and never
        re-implement the chunk dispatch, so a future oracle cannot forget
        the guard.
        """
        if is_chunk_iterable(reports):
            return sum_support_counts(self.support_counts, reports, self.k)
        return self._support_counts_dense(reports)

    @abc.abstractmethod
    def _support_counts_dense(self, reports: Any) -> NDArray[np.float64]:
        """Support counts of one monolithic (non-chunked) report batch."""

    def aggregate(self, reports: Any, n: int | None = None) -> FrequencyEstimate:
        """Unbiased frequency estimation from perturbed reports (Eq. 2).

        ``f_hat(v) = (C(v) - n * q) / (n * (p - q))``.

        ``reports`` may be a monolithic report array or an iterable of report
        chunks (see :mod:`repro.protocols.streaming`); both paths return
        byte-identical estimates.
        """
        if is_chunk_iterable(reports):
            return self.aggregate_chunks(reports, n=n)
        counts = np.asarray(self.support_counts(reports), dtype=float)
        if counts.shape != (self.k,):
            raise EstimationError(
                f"support counts have shape {counts.shape}, expected ({self.k},)"
            )
        total = int(n) if n is not None else int(self._num_reports(reports))
        return self._estimate_from_counts(counts, total)

    def _estimate_from_counts(
        self, counts: NDArray[np.float64], n: int
    ) -> FrequencyEstimate:
        """Apply the unbiased estimator to precomputed support counts."""
        if n <= 0:
            raise EstimationError("cannot aggregate zero reports")
        p, q = self.p, self.q
        if p <= q:
            raise EstimationError(
                f"{self.name} parameters are degenerate (p={p:g} <= q={q:g}): "
                "reports carry no signal and frequencies are unidentifiable"
            )
        estimates = (counts - n * q) / (n * (p - q))
        return FrequencyEstimate(
            estimates=estimates,
            n=int(n),
            metadata={"protocol": self.name, "epsilon": self.epsilon, "k": self.k},
        )

    @final
    def accumulator(self) -> CountAccumulator:
        """Streaming aggregation state: ``add(chunk)`` then ``finalize(n)``.

        Final (``@typing.final``, also enforced by reprolint REPRO201): holds
        O(k) floats regardless of how many reports are consumed; the
        finalized estimate is byte-identical to one-shot :meth:`aggregate`.
        """
        return CountAccumulator(self)

    def aggregate_chunks(
        self, chunks: Iterable[Any], n: int | None = None
    ) -> FrequencyEstimate:
        """Aggregate an iterable of report chunks in bounded memory."""
        accumulator = self.accumulator()
        for chunk in chunks:
            accumulator.add(chunk)
        return accumulator.finalize(n=n)

    def _num_reports(self, reports: Any) -> int:
        return len(reports)

    def estimator_variance(self, n: int, f: float = 0.0) -> float:
        """Variance of the frequency estimator for a value of frequency ``f``.

        ``Var[f_hat] = gamma * (1 - gamma) / (n * (p - q)^2)`` with
        ``gamma = f*(p-q) + q``, which reduces to the usual
        ``q(1-q)/(n (p-q)^2)`` approximation at ``f = 0``.
        """
        if n <= 0:
            raise InvalidParameterError("n must be positive")
        if self.p <= self.q:
            raise EstimationError(
                f"{self.name} parameters are degenerate (p={self.p:g} <= q={self.q:g}); "
                "the estimator variance is unbounded"
            )
        gamma = f * (self.p - self.q) + self.q
        return gamma * (1.0 - gamma) / (n * (self.p - self.q) ** 2)

    # ------------------------------------------------------------------ #
    # plausible-deniability attack (Sec. 3.2.1)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def attack(self, report: Any) -> int:
        """Predict the user's true value from a single report."""

    @final
    def attack_many(self, reports: Any) -> NDArray[np.int64]:
        """Vectorized single-report attack.

        Final (``@typing.final``, also enforced by reprolint REPRO201):
        accepts an iterable of report chunks like :meth:`aggregate`,
        concatenating per-chunk guesses.  Concrete protocols override the
        dense kernel :meth:`_attack_dense` (which defaults to looping over
        :meth:`attack`) instead of re-implementing the chunk dispatch.
        """
        if is_chunk_iterable(reports):
            return concat_attacks(self.attack_many, reports)
        return self._attack_dense(reports)

    def _attack_dense(self, reports: Any) -> NDArray[np.int64]:
        """Attack one monolithic report batch; default loops over :meth:`attack`."""
        return np.asarray([self.attack(r) for r in reports], dtype=np.int64)

    @abc.abstractmethod
    def expected_attack_accuracy(self) -> float:
        """Closed-form expected accuracy of the attack (Sec. 3.2.1)."""

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _fingerprint_params(self) -> Mapping[str, object]:
        """Protocol-specific estimator-relevant parameters.

        Concrete protocols override this to expose every parameter beyond
        ``(name, k, epsilon, p, q)`` that changes what their support counts
        *mean* (OLH's hash range ``g``, SS's subset size ``omega``, UE's
        report packing).  These feed :meth:`estimator_fingerprint`, which
        gates :meth:`CountAccumulator.merge <repro.protocols.streaming.CountAccumulator.merge>`.
        """
        return {}

    @final
    def estimator_fingerprint(self) -> str:
        """Canonical fingerprint of every estimator-relevant parameter.

        Two accumulators may only be merged when their oracles' fingerprints
        are identical.  Comparing rounded ``(p, q)`` alone is not enough: at
        large ``epsilon`` the keep probability saturates to ``1.0`` in
        float64, so oracles with wildly different privacy budgets (or
        different protocol-specific parameters) can collide on ``(name, k,
        p, q)`` while their counts demand different estimators and carry
        different privacy metadata.  The fingerprint is canonical JSON
        (sorted keys, exact float round-trip) over the protocol name, ``k``,
        ``epsilon``, ``p``, ``q`` and the protocol-specific extras from
        :meth:`_fingerprint_params`.
        """
        payload: dict[str, object] = {
            "protocol": self.name,
            "k": self.k,
            "epsilon": float(self.epsilon),
            "p": float(self.p),
            "q": float(self.q),
        }
        for key, value in self._fingerprint_params().items():
            payload[str(key)] = value
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def describe(self) -> Mapping[str, object]:
        """Dictionary description of the protocol configuration."""
        return {
            "protocol": self.name,
            "k": self.k,
            "epsilon": self.epsilon,
            "p": self.p,
            "q": self.q,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}(k={self.k}, epsilon={self.epsilon:g})"


def empirical_attack_accuracy(
    oracle: FrequencyOracle, values: Sequence[int] | NDArray[np.int64]
) -> float:
    """Run the randomize→attack pipeline and return the attacker's ACC.

    ``ACC_FO = (1/n) * sum 1[v_i == v_hat_i]`` (Sec. 3.2.1).
    """
    true_values = np.asarray(values, dtype=np.int64)
    if true_values.size == 0:
        raise InvalidParameterError("values must not be empty")
    reports = oracle.randomize_many(true_values)
    guesses = oracle.attack_many(reports)
    return float(np.mean(guesses == true_values))
