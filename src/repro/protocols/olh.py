"""Optimal Local Hashing (OLH) protocol.

OLH (Wang et al., 2017) handles large domains by hashing the input value into
a small domain ``[g]`` with a universal hash function chosen per user, and then
applying GRR with domain size ``g`` on the hashed value.  The variance-optimal
hash range is ``g = e^eps + 1`` (rounded, at least 2).

The universal hash family used here is the classical Carter–Wegman family
``H_{a,b}(x) = ((a x + b) mod P) mod g`` with a prime ``P`` larger than any
domain size in practice.  Each report carries the pair ``(a, b)`` identifying
the hash function and the perturbed hashed value.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.rng import RngLike
from ..exceptions import InvalidParameterError
from ..kernels import get_backend
from .base import FrequencyOracle
from .streaming import resolve_chunk_size, sum_support_counts

#: Mersenne prime used by the Carter–Wegman universal hash family.  It is far
#: larger than any categorical domain handled by this library while keeping
#: ``a * x + b`` within int64 range for x < 2**31.
HASH_PRIME = 2_147_483_647


def optimal_hash_range(epsilon: float) -> int:
    """Variance-optimal hash range ``g = max(2, round(e^eps) + 1)``."""
    return max(2, int(round(math.exp(epsilon))) + 1)


def universal_hash(values: np.ndarray, a: np.ndarray, b: np.ndarray, g: int) -> np.ndarray:
    """Evaluate ``H_{a,b}(x) = ((a x + b) mod P) mod g`` element-wise.

    ``values``, ``a`` and ``b`` broadcast against each other.
    """
    values = np.asarray(values, dtype=np.int64)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    return ((a * values + b) % HASH_PRIME) % g


class OLH(FrequencyOracle):
    """Optimal Local Hashing frequency oracle.

    Reports are ``(n, 3)`` int64 arrays with columns ``(a, b, y)`` where
    ``(a, b)`` identify the user's hash function and ``y`` is the GRR-perturbed
    hashed value in ``[0, g)``.
    """

    name = "OLH"

    def __init__(
        self,
        k: int,
        epsilon: float,
        rng: RngLike = None,
        g: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(k, epsilon, rng)
        self.g = optimal_hash_range(self.epsilon) if g is None else int(g)
        if self.g < 2:
            raise InvalidParameterError(f"hash range g must be >= 2, got {self.g}")
        #: The server-side kernels never materialize more than
        #: ``chunk_size × k`` candidate-hash entries at once (default
        #: ``DEFAULT_CHUNK_SIZE``, like SS/UE); pass ``chunk_size >= n`` to
        #: force the dense one-shot kernel.  Support counts are
        #: byte-identical for any chunking.
        self.chunk_size = resolve_chunk_size(chunk_size)

    # -- parameters ----------------------------------------------------------
    @property
    def p_hash(self) -> float:
        """GRR keep probability in the hashed domain: ``e^eps / (e^eps + g - 1)``."""
        return math.exp(self.epsilon) / (math.exp(self.epsilon) + self.g - 1)

    @property
    def q_hash(self) -> float:
        """GRR flip probability in the hashed domain."""
        return 1.0 / (math.exp(self.epsilon) + self.g - 1)

    @property
    def p(self) -> float:
        # Estimator "p": probability a report supports the user's true value.
        return self.p_hash

    @property
    def q(self) -> float:
        # Estimator "q": probability a report supports any other fixed value,
        # equal to 1/g for a universal hash family (Wang et al., 2017).
        return 1.0 / self.g

    # -- client ------------------------------------------------------------
    def randomize(self, value: int) -> np.ndarray:
        value = self._validate_value(value)
        return self.randomize_many(np.asarray([value]))[0]

    def randomize_many(self, values: np.ndarray) -> np.ndarray:
        values = self._validate_values(values)
        n = values.size
        a = self._rng.integers(1, HASH_PRIME, size=n, dtype=np.int64)
        b = self._rng.integers(0, HASH_PRIME, size=n, dtype=np.int64)
        hashed = universal_hash(values, a, b, self.g)
        keep = self._rng.random(n) < self.p_hash
        others = self._rng.integers(0, self.g - 1, size=n)
        others = np.where(others < hashed, others, others + 1)
        perturbed = np.where(keep, hashed, others)
        return np.column_stack([a, b, perturbed]).astype(np.int64)

    # -- server ------------------------------------------------------------
    def validate_reports(self, reports: np.ndarray) -> np.ndarray:
        """OLH wire format: an ``(n, 3)`` matrix of ``(a, b, y)`` rows with
        hash seeds ``a in [1, PRIME)``, ``b in [0, PRIME)`` and the perturbed
        hash ``y in [0, g)``.

        Out-of-range rows would not crash the kernel — they would silently
        support nothing (or hash garbage) and bias the estimate, so they are
        rejected at the ingest edge instead.
        """
        reports = self._as_report_matrix(reports)
        if reports.size:
            a, b, y = reports[:, 0], reports[:, 1], reports[:, 2]
            if a.min() < 1 or a.max() >= HASH_PRIME or b.min() < 0 or b.max() >= HASH_PRIME:
                raise InvalidParameterError(
                    f"{self.name} hash seeds must satisfy 1 <= a < {HASH_PRIME} "
                    f"and 0 <= b < {HASH_PRIME}"
                )
            if y.min() < 0 or y.max() >= self.g:
                raise InvalidParameterError(
                    f"{self.name} perturbed hash values outside [0, {self.g - 1}]"
                )
        return reports

    def _support_counts_dense(self, reports: np.ndarray) -> np.ndarray:
        """Dense kernel: internally blocked so the candidate-hash matrix
        never exceeds ``chunk_size × k``."""
        reports = self._as_report_matrix(reports)
        if reports.shape[0] > self.chunk_size:
            return sum_support_counts(
                self._support_counts_block,
                (
                    reports[start : start + self.chunk_size]
                    for start in range(0, reports.shape[0], self.chunk_size)
                ),
                self.k,
            )
        return self._support_counts_block(reports)

    def _support_counts_block(self, reports: np.ndarray) -> np.ndarray:
        """Support-count kernel over one ``(m, 3)`` report block.

        A report supports ``v`` iff ``H_{a,b}(v)`` maps to its reported
        perturbed value; the counting loop lives in the active
        :mod:`repro.kernels` backend.
        """
        return get_backend().olh_support(reports, self.k, self.g, HASH_PRIME)

    def _num_reports(self, reports: np.ndarray) -> int:
        return int(self._as_report_matrix(reports).shape[0])

    def _fingerprint_params(self) -> dict[str, object]:
        # the hash range changes what a support count means: two OLH oracles
        # whose large epsilons round p to the same float64 still disagree on
        # g (and therefore on q = 1/g and the candidate sets)
        return {"g": self.g}

    def _as_report_matrix(self, reports: np.ndarray) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size == 0:
            # zero-row chunk (an idle shard, a drained stream): a valid
            # (0, 3) report matrix, never a shape error
            return reports.reshape(0, 3)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        if reports.shape[1] != 3:
            raise InvalidParameterError(
                f"OLH reports must have 3 columns (a, b, y), got shape {reports.shape}"
            )
        return reports

    # -- attack --------------------------------------------------------------
    def attack(self, report: np.ndarray) -> int:
        """Guess uniformly among the values hashing to the reported bucket."""
        report = np.asarray(report, dtype=np.int64).ravel()
        a, b, perturbed = report[0], report[1], report[2]
        domain = np.arange(self.k, dtype=np.int64)
        candidates = domain[universal_hash(domain, a, b, self.g) == perturbed]
        if candidates.size == 0:
            return int(self._rng.integers(0, self.k))
        return int(self._rng.choice(candidates))

    def _attack_dense(self, reports: np.ndarray) -> np.ndarray:
        """Dense kernel: internally blocked like :meth:`_support_counts_dense`."""
        reports = self._as_report_matrix(reports)
        if reports.shape[0] > self.chunk_size:
            return np.concatenate(
                [
                    self._attack_block(reports[start : start + self.chunk_size])
                    for start in range(0, reports.shape[0], self.chunk_size)
                ]
            )
        return self._attack_block(reports)

    def _attack_block(self, reports: np.ndarray) -> np.ndarray:
        """Attack kernel over one ``(m, 3)`` report block.

        The RNG draws happen here, in the historical order (uniform guesses
        for empty candidate sets first, then one rank per non-empty report),
        so guesses are byte-identical across kernel backends: the backend
        kernels only count candidates and resolve rank -> domain value.
        """
        backend = get_backend()
        counts = backend.olh_attack_counts(reports, self.k, self.g, HASH_PRIME)
        n = reports.shape[0]
        guesses = np.empty(n, dtype=np.int64)
        empty_mask = counts == 0
        guesses[empty_mask] = self._rng.integers(0, self.k, size=int(empty_mask.sum()))
        rows = np.flatnonzero(~empty_mask)
        if rows.size:
            ranks = (self._rng.random(rows.size) * counts[rows]).astype(np.int64)
            guesses[rows] = backend.olh_attack_select(
                reports, self.k, self.g, HASH_PRIME, rows, ranks
            )
        return guesses

    def expected_attack_accuracy(self) -> float:
        """Paper's closed form ``ACC_OLH = 1 / (2 * max(k / (e^eps + 1), 1))``."""
        return 1.0 / (2.0 * max(self.k / (math.exp(self.epsilon) + 1.0), 1.0))
