"""Closed-form analysis of the LDP protocols (Sec. 3.2.1 and Fig. 1).

This module centralizes the analytical expressions used throughout the paper:

* the expected single-report attacker accuracy ``ACC_FO(eps, k)`` of every
  protocol (Sec. 3.2.1);
* the multi-collection profiling accuracies ``ACC^U`` (Eq. 4, uniform privacy
  metric) and ``ACC^NU`` (Eq. 5, non-uniform privacy metric);
* frequency-estimator variances of the five oracles.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy.stats import binom

from ..core.composition import validate_epsilon
from ..exceptions import InvalidParameterError
from .ss import optimal_subset_size


def _validate_k(k: int) -> int:
    if int(k) < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    return int(k)


# --------------------------------------------------------------------------- #
# expected single-report attacker accuracy (Sec. 3.2.1)
# --------------------------------------------------------------------------- #
def acc_grr(epsilon: float, k: int) -> float:
    """``ACC_GRR = e^eps / (e^eps + k - 1)``."""
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    return math.exp(epsilon) / (math.exp(epsilon) + k - 1)


def acc_olh(epsilon: float, k: int) -> float:
    """``ACC_OLH = 1 / (2 * max(k / (e^eps + 1), 1))``."""
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    return 1.0 / (2.0 * max(k / (math.exp(epsilon) + 1.0), 1.0))


def acc_ss(epsilon: float, k: int, omega: int | None = None) -> float:
    """``ACC_SS = p / omega`` with the variance-optimal subset size.

    Equals the paper's ``(e^eps + 1) / (2 k)`` when ``omega = k/(e^eps+1)``
    is at least one; for very small ``k`` (``omega = 1``) it degenerates to
    the GRR accuracy, matching the empirical behaviour.
    """
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    omega = optimal_subset_size(k, epsilon) if omega is None else int(omega)
    e = math.exp(epsilon)
    inclusion = omega * e / (omega * e + k - omega)
    return inclusion / omega


def _acc_unary(p: float, q: float, k: int) -> float:
    """Generic UE attack accuracy with keep/flip probabilities ``(p, q)``."""
    accuracy = (1.0 - p) * (1.0 - q) ** (k - 1) / k
    i = np.arange(1, k + 1)
    accuracy += float(np.sum((p / i) * binom.pmf(i - 1, k - 1, q)))
    return accuracy


def acc_sue(epsilon: float, k: int) -> float:
    """Expected attack accuracy of SUE (Basic One-time RAPPOR)."""
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    half = math.exp(epsilon / 2.0)
    return _acc_unary(half / (half + 1.0), 1.0 / (half + 1.0), k)


def acc_oue(epsilon: float, k: int) -> float:
    """Expected attack accuracy of OUE."""
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    return _acc_unary(0.5, 1.0 / (math.exp(epsilon) + 1.0), k)


#: Mapping from protocol name to its analytical single-report attack accuracy.
ANALYTICAL_ACC: Mapping[str, Callable[[float, int], float]] = {
    "GRR": acc_grr,
    "OLH": acc_olh,
    "SS": acc_ss,
    "SUE": acc_sue,
    "OUE": acc_oue,
}


def attacker_accuracy(protocol: str, epsilon: float, k: int) -> float:
    """Dispatch to the analytical accuracy of ``protocol``."""
    try:
        func = ANALYTICAL_ACC[protocol.upper()]
    except KeyError as exc:
        raise InvalidParameterError(
            f"unknown protocol {protocol!r}; expected one of {sorted(ANALYTICAL_ACC)}"
        ) from exc
    return func(epsilon, k)


# --------------------------------------------------------------------------- #
# multi-collection profiling accuracies (Eqs. 4 and 5)
# --------------------------------------------------------------------------- #
def profiling_accuracy_uniform(protocol: str, epsilon: float, sizes: Sequence[int]) -> float:
    """Eq. (4): expected probability of profiling a user on all ``d`` attributes.

    With a uniform privacy metric (sampling without replacement) the user
    reports every attribute exactly once across the ``d`` surveys, so the
    profiling accuracy is the product of per-attribute attack accuracies.
    """
    sizes = list(sizes)
    if not sizes:
        raise InvalidParameterError("sizes must not be empty")
    return float(np.prod([attacker_accuracy(protocol, epsilon, k) for k in sizes]))


def profiling_accuracy_non_uniform(protocol: str, epsilon: float, sizes: Sequence[int]) -> float:
    """Eq. (5): profiling accuracy with replacement (non-uniform privacy metric).

    In survey ``j`` the probability of drawing a not-yet-reported attribute is
    ``(d + 1 - j) / d``; the product over surveys is the probability the user
    ends up with a complete profile, each attribute being attacked once.
    """
    sizes = list(sizes)
    if not sizes:
        raise InvalidParameterError("sizes must not be empty")
    d = len(sizes)
    factors = [
        (d + 1 - j) / d * attacker_accuracy(protocol, epsilon, k)
        for j, k in enumerate(sizes, start=1)
    ]
    return float(np.prod(factors))


# --------------------------------------------------------------------------- #
# frequency-estimator variances (utility analysis of the oracles)
# --------------------------------------------------------------------------- #
def oracle_variance(protocol: str, epsilon: float, k: int, n: int, f: float = 0.0) -> float:
    """Approximate variance of the frequency estimator of ``protocol``.

    Uses ``Var = gamma (1 - gamma) / (n (p - q)^2)`` with
    ``gamma = f (p - q) + q`` and the protocol's estimator parameters.
    """
    epsilon, k = validate_epsilon(epsilon), _validate_k(k)
    if n <= 0:
        raise InvalidParameterError("n must be positive")
    e = math.exp(epsilon)
    protocol = protocol.upper()
    if protocol == "GRR":
        p, q = e / (e + k - 1), 1.0 / (e + k - 1)
    elif protocol == "OLH":
        g = max(2, int(round(e)) + 1)
        p, q = e / (e + g - 1), 1.0 / g
    elif protocol == "SS":
        omega = optimal_subset_size(k, epsilon)
        p = omega * e / (omega * e + k - omega)
        q = (omega * e * (omega - 1) + (k - omega) * omega) / ((k - 1) * (omega * e + k - omega))
    elif protocol == "SUE":
        half = math.exp(epsilon / 2.0)
        p, q = half / (half + 1.0), 1.0 / (half + 1.0)
    elif protocol == "OUE":
        p, q = 0.5, 1.0 / (e + 1.0)
    else:
        raise InvalidParameterError(f"unknown protocol {protocol!r}")
    gamma = f * (p - q) + q
    return gamma * (1.0 - gamma) / (n * (p - q) ** 2)
