"""Unary-encoding protocols: SUE (Basic One-time RAPPOR) and OUE.

Unary-encoding (UE) protocols one-hot encode the user's value into a
``k``-bit vector ``B`` and flip each bit independently:

* ``Pr[B'_i = 1 | B_i = 1] = p``
* ``Pr[B'_i = 1 | B_i = 0] = q``

Two parameterizations are studied by the paper:

* **SUE** (symmetric UE, a.k.a. Basic One-time RAPPOR):
  ``p = e^{eps/2} / (e^{eps/2} + 1)``, ``q = 1 - p``.
* **OUE** (optimized UE): ``p = 1/2``, ``q = 1 / (e^eps + 1)``.

Both satisfy ``eps``-LDP with ``eps = ln(p (1-q) / ((1-p) q))``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import binom

from ..core.frequencies import validate_probability_vector
from ..core.rng import RngLike
from ..exceptions import InvalidParameterError
from .base import FrequencyOracle
from .streaming import PackedBits, resolve_chunk_size


class UnaryEncoding(FrequencyOracle):
    """Generic unary-encoding protocol with arbitrary ``(p, q)``.

    Subclasses fix ``(p, q)`` from ``epsilon``; this class also supports the
    fake-data generation modes used by RS+FD (perturbing zero vectors or
    uniformly random one-hot vectors).

    Parameters
    ----------
    k, epsilon, rng:
        As for every :class:`~repro.protocols.base.FrequencyOracle`.
    packed:
        When true, ``randomize_many`` and the fake-data generators return
        bit-packed :class:`~repro.protocols.streaming.PackedBits` reports
        (k/8 bytes per user instead of k) and are generated chunk-wise so the
        dense bit matrix never exceeds ``chunk_size × k``.  The server-side
        methods accept packed and dense reports interchangeably, with
        byte-identical estimates.
    chunk_size:
        Rows materialized at once by the packed generator and the packed
        server kernels (default ``DEFAULT_CHUNK_SIZE``).
    """

    name = "UE"

    def __init__(
        self,
        k: int,
        epsilon: float,
        rng: RngLike = None,
        packed: bool = False,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(k, epsilon, rng)
        self.packed = bool(packed)
        self.chunk_size = resolve_chunk_size(chunk_size)

    # -- parameters (overridden) --------------------------------------------
    @property
    def p(self) -> float:  # pragma: no cover - abstract-ish, overridden
        raise NotImplementedError

    @property
    def q(self) -> float:  # pragma: no cover - abstract-ish, overridden
        raise NotImplementedError

    @property
    def effective_epsilon(self) -> float:
        """``ln(p(1-q) / ((1-p)q))`` — the budget actually guaranteed."""
        return math.log(self.p * (1.0 - self.q) / ((1.0 - self.p) * self.q))

    # -- encoding ------------------------------------------------------------
    def encode(self, value: int) -> np.ndarray:
        """One-hot encode ``value`` into a ``k``-bit vector."""
        value = self._validate_value(value)
        vector = np.zeros(self.k, dtype=np.uint8)
        vector[value] = 1
        return vector

    def _perturb_bits(self, bits: np.ndarray) -> np.ndarray:
        """Flip a (n, k) or (k,) bit matrix with probabilities ``p``/``q``."""
        bits = np.asarray(bits, dtype=np.uint8)
        rand = self._rng.random(bits.shape)
        keep_one = rand < self.p
        flip_zero = rand < self.q
        return np.where(bits == 1, keep_one, flip_zero).astype(np.uint8)

    # -- client ------------------------------------------------------------
    def randomize(self, value: int) -> np.ndarray:
        return self._perturb_bits(self.encode(value))

    def _perturbed_onehot_chunk(self, values: np.ndarray | None, count: int) -> np.ndarray:
        """Perturbed one-hot rows (``values is None`` = all-zero rows)."""
        bits = np.zeros((count, self.k), dtype=np.uint8)
        if values is not None:
            bits[np.arange(count), values] = 1
        return self._perturb_bits(bits)

    def _emit_reports(self, values: np.ndarray | None, count: int) -> np.ndarray | PackedBits:
        """Generate ``count`` perturbed rows, bit-packed chunk-wise if enabled."""
        if not self.packed:
            return self._perturbed_onehot_chunk(values, count)
        packed = PackedBits.empty(count, self.k)
        for start in range(0, count, self.chunk_size):
            stop = min(start + self.chunk_size, count)
            chunk_values = None if values is None else values[start:stop]
            bits = self._perturbed_onehot_chunk(chunk_values, stop - start)
            packed.data[start:stop] = np.packbits(bits, axis=1)
        return packed

    def randomize_many(self, values: np.ndarray) -> np.ndarray | PackedBits:
        values = self._validate_values(values)
        return self._emit_reports(values, values.size)

    def randomize_zero_vector(self, count: int = 1) -> np.ndarray | PackedBits:
        """Perturb ``count`` all-zero vectors (RS+FD[UE-z] fake data)."""
        return self._emit_reports(None, count)

    def randomize_random_onehot(
        self, count: int = 1, priors: np.ndarray | None = None
    ) -> np.ndarray | PackedBits:
        """Perturb ``count`` random one-hot vectors (RS+FD/RS+RFD [UE-r] fake data).

        Values are drawn uniformly when ``priors`` is ``None``, otherwise
        following the supplied distribution (RS+RFD realistic fake data).
        ``priors`` must be a finite non-negative length-``k`` vector with
        positive mass; anything else raises
        :class:`~repro.exceptions.InvalidParameterError` instead of producing
        NaN probabilities deep inside ``rng.choice``.
        """
        if priors is None:
            values = self._rng.integers(0, self.k, size=count)
        else:
            priors = validate_probability_vector(
                priors, self.k, context=f"{self.name} fake-data priors"
            )
            values = self._rng.choice(self.k, size=count, p=priors)
        return self._emit_reports(values, count)

    # -- server ------------------------------------------------------------
    def validate_reports(
        self, reports: np.ndarray | PackedBits
    ) -> np.ndarray | PackedBits:
        """UE wire format: ``(n, k)`` 0/1 bit rows (or :class:`PackedBits`
        over the same ``k``).

        A wrong-width dense matrix would crash the accumulator's O(k) count
        vector with a broadcast error, and non-bit values would silently
        corrupt the column sums; both are rejected at the ingest edge.
        """
        if isinstance(reports, PackedBits):
            if reports.k != self.k:
                raise InvalidParameterError(
                    f"{self.name} packed reports have k={reports.k}, "
                    f"expected k={self.k}"
                )
            return reports
        reports = np.asarray(reports)
        if reports.size == 0:
            return reports.reshape(0, self.k)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        if reports.ndim != 2 or reports.shape[1] != self.k:
            raise InvalidParameterError(
                f"{self.name} reports must be (n, {self.k}) bit rows, "
                f"got shape {reports.shape}"
            )
        if np.any((reports != 0) & (reports != 1)):
            raise InvalidParameterError(
                f"{self.name} reports must contain only 0/1 bits"
            )
        return reports

    def _support_counts_dense(self, reports: np.ndarray | PackedBits) -> np.ndarray:
        if isinstance(reports, PackedBits):
            return reports.column_sums(self.chunk_size)
        reports = np.asarray(reports)
        if reports.size == 0:
            # a zero-row chunk supports nothing; without this guard the 1-D
            # fallback reshapes (0,) into (1, 0) and the column sum comes out
            # with shape (0,) instead of (k,)
            return np.zeros(self.k, dtype=float)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        return reports.sum(axis=0).astype(float)

    def _num_reports(self, reports: np.ndarray | PackedBits) -> int:
        if isinstance(reports, PackedBits):
            return len(reports)
        reports = np.asarray(reports)
        if reports.size == 0:
            # an empty dense chunk is zero reports, not one 1-D report
            return 0
        return 1 if reports.ndim == 1 else int(reports.shape[0])

    def _fingerprint_params(self) -> dict[str, object]:
        # packed and dense accumulators count the same bits, but packing is
        # part of the wire/report format contract; keep shards homogeneous
        return {"packed": self.packed}

    # -- attack --------------------------------------------------------------
    def attack(self, report: np.ndarray) -> int:
        """Plausible-deniability attack on one sanitized bit vector.

        * exactly one bit set → predict that bit;
        * several bits set → predict uniformly among them;
        * no bit set → predict uniformly over the domain.
        """
        report = np.asarray(report).ravel()
        ones = np.flatnonzero(report == 1)
        if ones.size == 1:
            return int(ones[0])
        if ones.size > 1:
            return int(self._rng.choice(ones))
        return int(self._rng.integers(0, self.k))

    def _attack_dense(self, reports: np.ndarray | PackedBits) -> np.ndarray:
        if isinstance(reports, PackedBits):
            if len(reports) == 0:
                return np.empty(0, dtype=np.int64)
            # unpack at most chunk_size rows at a time so the dense bit
            # matrix stays bounded
            return np.concatenate(
                [
                    self._attack_block(reports.unpack(start, start + self.chunk_size))
                    for start in range(0, len(reports), self.chunk_size)
                ]
            )
        reports = np.asarray(reports)
        if reports.size == 0:
            return np.empty(0, dtype=np.int64)
        if reports.ndim == 1:
            reports = reports.reshape(1, -1)
        return self._attack_block(reports)

    def _attack_block(self, reports: np.ndarray) -> np.ndarray:
        """Attack kernel over one ``(m, k)`` bit block."""
        n = reports.shape[0]
        counts = reports.sum(axis=1)
        guesses = np.empty(n, dtype=np.int64)
        # no bits set: uniform over the domain
        none_mask = counts == 0
        guesses[none_mask] = self._rng.integers(0, self.k, size=int(none_mask.sum()))
        # at least one bit set: uniform among the set bits, vectorized by
        # picking a random rank and taking the corresponding set-bit index
        some_mask = ~none_mask
        if some_mask.any():
            rows = np.flatnonzero(some_mask)
            ranks = (self._rng.random(rows.size) * counts[rows]).astype(np.int64)
            cumulative = np.cumsum(reports[rows], axis=1)
            guesses[rows] = np.argmax(cumulative > ranks[:, None], axis=1)
        return guesses

    def expected_attack_accuracy(self) -> float:
        """Closed-form expected attack accuracy for a generic UE protocol.

        With true bit kept with probability ``p`` and the ``k - 1`` other bits
        turned on independently with probability ``q``:

        * no bit set: ``(1-p) (1-q)^{k-1}`` and a uniform guess ``1/k``;
        * true bit set and ``i-1`` extra bits set: ``p * Bin(i-1; k-1, q)``
          with a uniform guess among the ``i`` set bits.
        """
        k, p, q = self.k, self.p, self.q
        accuracy = (1.0 - p) * (1.0 - q) ** (k - 1) / k
        i = np.arange(1, k + 1)
        accuracy += float(np.sum((p / i) * binom.pmf(i - 1, k - 1, q)))
        return accuracy


class SUE(UnaryEncoding):
    """Symmetric Unary Encoding (Basic One-time RAPPOR)."""

    name = "SUE"

    @property
    def p(self) -> float:
        half = math.exp(self.epsilon / 2.0)
        return half / (half + 1.0)

    @property
    def q(self) -> float:
        half = math.exp(self.epsilon / 2.0)
        return 1.0 / (half + 1.0)


class OUE(UnaryEncoding):
    """Optimized Unary Encoding (Wang et al., 2017)."""

    name = "OUE"

    @property
    def p(self) -> float:
        return 0.5

    @property
    def q(self) -> float:
        return 1.0 / (math.exp(self.epsilon) + 1.0)
