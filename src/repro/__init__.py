"""repro — reproduction of *On the Risks of Collecting Multidimensional Data
Under Local Differential Privacy* (Arcolezi et al., VLDB 2023).

The package is organized as follows:

* :mod:`repro.core` — domains, datasets, frequency estimates, composition;
* :mod:`repro.protocols` — the five LDP frequency oracles (GRR, OLH, ω-SS,
  SUE, OUE) with client-side randomization, server-side estimation and the
  plausible-deniability attack;
* :mod:`repro.multidim` — the SPL, SMP, RS+FD and RS+RFD solutions for
  multidimensional frequency estimation;
* :mod:`repro.attacks` — profile building, re-identification (FK-RI / PK-RI)
  and attribute-inference (NK / PK / HM) attacks;
* :mod:`repro.privacy` — Laplace mechanism, prior generators and the PIE
  relaxation of LDP;
* :mod:`repro.ml` — the from-scratch gradient-boosting classifier used by
  the attribute-inference attack (XGBoost stand-in);
* :mod:`repro.datasets` — synthetic Adult / ACSEmployment / Nursery
  surrogates;
* :mod:`repro.experiments` — runners regenerating every figure of the paper.
"""

from .core import (
    Attribute,
    Domain,
    FrequencyEstimate,
    TabularDataset,
    amplified_epsilon,
    averaged_mse,
    true_frequencies,
)
from .exceptions import (
    DomainMismatchError,
    EstimationError,
    InvalidParameterError,
    InvalidPrivacyBudgetError,
    NotFittedError,
    ReproError,
)
from .multidim import RSFD, RSRFD, SMP, SPL
from .protocols import GRR, OLH, OUE, SUE, SubsetSelection, make_protocol

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Attribute",
    "Domain",
    "TabularDataset",
    "FrequencyEstimate",
    "true_frequencies",
    "averaged_mse",
    "amplified_epsilon",
    "GRR",
    "OLH",
    "SubsetSelection",
    "SUE",
    "OUE",
    "make_protocol",
    "SPL",
    "SMP",
    "RSFD",
    "RSRFD",
    "ReproError",
    "InvalidParameterError",
    "InvalidPrivacyBudgetError",
    "DomainMismatchError",
    "EstimationError",
    "NotFittedError",
]
