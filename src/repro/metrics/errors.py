"""Utility metrics for frequency estimation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.frequencies import FrequencyEstimate, averaged_mse
from ..exceptions import InvalidParameterError


def mse_avg(estimates: Sequence[FrequencyEstimate], dataset: TabularDataset) -> float:
    """Paper's ``MSE_avg``: mean over attributes of per-value squared error."""
    if len(estimates) != dataset.d:
        raise InvalidParameterError(
            f"expected {dataset.d} estimates, got {len(estimates)}"
        )
    truths = dataset.all_frequencies()
    return averaged_mse(estimates, truths)


def max_absolute_error(estimate: FrequencyEstimate, truth: np.ndarray) -> float:
    """Largest absolute deviation of one attribute's estimate."""
    truth = np.asarray(truth, dtype=float)
    if truth.shape != estimate.estimates.shape:
        raise InvalidParameterError("estimate and truth must have the same shape")
    return float(np.max(np.abs(estimate.estimates - truth)))


def total_variation_distance(estimate: FrequencyEstimate, truth: np.ndarray) -> float:
    """Total-variation distance between the normalized estimate and the truth."""
    truth = np.asarray(truth, dtype=float)
    if truth.shape != estimate.estimates.shape:
        raise InvalidParameterError("estimate and truth must have the same shape")
    return float(0.5 * np.sum(np.abs(estimate.normalized() - truth)))
