"""Attack-accuracy metrics (ACC, RID-ACC, AIF-ACC)."""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError


def _check_pair(truth: np.ndarray, prediction: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth).ravel()
    prediction = np.asarray(prediction).ravel()
    if truth.shape != prediction.shape:
        raise InvalidParameterError("truth and prediction must have the same shape")
    if truth.size == 0:
        raise InvalidParameterError("cannot compute accuracy on empty arrays")
    return truth, prediction


def attack_accuracy(truth: np.ndarray, prediction: np.ndarray) -> float:
    """``ACC_FO``: fraction of correctly inferred values (Sec. 3.2.1)."""
    truth, prediction = _check_pair(truth, prediction)
    return float(np.mean(truth == prediction))


def attribute_inference_accuracy(truth: np.ndarray, prediction: np.ndarray) -> float:
    """``AIF-ACC``: fraction of correctly inferred sampled attributes."""
    return attack_accuracy(truth, prediction)


def reidentification_accuracy(true_ids: np.ndarray, candidate_sets: np.ndarray) -> float:
    """``RID-ACC``: fraction of users whose id is within their top-k candidates.

    ``candidate_sets`` has shape ``(n, top_k)``.
    """
    true_ids = np.asarray(true_ids, dtype=np.int64).ravel()
    candidate_sets = np.asarray(candidate_sets, dtype=np.int64)
    if candidate_sets.ndim != 2 or candidate_sets.shape[0] != true_ids.shape[0]:
        raise InvalidParameterError(
            "candidate_sets must have shape (n, top_k) aligned with true_ids"
        )
    return float(np.mean((candidate_sets == true_ids[:, None]).any(axis=1)))


def as_percentage(value: float) -> float:
    """Convert a fraction to the percentage scale used by the paper's plots."""
    return 100.0 * float(value)
