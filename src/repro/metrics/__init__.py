"""Evaluation metrics: estimation error and attack accuracies."""

from .accuracy import (
    as_percentage,
    attack_accuracy,
    attribute_inference_accuracy,
    reidentification_accuracy,
)
from .errors import max_absolute_error, mse_avg, total_variation_distance

__all__ = [
    "mse_avg",
    "max_absolute_error",
    "total_variation_distance",
    "attack_accuracy",
    "attribute_inference_accuracy",
    "reidentification_accuracy",
    "as_percentage",
]
