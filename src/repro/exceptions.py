"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating from this package with a single ``except``
clause while still being able to distinguish configuration problems from
privacy-parameter problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid range.

    Examples include a non-positive privacy budget, a domain size below two
    or a fraction outside ``[0, 1]``.
    """


class InvalidPrivacyBudgetError(InvalidParameterError):
    """The privacy budget ``epsilon`` is not a positive, finite number."""


class DomainMismatchError(ReproError, ValueError):
    """Data and domain descriptions are inconsistent.

    Raised, for instance, when a dataset column contains values outside the
    declared attribute domain, or when a tuple has a different number of
    attributes than the :class:`~repro.core.domain.Domain` describing it.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model or estimator was used before being fitted."""


class EstimationError(ReproError, RuntimeError):
    """Frequency estimation could not be carried out.

    Raised when an aggregator receives no reports, or reports whose shape is
    incompatible with the protocol that produced them.
    """


class GridExecutionError(ReproError, RuntimeError):
    """A grid executor finished without a result for every pending cell.

    Raised by :func:`repro.experiments.grid.run_grid` when the configured
    executor returns without recording rows for some cells (e.g. a shard
    worker process died), and by the sharded executor when a worker
    invocation exits non-zero.
    """


class ShardMergeError(ReproError, RuntimeError):
    """Per-shard partial artifacts cannot be merged into a figure artifact.

    Carries structured detail so callers can report precisely *which* cells
    are affected instead of truncating silently:

    Attributes
    ----------
    missing:
        Cell descriptors (``runner`` plus canonical parameter JSON) of the
        planned cells absent from every supplied partial artifact.
    conflicting:
        Descriptors of cells that appear in several partial artifacts with
        differing rows.
    """

    def __init__(
        self,
        message: str,
        missing: "tuple | list" = (),
        conflicting: "tuple | list" = (),
    ) -> None:
        super().__init__(message)
        self.missing = list(missing)
        self.conflicting = list(conflicting)
