"""Analytical variances of the RS+FD and RS+RFD estimators.

Theorems 2 and 4 of the paper give, for both families, a variance of the form

``Var[f_hat(v)] = d^2 * gamma * (1 - gamma) / (n (p - q)^2)``

where ``gamma`` is the marginal probability that a report supports ``v``:

* RS+FD[GRR]:    ``gamma = (q + f (p-q) + (d-1)/k) / d``
* RS+FD[UE-z]:   ``gamma = (f (p-q) + q + (d-1) q) / d``
* RS+FD[UE-r]:   ``gamma = (f (p-q) + q + (d-1)((p-q)/k + q)) / d``
* RS+RFD[GRR]:   ``gamma = (q + f (p-q) + (d-1) f~) / d``           (Eq. 8)
* RS+RFD[UE-r]:  ``gamma = (f (p-q) + q + (d-1)(f~ (p-q) + q)) / d``  (Eq. 9)

These expressions drive the *analytical* curves of Fig. 16; the paper plots
the approximate variance obtained by setting ``f = 0``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.composition import amplified_epsilon, validate_epsilon
from ..exceptions import InvalidParameterError


def _grr_parameters(epsilon_prime: float, k: int) -> tuple[float, float]:
    e = math.exp(epsilon_prime)
    p = e / (e + k - 1)
    return p, (1.0 - p) / (k - 1)


def _ue_parameters(epsilon_prime: float, kind: str) -> tuple[float, float]:
    kind = kind.upper()
    if kind == "SUE":
        half = math.exp(epsilon_prime / 2.0)
        return half / (half + 1.0), 1.0 / (half + 1.0)
    if kind == "OUE":
        return 0.5, 1.0 / (math.exp(epsilon_prime) + 1.0)
    raise InvalidParameterError(f"ue_kind must be 'SUE' or 'OUE', got {kind!r}")


def _variance_from_gamma(gamma: float, d: int, n: int, p: float, q: float) -> float:
    gamma = min(max(gamma, 0.0), 1.0)
    return d * d * gamma * (1.0 - gamma) / (n * (p - q) ** 2)


def rsfd_variance(
    protocol: str,
    epsilon: float,
    k: int,
    d: int,
    n: int,
    f: float = 0.0,
    ue_kind: str = "OUE",
) -> float:
    """Approximate estimator variance of an RS+FD protocol for one value.

    ``protocol`` is ``"grr"``, ``"ue-z"`` or ``"ue-r"``.
    """
    epsilon = validate_epsilon(epsilon)
    if k < 2 or d < 2 or n <= 0:
        raise InvalidParameterError("require k >= 2, d >= 2 and n > 0")
    epsilon_prime = amplified_epsilon(epsilon, d)
    protocol = protocol.lower()
    if protocol == "grr":
        p, q = _grr_parameters(epsilon_prime, k)
        gamma = (q + f * (p - q) + (d - 1) / k) / d
    elif protocol == "ue-z":
        p, q = _ue_parameters(epsilon_prime, ue_kind)
        gamma = (f * (p - q) + q + (d - 1) * q) / d
    elif protocol == "ue-r":
        p, q = _ue_parameters(epsilon_prime, ue_kind)
        gamma = (f * (p - q) + q + (d - 1) * ((p - q) / k + q)) / d
    else:
        raise InvalidParameterError(
            f"protocol must be 'grr', 'ue-z' or 'ue-r', got {protocol!r}"
        )
    return _variance_from_gamma(gamma, d, n, p, q)


def rsrfd_variance(
    protocol: str,
    epsilon: float,
    k: int,
    d: int,
    n: int,
    prior_value: float,
    f: float = 0.0,
    ue_kind: str = "OUE",
) -> float:
    """Estimator variance of an RS+RFD protocol for one value (Eqs. 8-9).

    ``prior_value`` is the prior probability ``f~_j(v)`` of the value whose
    variance is evaluated.
    """
    epsilon = validate_epsilon(epsilon)
    if k < 2 or d < 2 or n <= 0:
        raise InvalidParameterError("require k >= 2, d >= 2 and n > 0")
    if not 0.0 <= prior_value <= 1.0:
        raise InvalidParameterError("prior_value must be in [0, 1]")
    epsilon_prime = amplified_epsilon(epsilon, d)
    protocol = protocol.lower()
    if protocol == "grr":
        p, q = _grr_parameters(epsilon_prime, k)
        gamma = (q + f * (p - q) + (d - 1) * prior_value) / d
    elif protocol == "ue-r":
        p, q = _ue_parameters(epsilon_prime, ue_kind)
        gamma = (f * (p - q) + q + (d - 1) * (prior_value * (p - q) + q)) / d
    else:
        raise InvalidParameterError(
            f"protocol must be 'grr' or 'ue-r', got {protocol!r}"
        )
    return _variance_from_gamma(gamma, d, n, p, q)


def averaged_analytical_variance(
    solution: str,
    protocol: str,
    epsilon: float,
    sizes: Sequence[int],
    n: int,
    priors: Sequence[np.ndarray] | None = None,
    ue_kind: str = "OUE",
) -> float:
    """Average approximate variance over attributes and values.

    This mirrors the paper's analytical ``MSE_avg`` curves (Fig. 16): for each
    attribute ``j`` and value ``v``, evaluate the variance at ``f = 0`` and
    average first over values, then over attributes.

    ``solution`` is ``"rsfd"`` or ``"rsrfd"``; for RS+RFD the per-attribute
    ``priors`` are required.
    """
    sizes = [int(k) for k in sizes]
    d = len(sizes)
    if d < 2:
        raise InvalidParameterError("at least two attributes are required")
    solution = solution.lower()
    per_attribute = []
    for j, k in enumerate(sizes):
        if solution == "rsfd":
            variance = rsfd_variance(protocol, epsilon, k, d, n, ue_kind=ue_kind)
            per_attribute.append(variance)
        elif solution == "rsrfd":
            if priors is None:
                raise InvalidParameterError("RS+RFD analytical variance needs priors")
            prior = np.asarray(priors[j], dtype=float)
            values = [
                rsrfd_variance(protocol, epsilon, k, d, n, float(pv), ue_kind=ue_kind)
                for pv in prior
            ]
            per_attribute.append(float(np.mean(values)))
        else:
            raise InvalidParameterError("solution must be 'rsfd' or 'rsrfd'")
    return float(np.mean(per_attribute))
