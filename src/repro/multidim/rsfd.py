"""RS+FD: Random Sampling Plus Fake Data (Arcolezi et al., CIKM 2021).

Each user samples one attribute, sanitizes it with the amplified budget
``epsilon' = ln(d (e^eps - 1) + 1)`` and *hides* it by also transmitting one
uniformly random fake value for every non-sampled attribute, so the
aggregator cannot tell which attribute carries the LDP report.

Three variants are studied by the paper, differing in the local randomizer
and the fake-data generation procedure:

* ``RS+FD[GRR]`` — GRR randomizer, fake values drawn uniformly from the
  attribute's domain;
* ``RS+FD[UE-z]`` — UE randomizer (SUE or OUE), fake reports obtained by
  perturbing the all-zero vector;
* ``RS+FD[UE-r]`` — UE randomizer, fake reports obtained by perturbing a
  uniformly random one-hot vector.

The unbiased estimators of Sec. 2.3.2 are implemented in :meth:`RSFD.estimate`.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..core.composition import amplified_epsilon
from ..core.dataset import TabularDataset
from ..core.domain import Domain
from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike
from ..exceptions import EstimationError, InvalidParameterError
from ..protocols.grr import GRR
from ..protocols.streaming import PackedBits, validate_chunk_size
from ..protocols.ue import OUE, SUE, UnaryEncoding
from .base import FakeDataCountsMixin, MultidimReports, MultidimSolution, sample_attributes

FakeDataVariant = Literal["grr", "ue-z", "ue-r"]
UEKind = Literal["SUE", "OUE"]


def _make_ue(
    kind: str,
    k: int,
    epsilon: float,
    rng,
    packed: bool = False,
    chunk_size: int | None = None,
) -> UnaryEncoding:
    kind = kind.upper()
    if kind == "SUE":
        return SUE(k, epsilon, rng=rng, packed=packed, chunk_size=chunk_size)
    if kind == "OUE":
        return OUE(k, epsilon, rng=rng, packed=packed, chunk_size=chunk_size)
    raise InvalidParameterError(f"ue_kind must be 'SUE' or 'OUE', got {kind!r}")


class RSFD(FakeDataCountsMixin, MultidimSolution):
    """Random Sampling Plus Fake Data solution.

    Parameters
    ----------
    domain:
        Attributes to collect.
    epsilon:
        Per-user privacy budget (amplification to ``epsilon'`` is handled
        internally).
    variant:
        Fake-data variant: ``"grr"``, ``"ue-z"`` or ``"ue-r"``.
    ue_kind:
        ``"SUE"`` or ``"OUE"``; only used by the UE variants.
    packed:
        Store UE report columns bit-packed
        (:class:`~repro.protocols.streaming.PackedBits`, k/8 bytes per user
        instead of k).  Estimation is byte-identical; ignored by the GRR
        variant whose integer codes are already compact.
    chunk_size:
        Rows the UE randomizers and packed count kernels materialize at
        once (default ``DEFAULT_CHUNK_SIZE``).
    rng:
        Seed or generator.
    """

    name = "RS+FD"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        variant: FakeDataVariant = "grr",
        ue_kind: UEKind = "OUE",
        rng: RngLike = None,
        packed: bool = False,
        chunk_size: int | None = None,
    ) -> None:
        variant = variant.lower()
        if variant not in ("grr", "ue-z", "ue-r"):
            raise InvalidParameterError(
                f"variant must be 'grr', 'ue-z' or 'ue-r', got {variant!r}"
            )
        protocol = "GRR" if variant == "grr" else ue_kind.upper()
        super().__init__(domain, epsilon, protocol=protocol, rng=rng)
        self.variant = variant
        self.ue_kind = ue_kind.upper()
        self.packed = bool(packed)
        self.chunk_size = validate_chunk_size(chunk_size)
        self.amplified_epsilon = amplified_epsilon(self.epsilon, self.domain.d)

    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Paper-style protocol label, e.g. ``"RS+FD[OUE-z]"``."""
        if self.variant == "grr":
            return "RS+FD[GRR]"
        suffix = "z" if self.variant == "ue-z" else "r"
        return f"RS+FD[{self.ue_kind}-{suffix}]"

    def _randomizer(self, attribute: int):
        """Local randomizer for ``attribute`` at the amplified budget."""
        k = self.domain.size_of(attribute)
        if self.variant == "grr":
            return GRR(k, self.amplified_epsilon, rng=self._rng)
        return _make_ue(
            self.ue_kind,
            k,
            self.amplified_epsilon,
            rng=self._rng,
            packed=self.packed,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def collect(
        self, dataset: TabularDataset, sampled: np.ndarray | None = None
    ) -> MultidimReports:
        """Produce one full tuple (LDP value + fake values) per user."""
        self._check_dataset(dataset)
        n = dataset.n
        if sampled is None:
            sampled = sample_attributes(n, self.domain.d, self._rng)
        else:
            sampled = np.asarray(sampled, dtype=np.int64)
            if sampled.shape != (n,):
                raise EstimationError(f"sampled must have shape ({n},)")

        per_attribute = []
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            randomizer = self._randomizer(j)
            rows_true = np.flatnonzero(sampled == j)
            rows_fake = np.flatnonzero(sampled != j)
            if self.variant == "grr":
                column = np.empty(n, dtype=np.int64)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                column[rows_fake] = self._rng.integers(0, k, size=rows_fake.size)
            elif self.packed:
                column = PackedBits.empty(n, k)
                if rows_true.size:
                    column.data[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    ).data
                if rows_fake.size:
                    column.data[rows_fake] = self._generate_fake_ue(
                        randomizer, rows_fake.size
                    ).data
            else:
                column = np.zeros((n, k), dtype=np.uint8)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                if rows_fake.size:
                    column[rows_fake] = self._generate_fake_ue(randomizer, rows_fake.size)
            per_attribute.append(column)

        return MultidimReports(
            solution=self.name,
            protocol=self.protocol,
            epsilon=self.epsilon,
            domain=self.domain,
            n=n,
            per_attribute=per_attribute,
            sampled=sampled,
            extra={
                "variant": self.variant,
                "ue_kind": self.ue_kind,
                "label": self.label,
                "amplified_epsilon": self.amplified_epsilon,
            },
        )

    def _generate_fake_ue(self, randomizer: UnaryEncoding, count: int) -> np.ndarray:
        if self.variant == "ue-z":
            return randomizer.randomize_zero_vector(count)
        return randomizer.randomize_random_onehot(count)

    # ------------------------------------------------------------------ #
    # server side
    # ------------------------------------------------------------------ #
    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        """Per-attribute unbiased estimates (Sec. 2.3.2).

        ``reports.per_attribute[j]`` may be a dense array, a bit-packed
        :class:`~repro.protocols.streaming.PackedBits` matrix or an iterable
        of report chunks; all produce byte-identical estimates.
        """
        return self._estimates_from_counts(*self._counts_from_reports(reports))

    # -- streaming hooks (counting inherited from FakeDataCountsMixin) ------
    def _estimates_from_counts(self, counts_list, ns) -> list[FrequencyEstimate]:
        estimates = []
        d = self.domain.d
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            n = int(ns[j])
            if n <= 0:
                raise EstimationError("cannot estimate from zero reports")
            randomizer = self._randomizer(j)
            p, q = randomizer.p, randomizer.q
            counts = np.asarray(counts_list[j], dtype=float)
            if self.variant == "grr":
                # RS+FD[GRR] estimator (Sec. 2.3.2)
                values = (counts * d * k - n * (d - 1 + q * k)) / (n * k * (p - q))
            elif self.variant == "ue-z":
                # RS+FD[UE-z] estimator
                values = d * (counts - n * q) / (n * (p - q))
            else:
                # RS+FD[UE-r] estimator
                bias = q * k + (p - q) * (d - 1) + q * k * (d - 1)
                values = (counts * d * k - n * bias) / (n * k * (p - q))
            estimates.append(
                FrequencyEstimate(
                    estimates=values,
                    attribute=self.domain[j].name,
                    n=n,
                    metadata={
                        "solution": self.name,
                        "protocol": self.label,
                        "epsilon": self.epsilon,
                        "amplified_epsilon": self.amplified_epsilon,
                        "k": k,
                    },
                )
            )
        return estimates
