"""RS+FD: Random Sampling Plus Fake Data (Arcolezi et al., CIKM 2021).

Each user samples one attribute, sanitizes it with the amplified budget
``epsilon' = ln(d (e^eps - 1) + 1)`` and *hides* it by also transmitting one
uniformly random fake value for every non-sampled attribute, so the
aggregator cannot tell which attribute carries the LDP report.

Three variants are studied by the paper, differing in the local randomizer
and the fake-data generation procedure:

* ``RS+FD[GRR]`` — GRR randomizer, fake values drawn uniformly from the
  attribute's domain;
* ``RS+FD[UE-z]`` — UE randomizer (SUE or OUE), fake reports obtained by
  perturbing the all-zero vector;
* ``RS+FD[UE-r]`` — UE randomizer, fake reports obtained by perturbing a
  uniformly random one-hot vector.

The unbiased estimators of Sec. 2.3.2 are implemented in :meth:`RSFD.estimate`.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..core.composition import amplified_epsilon
from ..core.dataset import TabularDataset
from ..core.domain import Domain
from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike
from ..exceptions import EstimationError, InvalidParameterError
from ..protocols.grr import GRR
from ..protocols.ue import OUE, SUE, UnaryEncoding
from .base import MultidimReports, MultidimSolution, sample_attributes

FakeDataVariant = Literal["grr", "ue-z", "ue-r"]
UEKind = Literal["SUE", "OUE"]


def _make_ue(kind: str, k: int, epsilon: float, rng) -> UnaryEncoding:
    kind = kind.upper()
    if kind == "SUE":
        return SUE(k, epsilon, rng=rng)
    if kind == "OUE":
        return OUE(k, epsilon, rng=rng)
    raise InvalidParameterError(f"ue_kind must be 'SUE' or 'OUE', got {kind!r}")


class RSFD(MultidimSolution):
    """Random Sampling Plus Fake Data solution.

    Parameters
    ----------
    domain:
        Attributes to collect.
    epsilon:
        Per-user privacy budget (amplification to ``epsilon'`` is handled
        internally).
    variant:
        Fake-data variant: ``"grr"``, ``"ue-z"`` or ``"ue-r"``.
    ue_kind:
        ``"SUE"`` or ``"OUE"``; only used by the UE variants.
    rng:
        Seed or generator.
    """

    name = "RS+FD"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        variant: FakeDataVariant = "grr",
        ue_kind: UEKind = "OUE",
        rng: RngLike = None,
    ) -> None:
        variant = variant.lower()
        if variant not in ("grr", "ue-z", "ue-r"):
            raise InvalidParameterError(
                f"variant must be 'grr', 'ue-z' or 'ue-r', got {variant!r}"
            )
        protocol = "GRR" if variant == "grr" else ue_kind.upper()
        super().__init__(domain, epsilon, protocol=protocol, rng=rng)
        self.variant = variant
        self.ue_kind = ue_kind.upper()
        self.amplified_epsilon = amplified_epsilon(self.epsilon, self.domain.d)

    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Paper-style protocol label, e.g. ``"RS+FD[OUE-z]"``."""
        if self.variant == "grr":
            return "RS+FD[GRR]"
        suffix = "z" if self.variant == "ue-z" else "r"
        return f"RS+FD[{self.ue_kind}-{suffix}]"

    def _randomizer(self, attribute: int):
        """Local randomizer for ``attribute`` at the amplified budget."""
        k = self.domain.size_of(attribute)
        if self.variant == "grr":
            return GRR(k, self.amplified_epsilon, rng=self._rng)
        return _make_ue(self.ue_kind, k, self.amplified_epsilon, rng=self._rng)

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def collect(
        self, dataset: TabularDataset, sampled: np.ndarray | None = None
    ) -> MultidimReports:
        """Produce one full tuple (LDP value + fake values) per user."""
        self._check_dataset(dataset)
        n = dataset.n
        if sampled is None:
            sampled = sample_attributes(n, self.domain.d, self._rng)
        else:
            sampled = np.asarray(sampled, dtype=np.int64)
            if sampled.shape != (n,):
                raise EstimationError(f"sampled must have shape ({n},)")

        per_attribute = []
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            randomizer = self._randomizer(j)
            rows_true = np.flatnonzero(sampled == j)
            rows_fake = np.flatnonzero(sampled != j)
            if self.variant == "grr":
                column = np.empty(n, dtype=np.int64)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                column[rows_fake] = self._rng.integers(0, k, size=rows_fake.size)
            else:
                column = np.zeros((n, k), dtype=np.uint8)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                if rows_fake.size:
                    column[rows_fake] = self._generate_fake_ue(randomizer, rows_fake.size)
            per_attribute.append(column)

        return MultidimReports(
            solution=self.name,
            protocol=self.protocol,
            epsilon=self.epsilon,
            domain=self.domain,
            n=n,
            per_attribute=per_attribute,
            sampled=sampled,
            extra={
                "variant": self.variant,
                "ue_kind": self.ue_kind,
                "label": self.label,
                "amplified_epsilon": self.amplified_epsilon,
            },
        )

    def _generate_fake_ue(self, randomizer: UnaryEncoding, count: int) -> np.ndarray:
        if self.variant == "ue-z":
            return randomizer.randomize_zero_vector(count)
        return randomizer.randomize_random_onehot(count)

    # ------------------------------------------------------------------ #
    # server side
    # ------------------------------------------------------------------ #
    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        estimates = []
        d, n = self.domain.d, reports.n
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            randomizer = self._randomizer(j)
            p, q = randomizer.p, randomizer.q
            counts = self._support_counts(reports.per_attribute[j], k)
            if self.variant == "grr":
                # RS+FD[GRR] estimator (Sec. 2.3.2)
                values = (counts * d * k - n * (d - 1 + q * k)) / (n * k * (p - q))
            elif self.variant == "ue-z":
                # RS+FD[UE-z] estimator
                values = d * (counts - n * q) / (n * (p - q))
            else:
                # RS+FD[UE-r] estimator
                bias = q * k + (p - q) * (d - 1) + q * k * (d - 1)
                values = (counts * d * k - n * bias) / (n * k * (p - q))
            estimates.append(
                FrequencyEstimate(
                    estimates=values,
                    attribute=self.domain[j].name,
                    n=n,
                    metadata={
                        "solution": self.name,
                        "protocol": self.label,
                        "epsilon": self.epsilon,
                        "amplified_epsilon": self.amplified_epsilon,
                        "k": k,
                    },
                )
            )
        return estimates

    def _support_counts(self, column, k: int) -> np.ndarray:
        if self.variant == "grr":
            return np.bincount(np.asarray(column, dtype=np.int64), minlength=k).astype(float)
        return np.asarray(column).sum(axis=0).astype(float)
