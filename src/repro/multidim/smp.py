"""SMP: the attribute-sampling solution.

Each user samples a single attribute uniformly at random and reports only
that attribute with the full budget ``epsilon``.  Crucially, the pair
``<sampled attribute, epsilon-LDP report>`` is sent to the aggregator, i.e.
the sampled attribute is *disclosed* — the property the paper's
re-identification attack exploits.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike
from ..core.domain import Domain
from ..exceptions import EstimationError
from ..protocols.registry import make_protocol
from .base import MultidimReports, MultidimSolution, sample_attributes


class SMP(MultidimSolution):
    """Sampling solution: one attribute per user with full ``epsilon``.

    Parameters
    ----------
    domain, epsilon, protocol, rng:
        See :class:`~repro.multidim.base.MultidimSolution`.
    """

    name = "SMP"

    def collect(
        self, dataset: TabularDataset, sampled: np.ndarray | None = None
    ) -> MultidimReports:
        """Collect one sanitized attribute per user.

        Parameters
        ----------
        dataset:
            Users' true data.
        sampled:
            Optional pre-determined sampled attribute per user.  The
            multi-collection attack experiments control sampling externally
            (e.g. without replacement across surveys); when omitted, each user
            samples uniformly at random.
        """
        self._check_dataset(dataset)
        if sampled is None:
            sampled = sample_attributes(dataset.n, self.domain.d, self._rng)
        else:
            sampled = np.asarray(sampled, dtype=np.int64)
            if sampled.shape != (dataset.n,):
                raise EstimationError(
                    f"sampled must have shape ({dataset.n},), got {sampled.shape}"
                )

        per_attribute = []
        user_indices = []
        for j in range(self.domain.d):
            rows = np.flatnonzero(sampled == j)
            user_indices.append(rows)
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), self.epsilon, rng=self._rng
            )
            values = dataset.column(j)[rows]
            per_attribute.append(
                oracle.randomize_many(values) if rows.size else values.copy()
            )
        return MultidimReports(
            solution=self.name,
            protocol=self.protocol,
            epsilon=self.epsilon,
            domain=self.domain,
            n=dataset.n,
            per_attribute=per_attribute,
            user_indices=user_indices,
            sampled=sampled,
        )

    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        """Per-attribute estimates over the users who sampled each attribute.

        ``reports.per_attribute[j]`` may be a monolithic report array or an
        iterable of report chunks (bounded-memory path).
        """
        return self._estimates_from_counts(*self._counts_from_reports(reports))

    # -- streaming hooks ----------------------------------------------------
    def _counts_from_reports(self, reports: MultidimReports):
        counts, ns = [], []
        for j in range(self.domain.d):
            rows = reports.user_indices[j]
            ns.append(int(rows.size))
            if rows.size == 0:
                counts.append(np.zeros(self.domain.size_of(j)))
                continue
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), self.epsilon, rng=self._rng
            )
            counts.append(oracle.support_counts(reports.per_attribute[j]))
        return counts, ns

    def _estimates_from_counts(self, counts, ns) -> list[FrequencyEstimate]:
        estimates = []
        for j in range(self.domain.d):
            if int(ns[j]) == 0:
                raise EstimationError(
                    f"no user sampled attribute {self.domain[j].name!r}; "
                    "increase n or collect again"
                )
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), self.epsilon, rng=self._rng
            )
            estimate = oracle._estimate_from_counts(
                np.asarray(counts[j], dtype=float), int(ns[j])
            )
            estimates.append(
                FrequencyEstimate(
                    estimates=estimate.estimates,
                    attribute=self.domain[j].name,
                    n=int(ns[j]),
                    metadata={**estimate.metadata, "solution": self.name},
                )
            )
        return estimates

    # ------------------------------------------------------------------ #
    def attack_reports(self, reports: MultidimReports) -> np.ndarray:
        """Per-user plausible-deniability attack on an SMP collection.

        Returns an ``(n,)`` array where entry ``i`` is the attacker's guess of
        user ``i``'s value for the attribute they sampled.
        """
        guesses = np.full(reports.n, -1, dtype=np.int64)
        for j in range(self.domain.d):
            rows = reports.user_indices[j]
            if rows.size == 0:
                continue
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), self.epsilon, rng=self._rng
            )
            guesses[rows] = oracle.attack_many(reports.per_attribute[j])
        return guesses
