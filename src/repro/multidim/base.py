"""Base classes for multidimensional frequency-estimation solutions.

The paper studies three ways a population of users can report a tuple of
``d`` categorical values under ``epsilon``-LDP (Sec. 2.3):

* **SPL** — split the budget and report every attribute with ``epsilon/d``;
* **SMP** — sample one attribute and report it with the full ``epsilon``,
  disclosing which attribute was sampled;
* **RS+FD** — sample one attribute, report it with the amplified budget
  ``epsilon'``, and hide it among uniformly random fake values for the other
  attributes (the RS+RFD countermeasure replaces "uniform" with realistic
  priors).

Every solution exposes ``collect(dataset) -> MultidimReports`` (client side)
and ``estimate(reports) -> list[FrequencyEstimate]`` (server side).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.domain import Domain
from ..core.composition import validate_epsilon
from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike, ensure_rng
from ..exceptions import DomainMismatchError, InvalidParameterError
from ..protocols.streaming import (
    PackedBits,
    is_chunk_iterable,
    resolve_chunk_size,
    sum_support_counts,
)


@dataclass
class MultidimReports:
    """Container for the sanitized output of one data collection.

    Attributes
    ----------
    solution:
        Name of the solution that produced the reports (``"SPL"``, ``"SMP"``,
        ``"RS+FD"``, ``"RS+RFD"``).
    protocol:
        Name of the underlying frequency oracle (``"GRR"``, ``"OUE"``, ...).
    epsilon:
        Per-user privacy budget of the collection.
    domain:
        Domain of the collected attributes.
    n:
        Number of reporting users.
    per_attribute:
        For SPL / RS+FD / RS+RFD: one report array per attribute covering all
        ``n`` users.  For SMP: one report array per attribute covering only
        the users who sampled it.
    user_indices:
        For SMP: row indices (into the collected dataset) of the users whose
        reports appear in ``per_attribute[j]``; ``None`` otherwise.
    sampled:
        The attribute sampled by each user.  For SMP this is public
        information (part of the report); for RS+FD / RS+RFD it is ground
        truth that the aggregator does *not* see — it is retained only so the
        attacks can be evaluated.  ``None`` for SPL.
    extra:
        Free-form metadata (e.g. the fake-data variant or priors used).
    """

    solution: str
    protocol: str
    epsilon: float
    domain: Domain
    n: int
    per_attribute: list[Any]
    user_indices: list[np.ndarray] | None = None
    sampled: np.ndarray | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def d(self) -> int:
        """Number of attributes in the collection."""
        return self.domain.d


class MultidimSolution(abc.ABC):
    """Abstract multidimensional frequency-estimation solution.

    Parameters
    ----------
    domain:
        Attributes to collect.
    epsilon:
        Per-user privacy budget for the whole tuple.
    protocol:
        Name of the frequency oracle used as local randomizer.
    rng:
        Seed or generator.
    """

    #: Solution identifier, e.g. ``"SMP"``.
    name: str = "multidim"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        protocol: str = "GRR",
        rng: RngLike = None,
    ) -> None:
        if domain.d < 2:
            raise InvalidParameterError(
                f"multidimensional solutions require d >= 2 attributes, got {domain.d}"
            )
        self.domain = domain
        self.epsilon = validate_epsilon(epsilon)
        self.protocol = protocol
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def collect(self, dataset: TabularDataset) -> MultidimReports:
        """Run the client-side pipeline on every user of ``dataset``."""

    @abc.abstractmethod
    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        """Server-side unbiased frequency estimation for every attribute."""

    # ------------------------------------------------------------------ #
    # streaming hooks (implemented by every concrete solution)
    # ------------------------------------------------------------------ #
    def _counts_from_reports(
        self, reports: MultidimReports
    ) -> tuple[list[np.ndarray], list[int]]:
        """Per-attribute support counts and report counts of one collection.

        Returns ``(counts, ns)`` where ``counts[j]`` is the length-``k_j``
        support-count vector of attribute ``j`` and ``ns[j]`` the number of
        reports backing it (all users for SPL / RS+FD / RS+RFD, the sampled
        subpopulation for SMP).  O(k) output regardless of ``reports.n``.
        """
        raise NotImplementedError

    def _estimates_from_counts(
        self, counts: Sequence[np.ndarray], ns: Sequence[int]
    ) -> list[FrequencyEstimate]:
        """Apply the solution's unbiased estimators to accumulated counts."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def collect_and_estimate(
        self, dataset: TabularDataset
    ) -> tuple[MultidimReports, list[FrequencyEstimate]]:
        """Convenience wrapper running both pipeline halves."""
        reports = self.collect(dataset)
        return reports, self.estimate(reports)

    def stream_collect_and_estimate(
        self, dataset: TabularDataset, chunk_size: int
    ) -> list[FrequencyEstimate]:
        """Collect and aggregate ``dataset`` in user chunks of bounded memory.

        Users are processed ``chunk_size`` at a time: each block is
        collected, reduced to per-attribute support counts (O(k) state) and
        discarded, so peak memory is bounded by the block's reports instead
        of the full ``(n, k)`` collection.  Only the frequency estimates are
        returned — the sanitized reports are never retained, which is why the
        attack experiments (which need the reports) use
        :meth:`collect_and_estimate` instead.

        The per-user randomness consumes the solution's generator chunk by
        chunk, so estimates are statistically equivalent — not bit-identical —
        to a one-shot collection with the same seed.  Aggregating an already
        collected report set chunk-wise (lists of chunk arrays inside
        ``MultidimReports.per_attribute``) *is* bit-identical; see
        :meth:`estimate`.
        """
        self._check_dataset(dataset)
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        counts = [np.zeros(self.domain.size_of(j)) for j in range(self.domain.d)]
        ns = [0] * self.domain.d
        for start in range(0, dataset.n, chunk_size):
            block = TabularDataset(
                domain=self.domain,
                data=dataset.data[start : start + chunk_size],
                name=f"{dataset.name}[{start}:{start + chunk_size}]",
            )
            reports = self.collect(block)
            block_counts, block_ns = self._counts_from_reports(reports)
            for j in range(self.domain.d):
                counts[j] += block_counts[j]
                ns[j] += int(block_ns[j])
        return self._estimates_from_counts(counts, ns)

    def _check_dataset(self, dataset: TabularDataset) -> None:
        if dataset.domain.sizes != self.domain.sizes:
            raise DomainMismatchError(
                "dataset domain does not match the solution's domain: "
                f"{dataset.domain.sizes} != {self.domain.sizes}"
            )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(d={self.domain.d}, epsilon={self.epsilon:g}, "
            f"protocol={self.protocol!r})"
        )


class FakeDataCountsMixin:
    """Shared count accumulation for the fake-data solutions (RS+FD, RS+RFD).

    Both solutions store, per attribute, one report from every user — GRR
    integer codes or UE bit rows (dense or :class:`PackedBits`) — so their
    support counting and per-attribute report totals are identical.  The
    concrete class provides ``variant`` (``"grr"`` selects the bincount
    branch) and optionally ``chunk_size`` (rows unpacked at once from packed
    columns; defaults to ``DEFAULT_CHUNK_SIZE``).
    """

    def _counts_from_reports(self, reports: "MultidimReports"):
        counts = [
            self._support_counts(reports.per_attribute[j], self.domain.size_of(j))
            for j in range(self.domain.d)
        ]
        return counts, [reports.n] * self.domain.d

    def _support_counts(self, column: Any, k: int) -> np.ndarray:
        if is_chunk_iterable(column):
            return sum_support_counts(lambda c: self._support_counts(c, k), column, k)
        if self.variant == "grr":
            return np.bincount(np.asarray(column, dtype=np.int64), minlength=k).astype(float)
        if isinstance(column, PackedBits):
            return column.column_sums(resolve_chunk_size(getattr(self, "chunk_size", None)))
        return np.asarray(column).sum(axis=0).astype(float)


def sample_attributes(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    """Sample one attribute uniformly at random for each of ``n`` users."""
    if n <= 0 or d <= 0:
        raise InvalidParameterError("n and d must be positive")
    return rng.integers(0, d, size=n)
