"""RS+RFD: Random Sampling Plus *Realistic* Fake Data (Sec. 5, the countermeasure).

RS+RFD is the paper's proposed improvement of RS+FD: non-sampled attributes
are filled with fake values drawn from (possibly noisy) *prior* distributions
instead of uniform randomness.  Realistic fake data makes the sampled
attribute much harder to single out (countering the attribute-inference
attack) and also lets the fake data contribute to the estimation, improving
utility.

Two variants are proposed:

* ``RS+RFD[GRR]`` — GRR randomizer; fake values are direct samples from the
  prior (probability tree of Fig. 7).  Estimator: Eq. (6).
* ``RS+RFD[UE-r]`` — SUE/OUE randomizer; fake values are prior-distributed
  one-hot vectors, perturbed by the same UE protocol (probability tree of
  Fig. 8).  Estimator: Eq. (7).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from ..core.composition import amplified_epsilon
from ..core.dataset import TabularDataset
from ..core.domain import Domain
from ..core.frequencies import FrequencyEstimate, validate_probability_vector
from ..core.rng import RngLike
from ..exceptions import EstimationError, InvalidParameterError
from ..protocols.grr import GRR
from ..protocols.streaming import PackedBits, validate_chunk_size
from ..protocols.ue import OUE, SUE, UnaryEncoding
from .base import FakeDataCountsMixin, MultidimReports, MultidimSolution, sample_attributes

RealisticVariant = Literal["grr", "ue-r"]


class RSRFD(FakeDataCountsMixin, MultidimSolution):
    """Random Sampling Plus Realistic Fake Data (Alg. 1 of the paper).

    Parameters
    ----------
    domain:
        Attributes to collect.
    epsilon:
        Per-user privacy budget (amplified internally as in RS+FD).
    priors:
        Per-attribute prior distributions ``f~`` transmitted by the server in
        advance (list of probability vectors, one per attribute).
    variant:
        ``"grr"`` or ``"ue-r"``.
    ue_kind:
        ``"SUE"`` or ``"OUE"`` when ``variant == "ue-r"``.
    rng:
        Seed or generator.
    packed:
        Store UE report columns bit-packed (8x smaller); ignored by the GRR
        variant.  See :class:`~repro.multidim.rsfd.RSFD`.
    chunk_size:
        Rows the UE randomizers and packed count kernels materialize at
        once (default ``DEFAULT_CHUNK_SIZE``).
    """

    name = "RS+RFD"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        priors: Sequence[np.ndarray],
        variant: RealisticVariant = "grr",
        ue_kind: str = "OUE",
        rng: RngLike = None,
        packed: bool = False,
        chunk_size: int | None = None,
    ) -> None:
        variant = variant.lower()
        if variant not in ("grr", "ue-r"):
            raise InvalidParameterError(
                f"variant must be 'grr' or 'ue-r', got {variant!r}"
            )
        protocol = "GRR" if variant == "grr" else ue_kind.upper()
        super().__init__(domain, epsilon, protocol=protocol, rng=rng)
        self.variant = variant
        self.ue_kind = ue_kind.upper()
        self.packed = bool(packed)
        self.chunk_size = validate_chunk_size(chunk_size)
        self.amplified_epsilon = amplified_epsilon(self.epsilon, self.domain.d)
        self.priors = self._validate_priors(priors)

    def _validate_priors(self, priors: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Validate and normalize the per-attribute prior distributions.

        Every prior must be a finite, non-negative, positive-mass vector of
        length ``k_j`` — the same guard applied where priors enter the UE
        fake-data generator (:meth:`UnaryEncoding.randomize_random_onehot`),
        so malformed priors fail loudly here rather than as NaN probabilities
        inside ``rng.choice``.
        """
        priors = list(priors)
        if len(priors) != self.domain.d:
            raise InvalidParameterError(
                f"expected {self.domain.d} priors, got {len(priors)}"
            )
        return [
            validate_probability_vector(
                prior, self.domain.size_of(j), context=f"prior for attribute {j}"
            )
            for j, prior in enumerate(priors)
        ]

    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Paper-style protocol label, e.g. ``"RS+RFD[SUE-r]"``."""
        if self.variant == "grr":
            return "RS+RFD[GRR]"
        return f"RS+RFD[{self.ue_kind}-r]"

    def _randomizer(self, attribute: int):
        k = self.domain.size_of(attribute)
        if self.variant == "grr":
            return GRR(k, self.amplified_epsilon, rng=self._rng)
        if self.ue_kind == "SUE":
            return SUE(
                k,
                self.amplified_epsilon,
                rng=self._rng,
                packed=self.packed,
                chunk_size=self.chunk_size,
            )
        return OUE(
            k,
            self.amplified_epsilon,
            rng=self._rng,
            packed=self.packed,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------------ #
    # client side (Alg. 1)
    # ------------------------------------------------------------------ #
    def collect(
        self, dataset: TabularDataset, sampled: np.ndarray | None = None
    ) -> MultidimReports:
        self._check_dataset(dataset)
        n = dataset.n
        if sampled is None:
            sampled = sample_attributes(n, self.domain.d, self._rng)
        else:
            sampled = np.asarray(sampled, dtype=np.int64)
            if sampled.shape != (n,):
                raise EstimationError(f"sampled must have shape ({n},)")

        per_attribute = []
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            prior = self.priors[j]
            randomizer = self._randomizer(j)
            rows_true = np.flatnonzero(sampled == j)
            rows_fake = np.flatnonzero(sampled != j)
            if self.variant == "grr":
                column = np.empty(n, dtype=np.int64)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                if rows_fake.size:
                    # fake data = direct sample from the prior (Fig. 7)
                    column[rows_fake] = self._rng.choice(k, size=rows_fake.size, p=prior)
            elif self.packed:
                column = PackedBits.empty(n, k)
                if rows_true.size:
                    column.data[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    ).data
                if rows_fake.size:
                    # fake data = prior-distributed one-hot, UE-perturbed (Fig. 8)
                    column.data[rows_fake] = randomizer.randomize_random_onehot(
                        rows_fake.size, priors=prior
                    ).data
            else:
                column = np.zeros((n, k), dtype=np.uint8)
                if rows_true.size:
                    column[rows_true] = randomizer.randomize_many(
                        dataset.column(j)[rows_true]
                    )
                if rows_fake.size:
                    # fake data = prior-distributed one-hot, UE-perturbed (Fig. 8)
                    column[rows_fake] = randomizer.randomize_random_onehot(
                        rows_fake.size, priors=prior
                    )
            per_attribute.append(column)

        return MultidimReports(
            solution=self.name,
            protocol=self.protocol,
            epsilon=self.epsilon,
            domain=self.domain,
            n=n,
            per_attribute=per_attribute,
            sampled=sampled,
            extra={
                "variant": self.variant,
                "ue_kind": self.ue_kind,
                "label": self.label,
                "amplified_epsilon": self.amplified_epsilon,
            },
        )

    # ------------------------------------------------------------------ #
    # server side (Eqs. 6 and 7)
    # ------------------------------------------------------------------ #
    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        """Per-attribute unbiased estimates (Eqs. 6 and 7).

        ``reports.per_attribute[j]`` may be a dense array, a bit-packed
        :class:`~repro.protocols.streaming.PackedBits` matrix or an iterable
        of report chunks; all produce byte-identical estimates.
        """
        return self._estimates_from_counts(*self._counts_from_reports(reports))

    # -- streaming hooks (counting inherited from FakeDataCountsMixin) ------
    def _estimates_from_counts(self, counts_list, ns) -> list[FrequencyEstimate]:
        estimates = []
        d = self.domain.d
        for j in range(self.domain.d):
            k = self.domain.size_of(j)
            n = int(ns[j])
            if n <= 0:
                raise EstimationError("cannot estimate from zero reports")
            prior = self.priors[j]
            randomizer = self._randomizer(j)
            p, q = randomizer.p, randomizer.q
            counts = np.asarray(counts_list[j], dtype=float)
            if self.variant == "grr":
                # Eq. (6)
                values = (d * counts - n * (q + (d - 1) * prior)) / (n * (p - q))
            else:
                # Eq. (7)
                bias = q + (p - q) * (d - 1) * prior + q * (d - 1)
                values = (d * counts - n * bias) / (n * (p - q))
            estimates.append(
                FrequencyEstimate(
                    estimates=values,
                    attribute=self.domain[j].name,
                    n=n,
                    metadata={
                        "solution": self.name,
                        "protocol": self.label,
                        "epsilon": self.epsilon,
                        "amplified_epsilon": self.amplified_epsilon,
                        "k": k,
                    },
                )
            )
        return estimates
